//! Exhaustive search.

use dsearch_core::Configuration;

use crate::space::ConfigSpace;
use crate::tuner::{Evaluation, Tuner, TuningResult};

/// Evaluates every configuration in the space.
///
/// This is what the paper's measurement campaign amounted to: every
/// combination of thread counts, five repetitions each.  It is the reference
/// the cheaper strategies are validated against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveTuner;

impl ExhaustiveTuner {
    /// Creates an exhaustive tuner.
    #[must_use]
    pub fn new() -> Self {
        ExhaustiveTuner
    }
}

impl Tuner for ExhaustiveTuner {
    fn tune<F>(&self, space: &ConfigSpace, mut objective: F) -> TuningResult
    where
        F: FnMut(&Configuration) -> f64,
    {
        let evaluations: Vec<Evaluation> = space
            .iter()
            .map(|configuration| Evaluation { cost: objective(&configuration), configuration })
            .collect();
        TuningResult::from_evaluations(evaluations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bowl(c: &Configuration) -> f64 {
        // Minimum at (4, 2, 1).
        (c.extraction_threads as f64 - 4.0).powi(2)
            + (c.update_threads as f64 - 2.0).powi(2)
            + (c.join_threads as f64 - 1.0).powi(2)
    }

    #[test]
    fn finds_the_global_minimum() {
        let space = ConfigSpace::new(1..=8, 0..=4, 0..=2);
        let result = ExhaustiveTuner::new().tune(&space, bowl);
        assert_eq!(result.best_configuration, Configuration::new(4, 2, 1));
        assert_eq!(result.evaluation_count(), space.size());
        assert!(result.best_cost.abs() < 1e-12);
    }

    #[test]
    fn evaluates_each_point_exactly_once() {
        let space = ConfigSpace::new(1..=3, 0..=1, 0..=1);
        let mut calls = 0usize;
        let result = ExhaustiveTuner.tune(&space, |c| {
            calls += 1;
            bowl(c)
        });
        assert_eq!(calls, space.size());
        assert_eq!(result.evaluation_count(), space.size());
    }
}
