//! Greedy hill climbing with random restarts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsearch_core::Configuration;

use crate::space::ConfigSpace;
use crate::tuner::{Evaluation, Tuner, TuningResult};

/// Greedy neighbourhood descent: from a starting point, repeatedly move to
/// the best improving axis-neighbour; restart from a random point when stuck.
///
/// The extraction/update/join cost surface is close to unimodal (adding
/// threads helps until a resource saturates, then hurts), so a handful of
/// restarts reliably finds the optimum at a fraction of the exhaustive cost.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbTuner {
    restarts: usize,
    seed: u64,
}

impl HillClimbTuner {
    /// Creates a tuner with the given number of random restarts.
    #[must_use]
    pub fn new(restarts: usize, seed: u64) -> Self {
        HillClimbTuner { restarts: restarts.max(1), seed }
    }
}

impl Default for HillClimbTuner {
    fn default() -> Self {
        HillClimbTuner::new(4, 0x5eed)
    }
}

impl Tuner for HillClimbTuner {
    fn tune<F>(&self, space: &ConfigSpace, mut objective: F) -> TuningResult
    where
        F: FnMut(&Configuration) -> f64,
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evaluations: Vec<Evaluation> = Vec::new();
        let mut evaluate = |c: &Configuration, log: &mut Vec<Evaluation>| -> f64 {
            // Reuse a previous evaluation when available (the objective may be
            // an expensive real run).
            if let Some(prev) = log.iter().find(|e| e.configuration == *c) {
                return prev.cost;
            }
            let cost = objective(c);
            log.push(Evaluation { configuration: *c, cost });
            cost
        };

        let (ex_min, ex_max) = space.extraction_bounds();
        let (up_min, up_max) = space.update_bounds();
        let (jn_min, jn_max) = space.join_bounds();

        for restart in 0..self.restarts {
            let mut current = if restart == 0 {
                // Deterministic first start in the middle of the space.
                space.clamp(Configuration::new(
                    usize::midpoint(ex_min, ex_max),
                    usize::midpoint(up_min, up_max),
                    usize::midpoint(jn_min, jn_max),
                ))
            } else {
                Configuration::new(
                    rng.gen_range(ex_min..=ex_max),
                    rng.gen_range(up_min..=up_max),
                    rng.gen_range(jn_min..=jn_max),
                )
            };
            let mut current_cost = evaluate(&current, &mut evaluations);

            loop {
                let mut best_neighbour: Option<(Configuration, f64)> = None;
                for neighbour in space.neighbours(&current) {
                    let cost = evaluate(&neighbour, &mut evaluations);
                    if cost < current_cost && best_neighbour.is_none_or(|(_, best)| cost < best) {
                        best_neighbour = Some((neighbour, cost));
                    }
                }
                match best_neighbour {
                    Some((next, cost)) => {
                        current = next;
                        current_cost = cost;
                    }
                    None => break,
                }
            }
        }
        TuningResult::from_evaluations(evaluations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveTuner;

    fn bowl(c: &Configuration) -> f64 {
        (c.extraction_threads as f64 - 5.0).powi(2)
            + (c.update_threads as f64 - 2.0).powi(2)
            + 2.0 * (c.join_threads as f64 - 1.0).powi(2)
    }

    #[test]
    fn finds_the_minimum_of_a_unimodal_surface() {
        let space = ConfigSpace::new(1..=10, 0..=5, 0..=2);
        let result = HillClimbTuner::default().tune(&space, bowl);
        assert_eq!(result.best_configuration, Configuration::new(5, 2, 1));
    }

    #[test]
    fn uses_fewer_evaluations_than_exhaustive() {
        let space = ConfigSpace::new(1..=12, 0..=6, 0..=2);
        let exhaustive = ExhaustiveTuner::new().tune(&space, bowl);
        let climb = HillClimbTuner::default().tune(&space, bowl);
        assert!(
            climb.evaluation_count() < exhaustive.evaluation_count() / 2,
            "hill climbing used {} evaluations vs exhaustive {}",
            climb.evaluation_count(),
            exhaustive.evaluation_count()
        );
        assert!((climb.best_cost - exhaustive.best_cost).abs() < 1e-9);
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let space = ConfigSpace::new(1..=10, 0..=5, 0..=2);
        let a = HillClimbTuner::new(3, 42).tune(&space, bowl);
        let b = HillClimbTuner::new(3, 42).tune(&space, bowl);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_restarts_clamps_to_one() {
        let space = ConfigSpace::new(1..=4, 0..=2, 0..=1);
        let result = HillClimbTuner::new(0, 1).tune(&space, bowl);
        assert!(result.evaluation_count() > 0);
    }
}
