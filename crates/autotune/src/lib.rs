//! Configuration auto-tuner.
//!
//! The paper leaned on the auto-tuner of Schäfer et al. to explore thread
//! allocations ("use an auto-tuner to speed up exploring the design space")
//! but could not use it throughout because that tuner targeted C#.  This crate
//! provides the equivalent capability natively: given an objective function
//! that maps a [`Configuration`] to a cost (estimated or measured seconds),
//! a [`Tuner`] searches the [`ConfigSpace`] for the best tuple.
//!
//! Three strategies are provided:
//!
//! * [`ExhaustiveTuner`] — evaluates every point (what the paper effectively
//!   did with its repeated measurement runs);
//! * [`HillClimbTuner`] — greedy neighbourhood descent with random restarts;
//! * [`RandomSearchTuner`] — uniform random sampling under a fixed budget.
//!
//! # Example
//!
//! ```
//! use dsearch_autotune::{ConfigSpace, ExhaustiveTuner, Tuner};
//! use dsearch_core::Configuration;
//!
//! // A toy objective: the sweet spot is (3, 1, 0).
//! let objective = |c: &Configuration| {
//!     (c.extraction_threads as f64 - 3.0).abs()
//!         + (c.update_threads as f64 - 1.0).abs()
//!         + c.join_threads as f64
//! };
//! let space = ConfigSpace::new(1..=6, 0..=3, 0..=1);
//! let result = ExhaustiveTuner::new().tune(&space, objective);
//! assert_eq!(result.best_configuration, Configuration::new(3, 1, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exhaustive;
pub mod hill_climb;
pub mod random_search;
pub mod space;
pub mod tuner;

pub use exhaustive::ExhaustiveTuner;
pub use hill_climb::HillClimbTuner;
pub use random_search::RandomSearchTuner;
pub use space::ConfigSpace;
pub use tuner::{Evaluation, Tuner, TuningResult};
