//! Random search under a fixed evaluation budget.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsearch_core::Configuration;

use crate::space::ConfigSpace;
use crate::tuner::{Evaluation, Tuner, TuningResult};

/// Samples configurations uniformly at random.
///
/// Useful as a cheap baseline for the other strategies and for spaces too
/// large to enumerate (e.g. when the objective is a real measured run).
#[derive(Debug, Clone, Copy)]
pub struct RandomSearchTuner {
    budget: usize,
    seed: u64,
}

impl RandomSearchTuner {
    /// Creates a tuner that evaluates at most `budget` configurations.
    #[must_use]
    pub fn new(budget: usize, seed: u64) -> Self {
        RandomSearchTuner { budget: budget.max(1), seed }
    }
}

impl Default for RandomSearchTuner {
    fn default() -> Self {
        RandomSearchTuner::new(32, 0x5eed)
    }
}

impl Tuner for RandomSearchTuner {
    fn tune<F>(&self, space: &ConfigSpace, mut objective: F) -> TuningResult
    where
        F: FnMut(&Configuration) -> f64,
    {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (ex_min, ex_max) = space.extraction_bounds();
        let (up_min, up_max) = space.update_bounds();
        let (jn_min, jn_max) = space.join_bounds();
        let mut evaluations = Vec::with_capacity(self.budget);
        let mut seen = std::collections::HashSet::new();
        while evaluations.len() < self.budget.min(space.size()) {
            let configuration = Configuration::new(
                rng.gen_range(ex_min..=ex_max),
                rng.gen_range(up_min..=up_max),
                rng.gen_range(jn_min..=jn_max),
            );
            if !seen.insert(configuration) {
                continue;
            }
            evaluations.push(Evaluation { cost: objective(&configuration), configuration });
        }
        TuningResult::from_evaluations(evaluations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bowl(c: &Configuration) -> f64 {
        (c.extraction_threads as f64 - 2.0).abs()
            + (c.update_threads as f64 - 1.0).abs()
            + c.join_threads as f64
    }

    #[test]
    fn respects_the_budget_and_avoids_duplicates() {
        let space = ConfigSpace::new(1..=10, 0..=5, 0..=2);
        let mut calls = 0;
        let result = RandomSearchTuner::new(20, 7).tune(&space, |c| {
            calls += 1;
            bowl(c)
        });
        assert_eq!(calls, 20);
        assert_eq!(result.evaluation_count(), 20);
        let distinct: std::collections::HashSet<String> =
            result.evaluations.iter().map(|e| e.configuration.to_string()).collect();
        assert_eq!(distinct.len(), 20);
    }

    #[test]
    fn finds_the_optimum_when_budget_covers_the_space() {
        let space = ConfigSpace::new(1..=4, 0..=2, 0..=1);
        let result = RandomSearchTuner::new(1_000, 3).tune(&space, bowl);
        assert_eq!(result.evaluation_count(), space.size());
        assert_eq!(result.best_configuration, Configuration::new(2, 1, 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let space = ConfigSpace::new(1..=6, 0..=3, 0..=2);
        let a = RandomSearchTuner::new(10, 99).tune(&space, bowl);
        let b = RandomSearchTuner::new(10, 99).tune(&space, bowl);
        assert_eq!(a, b);
        let c = RandomSearchTuner::new(10, 100).tune(&space, bowl);
        assert!(a.evaluations != c.evaluations || a.best_configuration == c.best_configuration);
    }
}
