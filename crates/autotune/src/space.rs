//! The configuration search space.

use std::ops::RangeInclusive;

use serde::{Deserialize, Serialize};

use dsearch_core::Configuration;

/// Inclusive bounds on each component of the `(x, y, z)` tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSpace {
    min_extraction: usize,
    max_extraction: usize,
    min_update: usize,
    max_update: usize,
    min_join: usize,
    max_join: usize,
}

impl ConfigSpace {
    /// Creates a space from inclusive ranges for x, y and z.
    ///
    /// # Panics
    ///
    /// Panics if any range is empty or the extraction minimum is zero.
    #[must_use]
    pub fn new(
        extraction: RangeInclusive<usize>,
        update: RangeInclusive<usize>,
        join: RangeInclusive<usize>,
    ) -> Self {
        assert!(!extraction.is_empty(), "extraction range must be non-empty");
        assert!(!update.is_empty(), "update range must be non-empty");
        assert!(!join.is_empty(), "join range must be non-empty");
        assert!(*extraction.start() >= 1, "at least one extraction thread is required");
        ConfigSpace {
            min_extraction: *extraction.start(),
            max_extraction: *extraction.end(),
            min_update: *update.start(),
            max_update: *update.end(),
            min_join: *join.start(),
            max_join: *join.end(),
        }
    }

    /// A space sized for a machine with `cores` cores, mirroring the region
    /// the paper explored (extractors up to cores + 2, updaters up to half the
    /// cores, joiners up to 2).
    #[must_use]
    pub fn for_cores(cores: usize) -> Self {
        let cores = cores.max(1);
        ConfigSpace::new(1..=cores + 2, 0..=(cores / 2).max(1), 0..=2)
    }

    /// Number of points in the space.
    #[must_use]
    pub fn size(&self) -> usize {
        (self.max_extraction - self.min_extraction + 1)
            * (self.max_update - self.min_update + 1)
            * (self.max_join - self.min_join + 1)
    }

    /// Returns `true` when `config` lies inside the space.
    #[must_use]
    pub fn contains(&self, config: &Configuration) -> bool {
        (self.min_extraction..=self.max_extraction).contains(&config.extraction_threads)
            && (self.min_update..=self.max_update).contains(&config.update_threads)
            && (self.min_join..=self.max_join).contains(&config.join_threads)
    }

    /// Iterates over every configuration in the space (x-major order).
    pub fn iter(&self) -> impl Iterator<Item = Configuration> + '_ {
        let updates = self.min_update..=self.max_update;
        let joins = self.min_join..=self.max_join;
        (self.min_extraction..=self.max_extraction).flat_map(move |x| {
            let joins = joins.clone();
            updates
                .clone()
                .flat_map(move |y| joins.clone().map(move |z| Configuration::new(x, y, z)))
        })
    }

    /// Clamps a configuration onto the space boundary.
    #[must_use]
    pub fn clamp(&self, config: Configuration) -> Configuration {
        Configuration::new(
            config.extraction_threads.clamp(self.min_extraction, self.max_extraction),
            config.update_threads.clamp(self.min_update, self.max_update),
            config.join_threads.clamp(self.min_join, self.max_join),
        )
    }

    /// The axis-aligned neighbours of a configuration (±1 on each dimension)
    /// that lie inside the space.
    #[must_use]
    pub fn neighbours(&self, config: &Configuration) -> Vec<Configuration> {
        let mut out = Vec::with_capacity(6);
        let deltas: [(isize, isize, isize); 6] =
            [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)];
        for (dx, dy, dz) in deltas {
            let x = config.extraction_threads as isize + dx;
            let y = config.update_threads as isize + dy;
            let z = config.join_threads as isize + dz;
            if x < 0 || y < 0 || z < 0 {
                continue;
            }
            let candidate = Configuration::new(x as usize, y as usize, z as usize);
            if self.contains(&candidate) {
                out.push(candidate);
            }
        }
        out
    }

    /// Bounds of the extraction-thread axis.
    #[must_use]
    pub fn extraction_bounds(&self) -> (usize, usize) {
        (self.min_extraction, self.max_extraction)
    }

    /// Bounds of the update-thread axis.
    #[must_use]
    pub fn update_bounds(&self) -> (usize, usize) {
        (self.min_update, self.max_update)
    }

    /// Bounds of the join-thread axis.
    #[must_use]
    pub fn join_bounds(&self) -> (usize, usize) {
        (self.min_join, self.max_join)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_iteration_agree() {
        let space = ConfigSpace::new(1..=4, 0..=3, 0..=2);
        assert_eq!(space.size(), 4 * 4 * 3);
        assert_eq!(space.iter().count(), space.size());
        // Every iterated point is inside the space, and all are distinct.
        let points: Vec<Configuration> = space.iter().collect();
        for p in &points {
            assert!(space.contains(p));
        }
        let distinct: std::collections::HashSet<String> =
            points.iter().map(|p| p.to_string()).collect();
        assert_eq!(distinct.len(), points.len());
    }

    #[test]
    fn contains_and_clamp() {
        let space = ConfigSpace::new(1..=4, 0..=2, 0..=1);
        assert!(space.contains(&Configuration::new(1, 0, 0)));
        assert!(space.contains(&Configuration::new(4, 2, 1)));
        assert!(!space.contains(&Configuration::new(5, 0, 0)));
        assert!(!space.contains(&Configuration::new(4, 3, 0)));
        assert_eq!(space.clamp(Configuration::new(9, 9, 9)), Configuration::new(4, 2, 1));
        assert_eq!(space.clamp(Configuration::new(0, 0, 0)), Configuration::new(1, 0, 0));
    }

    #[test]
    fn neighbours_stay_inside() {
        let space = ConfigSpace::new(1..=4, 0..=2, 0..=1);
        let corner = Configuration::new(1, 0, 0);
        let n = space.neighbours(&corner);
        assert_eq!(n.len(), 3); // +x, +y, +z only
        for c in &n {
            assert!(space.contains(c));
        }
        let middle = Configuration::new(2, 1, 0);
        assert_eq!(space.neighbours(&middle).len(), 5);
    }

    #[test]
    fn for_cores_scales() {
        let small = ConfigSpace::for_cores(4);
        let big = ConfigSpace::for_cores(32);
        assert!(big.size() > small.size());
        assert_eq!(small.extraction_bounds(), (1, 6));
        assert_eq!(small.update_bounds(), (0, 2));
        assert_eq!(small.join_bounds(), (0, 2));
        // Degenerate core count still produces a valid space.
        assert!(ConfigSpace::for_cores(0).size() > 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        #[allow(clippy::reversed_empty_ranges)]
        let _ = ConfigSpace::new(3..=1, 0..=1, 0..=1);
    }

    #[test]
    #[should_panic(expected = "extraction thread")]
    fn zero_extraction_panics() {
        let _ = ConfigSpace::new(0..=2, 0..=1, 0..=1);
    }
}
