//! The tuner abstraction.

use serde::{Deserialize, Serialize};

use dsearch_core::Configuration;

use crate::space::ConfigSpace;

/// One evaluated point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The configuration evaluated.
    pub configuration: Configuration,
    /// Its cost (seconds; lower is better).
    pub cost: f64,
}

/// The outcome of a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// The best configuration found.
    pub best_configuration: Configuration,
    /// The cost of the best configuration.
    pub best_cost: f64,
    /// Every evaluation performed, in order.
    pub evaluations: Vec<Evaluation>,
}

impl TuningResult {
    /// Builds a result from an evaluation log.
    ///
    /// # Panics
    ///
    /// Panics if `evaluations` is empty.
    #[must_use]
    pub fn from_evaluations(evaluations: Vec<Evaluation>) -> Self {
        let best = evaluations
            .iter()
            .copied()
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap_or(std::cmp::Ordering::Equal))
            .expect("at least one evaluation is required");
        TuningResult { best_configuration: best.configuration, best_cost: best.cost, evaluations }
    }

    /// Number of objective evaluations performed.
    #[must_use]
    pub fn evaluation_count(&self) -> usize {
        self.evaluations.len()
    }
}

/// A search strategy over the configuration space.
pub trait Tuner {
    /// Searches `space` for the configuration minimising `objective`.
    fn tune<F>(&self, space: &ConfigSpace, objective: F) -> TuningResult
    where
        F: FnMut(&Configuration) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_evaluations_picks_the_minimum() {
        let evals = vec![
            Evaluation { configuration: Configuration::new(1, 0, 0), cost: 10.0 },
            Evaluation { configuration: Configuration::new(2, 0, 0), cost: 3.0 },
            Evaluation { configuration: Configuration::new(3, 0, 0), cost: 7.0 },
        ];
        let result = TuningResult::from_evaluations(evals);
        assert_eq!(result.best_configuration, Configuration::new(2, 0, 0));
        assert!((result.best_cost - 3.0).abs() < 1e-12);
        assert_eq!(result.evaluation_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one evaluation")]
    fn empty_evaluations_panic() {
        let _ = TuningResult::from_evaluations(Vec::new());
    }
}
