//! Ablation benchmarks for the design decisions the paper calls out.
//!
//! Each group flips exactly one of the choices discussed in Sections 2–3:
//!
//! * work-distribution strategy (round-robin vs. size-balanced vs. chunked
//!   vs. shared work queue);
//! * duplicate handling (per-file condensed word list vs. inserting every
//!   occurrence) and insertion granularity (en bloc vs. per term);
//! * Stage 1 scheduling (up-front vs. concurrent with extraction);
//! * join strategy (single-threaded vs. parallel reduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsearch::core::config::{DedupMode, InsertGranularity, Stage1Mode};
use dsearch::core::distribute::DistributionStrategy;
use dsearch::core::{Configuration, GeneratorOptions, Implementation, IndexGenerator};
use dsearch::corpus::{materialize_to_memfs, CorpusSpec};
use dsearch::index::{join_all, parallel_join, InMemoryIndex};
use dsearch::text::Term;
use dsearch::vfs::VPath;

fn bench_distribution(c: &mut Criterion) {
    let (fs, _) = materialize_to_memfs(&CorpusSpec::paper_scaled(0.001), 6);
    let root = VPath::root();
    let mut group = c.benchmark_group("ablation_distribution");
    group.sample_size(10);
    for strategy in DistributionStrategy::ALL {
        let mut options = GeneratorOptions::paper_defaults();
        options.distribution = strategy;
        let generator = IndexGenerator::new(options);
        group.bench_with_input(BenchmarkId::from_parameter(strategy), &strategy, |b, _| {
            b.iter(|| {
                let run = generator
                    .run(&fs, &root, Implementation::ReplicateNoJoin, Configuration::new(2, 0, 0))
                    .unwrap();
                black_box(run.outcome.file_count())
            });
        });
    }
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let (fs, _) = materialize_to_memfs(&CorpusSpec::paper_scaled(0.001), 7);
    let root = VPath::root();
    let mut group = c.benchmark_group("ablation_dedup");
    group.sample_size(10);
    let cases = [
        ("condensed_word_list_en_bloc", DedupMode::PerFileWordList, InsertGranularity::EnBloc),
        ("condensed_word_list_per_term", DedupMode::PerFileWordList, InsertGranularity::PerTerm),
        ("every_occurrence_en_bloc", DedupMode::InsertEveryOccurrence, InsertGranularity::EnBloc),
        ("every_occurrence_per_term", DedupMode::InsertEveryOccurrence, InsertGranularity::PerTerm),
    ];
    for (name, dedup, granularity) in cases {
        let mut options = GeneratorOptions::paper_defaults();
        options.dedup = dedup;
        options.granularity = granularity;
        let generator = IndexGenerator::new(options);
        group.bench_function(name, |b| {
            b.iter(|| {
                let run = generator
                    .run(&fs, &root, Implementation::SharedLocked, Configuration::new(2, 0, 0))
                    .unwrap();
                black_box(run.outcome.file_count())
            });
        });
    }
    group.finish();
}

fn bench_stage1_mode(c: &mut Criterion) {
    let (fs, _) = materialize_to_memfs(&CorpusSpec::paper_scaled(0.001), 8);
    let root = VPath::root();
    let mut group = c.benchmark_group("ablation_stage1");
    group.sample_size(10);
    for (name, mode) in [("up_front", Stage1Mode::UpFront), ("concurrent", Stage1Mode::Concurrent)]
    {
        let mut options = GeneratorOptions::paper_defaults();
        options.stage1 = mode;
        let generator = IndexGenerator::new(options);
        group.bench_function(name, |b| {
            b.iter(|| {
                let run = generator
                    .run(&fs, &root, Implementation::ReplicateNoJoin, Configuration::new(2, 0, 0))
                    .unwrap();
                black_box(run.outcome.file_count())
            });
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    // Build replica indices once, then measure the join variants.
    let replica_count = 8;
    let mut replicas: Vec<InMemoryIndex> =
        (0..replica_count).map(|_| InMemoryIndex::new()).collect();
    for doc in 0..4_000u32 {
        let terms: Vec<Term> = (0..20)
            .map(|k| {
                Term::from(format!("term{:04}", (doc.wrapping_mul(31).wrapping_add(k)) % 2_500))
            })
            .collect();
        replicas[(doc as usize) % replica_count].insert_file(dsearch::index::FileId(doc), terms);
    }

    let mut group = c.benchmark_group("ablation_join");
    group.sample_size(10);
    group.bench_function("single_thread_join", |b| {
        b.iter(|| {
            let joined = join_all(replicas.clone());
            black_box(joined.term_count())
        });
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel_reduction_join", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let joined = parallel_join(replicas.clone(), threads);
                    black_box(joined.term_count())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distribution, bench_dedup, bench_stage1_mode, bench_join);
criterion_main!(benches);
