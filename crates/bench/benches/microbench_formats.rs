//! Micro-benchmarks of the format-extraction substrate.
//!
//! The paper notes that "for more complex formats, [term extraction] would
//! take longer" — these benches quantify how much longer: throughput of the
//! format detectors and extractors relative to the plain-text pass-through,
//! over documents of the same size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dsearch::formats::{detect_format, DocumentFormat, FormatRegistry, WpxWriter};

/// Builds a document of roughly `target_bytes` in the given format.
fn sample_document(format: DocumentFormat, target_bytes: usize) -> (String, Vec<u8>) {
    let sentence = "the parallel index generator extracts terms from desktop documents ";
    let mut body = String::new();
    while body.len() < target_bytes {
        body.push_str(sentence);
    }
    match format {
        DocumentFormat::PlainText => ("doc.txt".into(), body.into_bytes()),
        DocumentFormat::Markdown => {
            let mut out = String::from("# Benchmark document\n\n");
            for (i, chunk) in body.as_bytes().chunks(120).enumerate() {
                out.push_str(&format!("- item {i}: *{}*\n", String::from_utf8_lossy(chunk)));
            }
            ("doc.md".into(), out.into_bytes())
        }
        DocumentFormat::Html => {
            let mut out = String::from("<html><body>");
            for chunk in body.as_bytes().chunks(120) {
                out.push_str(&format!("<p>{} &amp; more</p>", String::from_utf8_lossy(chunk)));
            }
            out.push_str("</body></html>");
            ("doc.html".into(), out.into_bytes())
        }
        DocumentFormat::Csv => {
            let mut out = String::from("id,text\n");
            for (i, chunk) in body.as_bytes().chunks(80).enumerate() {
                out.push_str(&format!("{i},\"{}\"\n", String::from_utf8_lossy(chunk)));
            }
            ("doc.csv".into(), out.into_bytes())
        }
        DocumentFormat::Wpx => {
            let mut writer = WpxWriter::new("Benchmark document");
            for chunk in body.as_bytes().chunks(200) {
                writer.paragraph(String::from_utf8_lossy(chunk).into_owned());
            }
            ("doc.wpx".into(), writer.finish().into_bytes())
        }
        DocumentFormat::SourceCode => {
            let mut out = String::new();
            for i in 0..(target_bytes / 64).max(1) {
                out.push_str(&format!(
                    "fn extract_term_batch_{i}(work_queue: &WorkQueue) -> FileTerms {{ todo!() }}\n"
                ));
            }
            ("doc.rs".into(), out.into_bytes())
        }
        DocumentFormat::Binary => ("doc.bin".into(), vec![0u8; target_bytes]),
    }
}

fn bench_extraction_throughput(c: &mut Criterion) {
    let registry = FormatRegistry::with_builtins();
    let mut group = c.benchmark_group("formats_extraction_throughput");
    group.sample_size(20);
    for format in [
        DocumentFormat::PlainText,
        DocumentFormat::Markdown,
        DocumentFormat::Html,
        DocumentFormat::Csv,
        DocumentFormat::Wpx,
        DocumentFormat::SourceCode,
    ] {
        let (path, bytes) = sample_document(format, 64 * 1024);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format), &bytes, |b, bytes| {
            b.iter(|| black_box(registry.extract(&path, bytes).text.len()));
        });
    }
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("formats_detection");
    let cases: Vec<(String, Vec<u8>)> = [
        DocumentFormat::PlainText,
        DocumentFormat::Html,
        DocumentFormat::Csv,
        DocumentFormat::Binary,
    ]
    .into_iter()
    .map(|f| sample_document(f, 16 * 1024))
    .collect();
    // Detection by extension (cheap) vs. content sniffing (extension stripped).
    group.bench_function("by_extension", |b| {
        b.iter(|| {
            for (path, bytes) in &cases {
                black_box(detect_format(path, bytes));
            }
        });
    });
    group.bench_function("by_content_sniffing", |b| {
        b.iter(|| {
            for (_, bytes) in &cases {
                black_box(detect_format("no_extension", bytes));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_extraction_throughput, bench_detection);
criterion_main!(benches);
