//! Micro-benchmarks of the inverted-index building blocks.
//!
//! These isolate the costs the paper reasons about analytically: the price of
//! a shared lock per file versus per term, the cost of replica joins, and the
//! raw insert throughput of the index structure.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use dsearch::index::{FileId, InMemoryIndex, PostingList, ShardedIndex, SharedIndex};
use dsearch::text::Term;

fn word_lists(docs: u32, terms_per_doc: u32, vocab: u32) -> Vec<(FileId, Vec<Term>)> {
    (0..docs)
        .map(|d| {
            let terms = (0..terms_per_doc)
                .map(|k| {
                    Term::from(format!("w{:05}", (d.wrapping_mul(17).wrapping_add(k * 7)) % vocab))
                })
                .collect();
            (FileId(d), terms)
        })
        .collect()
}

fn bench_insert_paths(c: &mut Criterion) {
    let docs = word_lists(2_000, 30, 5_000);
    let mut group = c.benchmark_group("index_insert");
    group.sample_size(10);

    group.bench_function("private_index_en_bloc", |b| {
        b.iter_batched(
            || docs.clone(),
            |docs| {
                let mut index = InMemoryIndex::new();
                for (id, terms) in docs {
                    index.insert_file(id, terms);
                }
                black_box(index.posting_count())
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("shared_index_en_bloc", |b| {
        b.iter_batched(
            || docs.clone(),
            |docs| {
                let index = SharedIndex::new();
                for (id, terms) in docs {
                    index.insert_file(id, terms);
                }
                black_box(index.stats().postings)
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("shared_index_per_term", |b| {
        b.iter_batched(
            || docs.clone(),
            |docs| {
                let index = SharedIndex::new();
                for (id, terms) in docs {
                    for t in terms {
                        index.insert_occurrence(id, t);
                    }
                    index.note_file_done();
                }
                black_box(index.stats().postings)
            },
            BatchSize::SmallInput,
        );
    });

    for shards in [4usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("sharded_index_en_bloc", shards),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || docs.clone(),
                    |docs| {
                        let index = ShardedIndex::new(shards);
                        for (id, terms) in docs {
                            index.insert_file(id, terms);
                        }
                        black_box(index.stats().postings)
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_posting_lists(c: &mut Criterion) {
    let mut group = c.benchmark_group("posting_lists");
    group.sample_size(20);

    let a = PostingList::from_ids((0..20_000).step_by(2).map(FileId));
    let b_list = PostingList::from_ids((0..20_000).step_by(3).map(FileId));

    group.bench_function("union_20k", |bch| {
        bch.iter(|| black_box(a.union(&b_list).len()));
    });
    group.bench_function("intersect_20k", |bch| {
        bch.iter(|| black_box(a.intersect(&b_list).len()));
    });
    group.bench_function("append_in_order_10k", |bch| {
        bch.iter(|| {
            let mut p = PostingList::new();
            for i in 0..10_000 {
                p.add(FileId(i));
            }
            black_box(p.len())
        });
    });
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_merge");
    group.sample_size(10);
    let docs = word_lists(4_000, 25, 4_000);
    let replicas: Vec<InMemoryIndex> = (0..4)
        .map(|r| {
            let mut idx = InMemoryIndex::new();
            for (id, terms) in docs.iter().filter(|(id, _)| id.as_usize() % 4 == r) {
                idx.insert_file(*id, terms.clone());
            }
            idx
        })
        .collect();

    group.bench_function("merge_from_4_replicas", |b| {
        b.iter_batched(
            || replicas.clone(),
            |replicas| {
                let mut acc = InMemoryIndex::new();
                for r in &replicas {
                    acc.merge_from(r);
                }
                black_box(acc.term_count())
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("absorb_4_replicas", |b| {
        b.iter_batched(
            || replicas.clone(),
            |replicas| {
                let mut iter = replicas.into_iter();
                let mut acc = iter.next().unwrap();
                for r in iter {
                    acc.absorb(r);
                }
                black_box(acc.term_count())
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_insert_paths, bench_posting_lists, bench_merge);
criterion_main!(benches);
