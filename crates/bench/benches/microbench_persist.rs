//! Micro-benchmarks of index persistence and incremental re-indexing.
//!
//! Two questions a desktop deployment cares about beyond the paper's scope:
//! how fast can an index be written to / read back from disk (segment
//! encode/decode), and how much work does the incremental re-indexer save
//! compared to a full rebuild when only a small fraction of the corpus
//! changed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dsearch::core::{Configuration, Implementation, IndexGenerator};
use dsearch::corpus::{materialize_to_memfs, CorpusSpec};
use dsearch::index::{DocTable, InMemoryIndex};
use dsearch::persist::segment::{read_segment, write_segment};
use dsearch::persist::{IncrementalIndexer, SignatureDb};
use dsearch::vfs::{MemFs, VPath};

fn built_index() -> (InMemoryIndex, DocTable) {
    let (fs, _) = materialize_to_memfs(&CorpusSpec::paper_scaled(0.001), 31);
    let run = IndexGenerator::default()
        .run(&fs, &VPath::root(), Implementation::ReplicateJoin, Configuration::new(2, 0, 0))
        .expect("index build succeeds");
    run.outcome.into_single_index()
}

fn bench_segment_roundtrip(c: &mut Criterion) {
    let (index, docs) = built_index();
    let mut encoded = Vec::new();
    write_segment(&index, &docs, &mut encoded).unwrap();

    let mut group = c.benchmark_group("persist_segment");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_segment(&index, &docs, &mut buf).unwrap();
            black_box(buf.len())
        });
    });
    group.bench_function("read", |b| {
        b.iter(|| {
            let (restored, _) = read_segment(black_box(&encoded[..])).unwrap();
            black_box(restored.term_count())
        });
    });
    group.bench_function("json_snapshot_write_for_comparison", |b| {
        b.iter(|| {
            let snapshot = dsearch::index::IndexSnapshot::from_index(&index, &docs);
            let mut buf = Vec::new();
            snapshot.write_json(&mut buf).unwrap();
            black_box(buf.len())
        });
    });
    group.finish();
}

/// Builds a corpus, indexes it, then mutates `changed_files` files.
fn mutated_corpus(changed_files: usize) -> (MemFs, InMemoryIndex, DocTable, SignatureDb) {
    let (fs, manifest) = materialize_to_memfs(&CorpusSpec::paper_scaled(0.001), 77);
    let indexer = IncrementalIndexer::new();
    let mut index = InMemoryIndex::new();
    let mut docs = DocTable::new();
    let mut signatures = SignatureDb::new();
    indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut signatures).unwrap();
    for (i, path) in manifest.paths().into_iter().take(changed_files).enumerate() {
        fs.remove_file(&path).unwrap();
        fs.add_file(&path, format!("rewritten document number {i} with fresh terms").into_bytes())
            .unwrap();
    }
    (fs, index, docs, signatures)
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_incremental_vs_full_rebuild");
    group.sample_size(10);
    for changed in [1usize, 8, 32] {
        let (fs, index, docs, signatures) = mutated_corpus(changed);
        group.bench_with_input(BenchmarkId::new("incremental", changed), &changed, |b, _| {
            let indexer = IncrementalIndexer::new();
            b.iter(|| {
                let mut index = index.clone();
                let mut docs = docs.clone();
                let mut signatures = signatures.clone();
                let report = indexer
                    .update(&fs, &VPath::root(), &mut index, &mut docs, &mut signatures)
                    .unwrap();
                black_box(report.postings_added)
            });
        });
        group.bench_with_input(BenchmarkId::new("full_rebuild", changed), &changed, |b, _| {
            let indexer = IncrementalIndexer::new();
            b.iter(|| {
                let mut index = InMemoryIndex::new();
                let mut docs = DocTable::new();
                let mut signatures = SignatureDb::new();
                let report = indexer
                    .update(&fs, &VPath::root(), &mut index, &mut docs, &mut signatures)
                    .unwrap();
                black_box(report.postings_added)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_segment_roundtrip, bench_incremental_vs_full);
criterion_main!(benches);
