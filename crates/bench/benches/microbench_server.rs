//! Server microbenchmarks: query throughput through the worker pool at
//! 1/4/8 workers, with a cold cache (every request distinct) versus a warm
//! cache (small repeated workload), and batched versus unbatched execution
//! on a repeated/shared-term workload the cache cannot absorb.
//!
//! Run with `cargo bench --bench microbench_server`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dsearch::index::{DocTable, InMemoryIndex};
use dsearch::server::{
    loadgen, BatchConfig, EngineConfig, IndexSnapshot, LoadConfig, LoadMode, QueryEngine,
    WorkerPool, Workload,
};
use dsearch::text::Term;

/// A deterministic synthetic index: `docs` documents over a vocabulary with
/// Zipf-ish sharing ("common" everywhere, `w{k}` spread over k-sized strata).
fn build_snapshot(docs: usize) -> IndexSnapshot {
    let mut table = DocTable::new();
    let mut index = InMemoryIndex::new();
    for i in 0..docs {
        let id = table.insert(format!("doc{i}.txt"));
        let words = [
            "common".to_string(),
            format!("w{}", i % 10),
            format!("m{}", i % 100),
            format!("rare{i}"),
        ];
        index.insert_file(id, words.into_iter().map(Term::from));
    }
    IndexSnapshot::from_index(index, table, 1)
}

fn engine_with(workers: usize, cache_capacity: usize) -> Arc<QueryEngine> {
    QueryEngine::new(
        build_snapshot(2000),
        EngineConfig {
            workers,
            cache_capacity,
            cache_shards: 8,
            result_limit: 20,
            ..EngineConfig::default()
        },
    )
    .expect("bench config is valid")
}

/// Warm workload: 16 distinct queries replayed; after the first pass every
/// request is a cache hit.
fn warm_workload() -> Workload {
    Workload::from_queries((0..16).map(|i| format!("common w{} OR m{}", i % 10, i % 100)).collect())
}

/// Cold workload: a large pool of distinct queries (far beyond the cache
/// capacity used in the cold benchmark) so effectively every request misses.
fn cold_workload() -> Workload {
    Workload::from_queries((0..4096).map(|i| format!("m{} rare{}", i % 100, i % 2000)).collect())
}

const REQUESTS_PER_ITER: usize = 512;

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REQUESTS_PER_ITER as u64));

    for workers in [1usize, 4, 8] {
        // Warm: shared engine keeps its cache across iterations.
        let engine = engine_with(workers, 4096);
        let pool = WorkerPool::start(Arc::clone(&engine));
        let workload = warm_workload();
        group.bench_with_input(BenchmarkId::new("warm_cache", workers), &workers, |b, &workers| {
            b.iter(|| {
                let report = loadgen::run(
                    &pool,
                    &workload,
                    &LoadConfig {
                        requests: REQUESTS_PER_ITER,
                        mode: LoadMode::Closed { clients: workers.max(2) },
                        stage_report: false,
                        deadline_ms: None,
                    },
                );
                assert_eq!(report.errors, 0);
                report.latency.p99
            });
        });
        pool.shutdown();

        // Cold: tiny cache + distinct queries, so every request searches.
        let engine = engine_with(workers, 1);
        let pool = WorkerPool::start(Arc::clone(&engine));
        let workload = cold_workload();
        group.bench_with_input(BenchmarkId::new("cold_cache", workers), &workers, |b, &workers| {
            b.iter(|| {
                let report = loadgen::run(
                    &pool,
                    &workload,
                    &LoadConfig {
                        requests: REQUESTS_PER_ITER,
                        mode: LoadMode::Closed { clients: workers.max(2) },
                        stage_report: false,
                        deadline_ms: None,
                    },
                );
                assert_eq!(report.errors, 0);
                report.latency.p99
            });
        });
        pool.shutdown();
    }
    group.finish();
}

fn bench_cache_effect(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_cache_effect");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REQUESTS_PER_ITER as u64));

    // Same engine shape, same 4 workers — the only variable is whether the
    // repeated workload can hit the cache.
    let warm_engine = engine_with(4, 4096);
    let warm_pool = WorkerPool::start(Arc::clone(&warm_engine));
    let warm = warm_workload();
    group.bench_function("repeated_queries_warm", |b| {
        b.iter(|| {
            loadgen::run(
                &warm_pool,
                &warm,
                &LoadConfig {
                    requests: REQUESTS_PER_ITER,
                    mode: LoadMode::Closed { clients: 4 },
                    stage_report: false,
                    deadline_ms: None,
                },
            )
            .qps
        });
    });

    let cold_engine = engine_with(4, 1);
    let cold_pool = WorkerPool::start(Arc::clone(&cold_engine));
    group.bench_function("repeated_queries_cold", |b| {
        b.iter(|| {
            loadgen::run(
                &cold_pool,
                &warm,
                &LoadConfig {
                    requests: REQUESTS_PER_ITER,
                    mode: LoadMode::Closed { clients: 4 },
                    stage_report: false,
                    deadline_ms: None,
                },
            )
            .qps
        });
    });

    // Report the measured cache effect once, outside the timing loops.
    let warm_counters = warm_engine.cache_counters();
    let cold_counters = cold_engine.cache_counters();
    println!(
        "cache hit rates: warm {:.3} vs cold {:.3}",
        warm_counters.hit_rate(),
        cold_counters.hit_rate()
    );

    warm_pool.shutdown();
    cold_pool.shutdown();
    group.finish();
}

/// An engine whose cache cannot absorb the workload (one entry), so any win
/// on repeated/shared-term queries comes from batching: in-batch dedup plus
/// the per-batch posting memo.
fn batching_engine(max_batch: usize) -> Arc<QueryEngine> {
    QueryEngine::new(
        build_snapshot(2000),
        EngineConfig {
            workers: 2,
            cache_capacity: 1,
            cache_shards: 1,
            result_limit: 20,
            batch: BatchConfig { max_batch, ..BatchConfig::default() },
            ..EngineConfig::default()
        },
    )
    .expect("bench config is valid")
}

/// Repeated queries with heavy term sharing: 4 distinct canonical forms,
/// all anchored on "common", cycling fast enough that a one-entry cache
/// never helps two consecutive requests.  With 8 closed-loop clients a
/// drained batch usually holds duplicates, so both dedup and the posting
/// memo contribute.
fn shared_term_workload() -> Workload {
    Workload::from_queries((0..64).map(|i| format!("common w{}", i % 4)).collect())
}

fn bench_batching(c: &mut Criterion) {
    // Out-of-band comparison for the batched-vs-unbatched acceptance check:
    // one long run per configuration, reporting throughput and the batching
    // counters.  8 closed-loop clients against 2 workers keep a backlog
    // queued, which is where batching can group and deduplicate.
    for (label, max_batch) in [("unbatched(max_batch=1)", 1), ("batched(max_batch=32)", 32)] {
        let engine = batching_engine(max_batch);
        let pool = WorkerPool::start(Arc::clone(&engine));
        let report = loadgen::run(
            &pool,
            &shared_term_workload(),
            &LoadConfig {
                requests: 8192,
                mode: LoadMode::Closed { clients: 8 },
                stage_report: false,
                deadline_ms: None,
            },
        );
        let stats = engine.stats();
        println!(
            "{label}: qps {:.0}  p99 {:?}  batched {}  dedup_hits {}",
            report.qps,
            report.latency.p99,
            stats.batched_count(),
            stats.dedup_hit_count()
        );
        pool.shutdown();
    }

    let mut group = c.benchmark_group("server_batching");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REQUESTS_PER_ITER as u64));

    for (name, max_batch) in [("unbatched", 1usize), ("batched", 32)] {
        let engine = batching_engine(max_batch);
        let pool = WorkerPool::start(Arc::clone(&engine));
        let workload = shared_term_workload();
        group.bench_function(BenchmarkId::new("shared_terms", name), |b| {
            b.iter(|| {
                let report = loadgen::run(
                    &pool,
                    &workload,
                    &LoadConfig {
                        requests: REQUESTS_PER_ITER,
                        mode: LoadMode::Closed { clients: 8 },
                        stage_report: false,
                        deadline_ms: None,
                    },
                );
                assert_eq!(report.errors, 0);
                report.qps
            });
        });
        pool.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_worker_scaling, bench_cache_effect, bench_batching);
criterion_main!(benches);
