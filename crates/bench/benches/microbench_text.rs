//! Micro-benchmarks of the text substrate: FNV hashing, the open-addressing
//! containers, tokenisation and per-file duplicate elimination.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use dsearch::corpus::{CorpusSpec, DocumentGenerator};
use dsearch::text::hashtable::{FnvHashMap, FnvHashSet};
use dsearch::text::tokenizer::Tokenizer;
use dsearch::text::wordlist::WordListBuilder;
use dsearch::text::{fnv1_32, fnv1a_64};

fn bench_fnv(c: &mut Criterion) {
    let mut group = c.benchmark_group("fnv");
    let inputs: Vec<&[u8]> = vec![b"a", b"filename", b"a-reasonably-long-identifier-term"];
    for input in inputs {
        group.throughput(Throughput::Bytes(input.len() as u64));
        group.bench_with_input(format!("fnv1a_64/{}B", input.len()), input, |b, input| {
            b.iter(|| black_box(fnv1a_64(input)));
        });
        group.bench_with_input(format!("fnv1_32/{}B", input.len()), input, |b, input| {
            b.iter(|| black_box(fnv1_32(input)));
        });
    }
    group.finish();
}

fn bench_hashtable(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashtable");
    group.sample_size(20);
    let keys: Vec<String> = (0..10_000).map(|i| format!("term{i:05}")).collect();

    group.bench_function("fnv_map_insert_10k", |b| {
        b.iter(|| {
            let mut map: FnvHashMap<&str, u32> = FnvHashMap::with_capacity(keys.len());
            for (i, k) in keys.iter().enumerate() {
                map.insert(k.as_str(), i as u32);
            }
            black_box(map.len())
        });
    });
    group.bench_function("std_map_insert_10k", |b| {
        b.iter(|| {
            let mut map: std::collections::HashMap<&str, u32> =
                std::collections::HashMap::with_capacity(keys.len());
            for (i, k) in keys.iter().enumerate() {
                map.insert(k.as_str(), i as u32);
            }
            black_box(map.len())
        });
    });
    group.bench_function("fnv_set_dedup_10k", |b| {
        b.iter(|| {
            let mut set: FnvHashSet<&str> = FnvHashSet::with_capacity(keys.len());
            for k in &keys {
                set.insert(k.as_str());
                set.insert(k.as_str());
            }
            black_box(set.len())
        });
    });
    group.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let gen = DocumentGenerator::new(&CorpusSpec::tiny(), 9);
    let doc = gen.generate(200_000, 1);
    let tokenizer = Tokenizer::default();

    let mut group = c.benchmark_group("tokenizer");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_function("scan_only_200kB", |b| {
        b.iter(|| black_box(tokenizer.scan_only(&doc)));
    });
    group.bench_function("tokenize_200kB", |b| {
        b.iter(|| {
            let (terms, _) = tokenizer.tokenize(&doc);
            black_box(terms.len())
        });
    });
    group.bench_function("tokenize_and_dedup_200kB", |b| {
        b.iter(|| {
            let (terms, _) = tokenizer.tokenize(&doc);
            let mut builder = WordListBuilder::with_capacity(terms.len() / 2);
            for t in terms {
                builder.push(t);
            }
            black_box(builder.finish().len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fnv, bench_hashtable, bench_tokenizer);
criterion_main!(benches);
