//! Micro-benchmarks of posting-list set operations and end-to-end query
//! evaluation.
//!
//! The `posting_ops` group isolates the three primitives PR 3 rewrote:
//!
//! * **intersect** — the naive two-pointer merge (`PostingList::intersect`,
//!   which also allocates its result) against the borrowed
//!   `PostingView::intersect_into` path, at a skewed size ratio (where the
//!   view gallops) and a balanced one (where it merges linearly into a
//!   reused scratch buffer);
//! * **union** — folding `union_with` pairwise over many lists against the
//!   k-way heap merge `union_into`;
//! * **prefix** — the historical full-table scan against the sorted-
//!   dictionary range lookup.
//!
//! The `query_eval` group proves the end-to-end win: the pre-PR-3 evaluation
//! strategy (clone every posting list, intersect left-to-right in query
//! order) re-implemented here as the baseline, against
//! `SingleIndexSearcher::search`'s zero-copy, selectivity-ordered path and
//! (since PR 4) a sealed snapshot's block-compressed skip-seek path.
//!
//! PR 4 adds compressed counterparts to every primitive: `intersect` and
//! `union` over `BlockCursor`s (skip-seek through compressed blocks) next to
//! the borrowed-view numbers, so the cost/benefit of compression is measured
//! in the same group it changes.  Bytes/posting is reported by the
//! `bench_summary` binary (it is a size, not a time).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dsearch::index::{
    intersect_cursors_into, union_cursors_into, union_into, CompressedPostings, DocTable, FileId,
    InMemoryIndex, PostingList, PostingView, PostingsCursor,
};
use dsearch::query::{Query, QueryTerm, SearchBackend, SingleIndexSearcher};
use dsearch::server::IndexSnapshot;
use dsearch::text::Term;

fn list_of(range: impl Iterator<Item = u32>) -> PostingList {
    PostingList::from_ids(range.map(FileId))
}

fn bench_intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("posting_ops");
    group.sample_size(10);

    // Skewed: 100 ids spread across a 100k-id list — the galloping case.
    let small = list_of((0..100).map(|i| i * 1_000));
    let large = list_of(0..100_000);
    group.bench_function("intersect/naive/skewed_100_vs_100k", |b| {
        b.iter(|| black_box(small.intersect(&large).len()));
    });
    group.bench_function("intersect/gallop/skewed_100_vs_100k", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            small.as_view().intersect_into(large.as_view(), &mut out);
            black_box(out.len())
        });
    });

    // The same skewed shape over block-compressed lists: the cursor seeks
    // through the 100k-id list's skip table, decoding only the ~100 blocks
    // that can contain a match candidate.
    let small_compressed = CompressedPostings::from_list(&small);
    let large_compressed = CompressedPostings::from_list(&large);
    group.bench_function("intersect/block_skip_seek/skewed_100_vs_100k", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            intersect_cursors_into(
                PostingsCursor::Block(small_compressed.cursor()),
                PostingsCursor::Block(large_compressed.cursor()),
                &mut out,
            );
            black_box(out.len())
        });
    });

    // Balanced: two 10k lists with 50 % overlap — the linear-merge case,
    // where the win is the reused scratch buffer, not the gallop.
    let even = list_of((0..10_000).map(|i| i * 2));
    let all = list_of(0..10_000);
    group.bench_function("intersect/naive/balanced_10k_vs_10k", |b| {
        b.iter(|| black_box(even.intersect(&all).len()));
    });
    group.bench_function("intersect/gallop/balanced_10k_vs_10k", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            even.as_view().intersect_into(all.as_view(), &mut out);
            black_box(out.len())
        });
    });
    let even_compressed = CompressedPostings::from_list(&even);
    let all_compressed = CompressedPostings::from_list(&all);
    group.bench_function("intersect/block_leapfrog/balanced_10k_vs_10k", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            intersect_cursors_into(
                PostingsCursor::Block(even_compressed.cursor()),
                PostingsCursor::Block(all_compressed.cursor()),
                &mut out,
            );
            black_box(out.len())
        });
    });
    group.finish();
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("posting_ops");
    group.sample_size(10);

    // Interleaved lists, the shape a prefix expansion or cross-shard merge
    // produces.  Pairwise folding is O(total · k) — every fold step re-walks
    // the accumulated result — so the k-way merge pulls ahead as the fan-in
    // grows.
    // `block` controls how runny the ids are: 1 is fully interleaved (the
    // worst case for the heap's run optimisation), larger blocks mimic
    // shards owning contiguous file-id ranges.
    for (name, k, per_list, block) in
        [("16x2k", 16u32, 2_000u32, 1u32), ("128x250", 128, 250, 1), ("16x2k_runs", 16, 2_000, 100)]
    {
        let lists: Vec<PostingList> = (0..k)
            .map(|j| {
                list_of((0..per_list).map(move |i| {
                    let (run, off) = (i / block, i % block);
                    (run * k + j) * block + off
                }))
            })
            .collect();
        group.bench_function(format!("union/pairwise_fold/{name}"), |b| {
            b.iter(|| {
                let mut acc = PostingList::new();
                for list in &lists {
                    acc.union_with(list);
                }
                black_box(acc.len())
            });
        });
        group.bench_function(format!("union/kway_heap/{name}"), |b| {
            let views: Vec<PostingView<'_>> = lists.iter().map(PostingList::as_view).collect();
            let mut out = Vec::new();
            b.iter(|| {
                union_into(&views, &mut out);
                black_box(out.len())
            });
        });
        let compressed: Vec<CompressedPostings> =
            lists.iter().map(CompressedPostings::from_list).collect();
        group.bench_function(format!("union/block_cursor_heap/{name}"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                let cursors: Vec<PostingsCursor<'_>> =
                    compressed.iter().map(|cp| PostingsCursor::Block(cp.cursor())).collect();
                union_cursors_into(cursors, &mut out);
                black_box(out.len())
            });
        });
    }
    group.finish();
}

/// An index over a synthetic vocabulary: `docs` documents, each holding one
/// ubiquitous term, a handful of mid-frequency terms, and one rare term.
fn synthetic_index(docs: u32) -> (InMemoryIndex, DocTable) {
    let mut index = InMemoryIndex::new();
    let mut table = DocTable::new();
    for d in 0..docs {
        let id = table.insert(format!("doc{d:06}.txt"));
        let mut terms = vec![
            Term::from("common"),
            Term::from(format!("mid{:03}", d % 200)),
            Term::from(format!("rare{d:06}")),
        ];
        if d % 2 == 0 {
            terms.push(Term::from("even"));
        }
        index.insert_file(id, terms);
    }
    (index, table)
}

fn bench_prefix(c: &mut Criterion) {
    let mut group = c.benchmark_group("posting_ops");
    group.sample_size(10);

    let (mut index, _docs) = synthetic_index(20_000);
    // The historical full-table scan, exactly as prefix_postings used to run.
    let full_scan = |index: &InMemoryIndex, prefix: &str| {
        let mut out = PostingList::new();
        for (term, list) in index.iter() {
            if term.as_str().starts_with(prefix) {
                out.union_with(list);
            }
        }
        out
    };
    group.bench_function("prefix/full_scan/mid1", |b| {
        b.iter(|| black_box(full_scan(&index, "mid1").len()));
    });
    index.build_dictionary();
    group.bench_function("prefix/dictionary/mid1", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let lists = index.prefix_lists("mid1");
            let views: Vec<PostingView<'_>> = lists.iter().map(|l| l.as_view()).collect();
            union_into(&views, &mut out);
            black_box(out.len())
        });
    });
    group.finish();
}

/// The pre-PR-3 evaluation strategy: clone every posting list out of the
/// index and intersect in query order, allocating a fresh list per operator.
fn eval_cloned_left_to_right(index: &InMemoryIndex, query: &Query) -> usize {
    let mut total = 0usize;
    for group in query.groups() {
        let mut iter = group.required().iter();
        let Some(first) = iter.next() else { continue };
        let owned_lookup = |term: &QueryTerm| -> PostingList {
            match term {
                QueryTerm::Exact(t) => index.postings(t).cloned().unwrap_or_default(),
                QueryTerm::Prefix(p) => {
                    let mut out = PostingList::new();
                    for (term, list) in index.iter() {
                        if term.as_str().starts_with(p.as_str()) {
                            out.union_with(list);
                        }
                    }
                    out
                }
            }
        };
        let mut acc = owned_lookup(first);
        for term in iter {
            if acc.is_empty() {
                break;
            }
            acc = acc.intersect(&owned_lookup(term));
        }
        total += acc.len();
    }
    total
}

fn bench_query_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_eval");
    group.sample_size(10);

    let (mut index, docs) = synthetic_index(20_000);
    index.build_dictionary();
    let searcher = SingleIndexSearcher::new(&index, &docs);
    let queries: Vec<(&str, Query)> = [
        ("skewed_and", "rare012345 common"),
        ("three_term_and", "mid042 even common"),
        ("prefix", "mid04* even"),
        ("or_groups", "mid001 common OR mid002 even"),
    ]
    .into_iter()
    .map(|(name, raw)| (name, Query::parse(raw).expect("bench query parses")))
    .collect();

    // The same corpus sealed into a compressed serving snapshot: queries run
    // through block cursors (skip-seek on skewed ANDs, one decode for
    // single-term results) instead of borrowed slices.
    let snapshot = IndexSnapshot::from_index(index.clone(), docs.clone(), 1);

    for (name, query) in &queries {
        group.bench_function(format!("cloned_left_to_right/{name}"), |b| {
            b.iter(|| black_box(eval_cloned_left_to_right(&index, query)));
        });
        group.bench_function(format!("zero_copy/{name}"), |b| {
            b.iter(|| black_box(searcher.search(query).len()));
        });
        group.bench_function(format!("sealed_compressed/{name}"), |b| {
            b.iter(|| black_box(snapshot.search(query).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intersect, bench_union, bench_prefix, bench_query_eval);
criterion_main!(benches);
