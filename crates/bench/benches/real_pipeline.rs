//! End-to-end throughput of the real threaded pipeline on this host.
//!
//! Sweeps the extraction-thread count for each of the three implementations,
//! which is the raw measurement the paper's evaluation is built on (its
//! machines simply had more cores than this container).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dsearch::core::{Configuration, Implementation, IndexGenerator};
use dsearch::corpus::{materialize_to_memfs, CorpusSpec};
use dsearch::vfs::VPath;

fn bench_real_pipeline(c: &mut Criterion) {
    let (fs, manifest) = materialize_to_memfs(&CorpusSpec::paper_scaled(0.001), 5);
    let root = VPath::root();
    let generator = IndexGenerator::default();

    let mut group = c.benchmark_group("real_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(manifest.total_bytes()));

    group.bench_function("sequential_baseline", |b| {
        b.iter(|| {
            let run = generator.run_sequential(&fs, &root).unwrap();
            black_box(run.index.term_count())
        });
    });

    for implementation in Implementation::ALL {
        for x in [1usize, 2, 4] {
            let config = Configuration::new(x, 0, 0);
            group.bench_with_input(
                BenchmarkId::new(implementation.paper_name().replace(' ', "_"), x),
                &config,
                |b, config| {
                    b.iter(|| {
                        let run = generator.run(&fs, &root, implementation, *config).unwrap();
                        black_box(run.outcome.file_count())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_real_pipeline);
criterion_main!(benches);
