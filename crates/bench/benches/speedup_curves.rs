//! Speed-up-vs-thread-count curves (the figure-style view behind Tables 2–4).
//!
//! The paper only prints the best configuration per implementation; the data
//! behind those rows is a full sweep over thread allocations.  This bench
//! evaluates the calibrated platform models over that sweep for each paper
//! platform (the bench time measures the model/sweep machinery itself;
//! the curve values are printed once at start-up so the series can be read
//! from the bench output).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsearch::sim::{all_curves, amdahl_ceiling, PlatformModel, WorkloadModel};

fn print_curves_once(platform: &PlatformModel, workload: &WorkloadModel) {
    let max_threads = platform.cores + 2;
    let curves = all_curves(platform, workload, max_threads);
    println!("\n# speed-up vs extraction threads — {}", platform.name);
    print!("# x:");
    for x in 1..=max_threads {
        print!(" {x:>5}");
    }
    println!();
    for curve in &curves {
        print!("# {}:", curve.implementation.paper_name());
        for point in &curve.points {
            print!(" {:>5.2}", point.estimate.speedup);
        }
        println!();
    }
    print!("# Amdahl ceiling:");
    for x in 1..=max_threads {
        print!(" {:>5.2}", amdahl_ceiling(platform, workload, x));
    }
    println!();
}

fn bench_speedup_curves(c: &mut Criterion) {
    let workload = WorkloadModel::paper();
    let mut group = c.benchmark_group("speedup_curves");
    for platform in PlatformModel::paper_platforms() {
        print_curves_once(&platform, &workload);
        let threads = platform.cores + 2;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_core_sweep", platform.cores)),
            &platform,
            |b, platform| {
                b.iter(|| {
                    let curves = all_curves(platform, &workload, threads);
                    black_box(curves.iter().map(|c| c.peak_speedup()).sum::<f64>())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_speedup_curves);
criterion_main!(benches);
