//! Table 1 — execution times for sequential index generation.
//!
//! The paper's Table 1 breaks the sequential generator into four measured
//! stages (filename generation, read files, read + extract, index update).
//! This bench measures the same four stages of the real Rust pipeline on a
//! scaled synthetic corpus, so the *relative* shape (reading dominates,
//! filename generation is negligible) can be compared with the paper; the
//! absolute 4/8/32-core numbers are reproduced by the platform model (see the
//! `reproduce_tables` binary).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dsearch::core::IndexGenerator;
use dsearch::corpus::{materialize_to_memfs, CorpusSpec};
use dsearch::text::tokenizer::Tokenizer;
use dsearch::vfs::{FileSystem, VPath, Walker};

fn bench_table1(c: &mut Criterion) {
    let spec = CorpusSpec::paper_scaled(0.001);
    let (fs, manifest) = materialize_to_memfs(&spec, 1);
    let root = VPath::root();
    let mut group = c.benchmark_group("table1_sequential_stages");
    group.sample_size(10);

    group.bench_function("stage1_filename_generation", |b| {
        b.iter(|| {
            let (files, stats) = Walker::new().walk(&fs, &root).unwrap();
            black_box((files.len(), stats.total_bytes))
        });
    });

    let (files, _) = Walker::new().walk(&fs, &root).unwrap();
    let tokenizer = Tokenizer::default();

    group.bench_function("read_files_only", |b| {
        b.iter(|| {
            let mut bytes = 0u64;
            for f in &files {
                let data = fs.read(&f.path).unwrap();
                bytes += tokenizer.scan_only(&data);
            }
            black_box(bytes)
        });
    });

    group.bench_function("read_and_extract_terms", |b| {
        b.iter(|| {
            let mut terms = 0u64;
            for f in &files {
                let data = fs.read(&f.path).unwrap();
                let (toks, _) = tokenizer.tokenize(&data);
                terms += toks.len() as u64;
            }
            black_box(terms)
        });
    });

    group.bench_function("index_update", |b| {
        // Pre-extract once; measure only the index-update stage, as the paper
        // does.
        let generator = IndexGenerator::default();
        let run = generator.run_sequential(&fs, &root).unwrap();
        let extracted: Vec<(u32, Vec<dsearch::text::Term>)> = run
            .index
            .iter()
            .flat_map(|(t, p)| p.iter().map(move |id| (id.as_u32(), t.clone())))
            .fold(std::collections::BTreeMap::new(), |mut acc, (id, term)| {
                acc.entry(id).or_insert_with(Vec::new).push(term);
                acc
            })
            .into_iter()
            .collect();
        b.iter_batched(
            || extracted.clone(),
            |docs| {
                let mut index = dsearch::index::InMemoryIndex::new();
                for (id, terms) in docs {
                    index.insert_file(dsearch::index::FileId(id), terms);
                }
                black_box(index.term_count())
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("full_sequential_pipeline", |b| {
        let generator = IndexGenerator::default();
        b.iter(|| {
            let run = generator.run_sequential(&fs, &root).unwrap();
            black_box(run.index.term_count())
        });
    });

    group.finish();
    eprintln!(
        "corpus for table1 bench: {} files, {} bytes",
        manifest.file_count(),
        manifest.total_bytes()
    );
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
