//! Table 2 — best configurations on the 4-core Intel machine.
//!
//! Two things are measured:
//!
//! 1. the *real* threaded pipeline, run at the paper's best configuration for
//!    each implementation on a scaled corpus (exercises the exact code path
//!    the paper measures; absolute speed-up depends on this host's cores);
//! 2. the platform-model evaluation that regenerates the published table
//!    (also printed by `reproduce_tables -- table2`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dsearch::core::IndexGenerator;
use dsearch::corpus::{materialize_to_memfs, CorpusSpec};
use dsearch::sim::{estimate_run, paper, PlatformModel, WorkloadModel};
use dsearch::vfs::VPath;

fn bench_table2(c: &mut Criterion) {
    let (fs, _) = materialize_to_memfs(&CorpusSpec::paper_scaled(0.001), 2);
    let root = VPath::root();
    let generator = IndexGenerator::default();
    let expected = paper::table2();
    let platform = PlatformModel::four_core();
    let workload = WorkloadModel::paper();

    let mut group = c.benchmark_group("table2_4core");
    group.sample_size(10);

    for row in &expected.rows {
        group.bench_function(
            format!(
                "real_{}_{}",
                row.implementation.paper_name().replace(' ', "_"),
                row.best_configuration
            ),
            |b| {
                b.iter(|| {
                    let run = generator
                        .run(&fs, &root, row.implementation, row.best_configuration)
                        .unwrap();
                    black_box(run.outcome.file_count())
                });
            },
        );
    }

    group.bench_function("model_evaluation_all_rows", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for row in &expected.rows {
                total +=
                    estimate_run(&platform, &workload, row.implementation, row.best_configuration)
                        .total_s;
            }
            black_box(total)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
