//! Table 3 — best configurations on the 8-core Intel machine.
//!
//! Same structure as the Table 2 bench: the real threaded pipeline at the
//! paper's best configurations, plus the platform-model evaluation that
//! regenerates the published numbers (`reproduce_tables -- table3`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dsearch::core::IndexGenerator;
use dsearch::corpus::{materialize_to_memfs, CorpusSpec};
use dsearch::sim::{estimate_run, paper, PlatformModel, WorkloadModel};
use dsearch::vfs::VPath;

fn bench_table3(c: &mut Criterion) {
    let (fs, _) = materialize_to_memfs(&CorpusSpec::paper_scaled(0.001), 3);
    let root = VPath::root();
    let generator = IndexGenerator::default();
    let expected = paper::table3();
    let platform = PlatformModel::eight_core();
    let workload = WorkloadModel::paper();

    let mut group = c.benchmark_group("table3_8core");
    group.sample_size(10);

    for row in &expected.rows {
        group.bench_function(
            format!(
                "real_{}_{}",
                row.implementation.paper_name().replace(' ', "_"),
                row.best_configuration
            ),
            |b| {
                b.iter(|| {
                    let run = generator
                        .run(&fs, &root, row.implementation, row.best_configuration)
                        .unwrap();
                    black_box(run.outcome.file_count())
                });
            },
        );
    }

    group.bench_function("model_evaluation_all_rows", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for row in &expected.rows {
                total +=
                    estimate_run(&platform, &workload, row.implementation, row.best_configuration)
                        .total_s;
            }
            black_box(total)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
