//! `bench_summary` — machine-readable perf trajectory for CI.
//!
//! Re-runs the key `posting_ops`/`query_eval` measurements with plain
//! `Instant` timing (median of N runs) and emits them, together with the
//! compressed-index size metrics, a `query_topk` group (BM25 block-max
//! WAND top-k vs an exhaustive scoring of every posting, at k=10/100 over
//! a skewed and a dense-OR shape, with the prune counters), a router
//! scatter-gather group (direct engine vs routed over 1 and 2 local
//! shards), the traced router stage breakdown (scatter vs shard round
//! trip vs merge medians, harvested from the responses' own query
//! traces), a `route_replicated` group (2 logical shards × 2 replicas:
//! healthy vs one-replica-down vs hedged p50/p99) and a `build_pipeline`
//! group (cold checkpointed build vs a build resumed at 50 %, plus the
//! wall-time cost of per-item / 1 s / 10 s checkpoint intervals), as one
//! JSON object — `BENCH_PR10.json` by default — so the perf trajectory of
//! the serving stack is diffable PR-over-PR without scraping bench
//! output.
//!
//! ```text
//! bench_summary [--quick] [--out PATH]
//! ```
//!
//! `--quick` (used by CI's compile-and-smoke step) cuts the sample count so
//! the whole run stays in the low seconds; absolute numbers are then noisy,
//! but the file's shape and the size metrics (which do not depend on timing)
//! stay exact.

use std::hint::black_box;
use std::time::{Duration, Instant};

use dsearch::core::{BuildOptions, BuildPipeline};
use dsearch::corpus::{materialize_to_memfs, CorpusSpec};
use dsearch::index::{
    intersect_cursors_into, union_cursors_into, union_into, CompressedPostings, DocTable, FileId,
    InMemoryIndex, PostingList, PostingView, PostingsCursor, SealedShard,
};
use dsearch::obs::Stage;
use dsearch::query::{search_topk, Query, SearchBackend, SingleIndexSearcher};
use dsearch::server::{
    EngineConfig, IndexSnapshot, LocalShards, QueryEngine, RemoteShard, RemoteShardConfig,
    ReplicaSet, ReplicaSetConfig, Router, RouterConfig, ShardBackend,
};
use dsearch::text::Term;
use dsearch::vfs::VPath;
use serde::Value;

/// A self-cleaning store directory for the build-pipeline group.
struct BenchStoreDir(std::path::PathBuf);

impl BenchStoreDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("dsearch-bench-build-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("bench store dir");
        BenchStoreDir(path)
    }

    fn path(&self) -> std::path::PathBuf {
        self.0.clone()
    }
}

impl Drop for BenchStoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn median_ns<F: FnMut()>(samples: usize, mut routine: F) -> u64 {
    routine(); // warm-up, untimed
    let mut times: Vec<u64> = (0..samples.max(3))
        .map(|_| {
            let start = Instant::now();
            routine();
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// The `posting_ops` synthetic corpus: one ubiquitous term, 200 mid-frequency
/// terms, one rare term per document, plus "even" on every second document.
fn synthetic_index(docs: u32) -> (InMemoryIndex, DocTable) {
    let mut index = InMemoryIndex::new();
    let mut table = DocTable::new();
    for d in 0..docs {
        let id = table.insert(format!("doc{d:06}.txt"));
        let mut terms = vec![
            Term::from("common"),
            Term::from(format!("mid{:03}", d % 200)),
            Term::from(format!("rare{d:06}")),
        ];
        if d % 2 == 0 {
            terms.push(Term::from("even"));
        }
        index.insert_file(id, terms);
    }
    (index, table)
}

fn list_of(range: impl Iterator<Item = u32>) -> PostingList {
    PostingList::from_ids(range.map(FileId))
}

/// The same synthetic corpus split into `shards` independent engines, each
/// with its own doc table (shard-local file ids, like separate `dsearch
/// serve` processes).
fn sharded_engines(docs: u32, shards: u32) -> Vec<std::sync::Arc<QueryEngine>> {
    (0..shards)
        .map(|s| {
            let mut index = InMemoryIndex::new();
            let mut table = DocTable::new();
            for d in (0..docs).filter(|d| d % shards == s) {
                let id = table.insert(format!("doc{d:06}.txt"));
                let mut terms = vec![
                    Term::from("common"),
                    Term::from(format!("mid{:03}", d % 200)),
                    Term::from(format!("rare{d:06}")),
                ];
                if d % 2 == 0 {
                    terms.push(Term::from("even"));
                }
                index.insert_file(id, terms);
            }
            QueryEngine::new(
                IndexSnapshot::from_index(index, table, 1),
                EngineConfig { workers: 1, ..EngineConfig::default() },
            )
            .expect("bench engine config is valid")
        })
        .collect()
}

/// Router config for the timing groups: result cache off, so repeated
/// identical bench queries measure the scatter path PR-over-PR instead of a
/// cache lookup.
fn scatter_config() -> RouterConfig {
    RouterConfig { cache_capacity: 0, ..RouterConfig::default() }
}

fn router_over(shards: u32) -> std::sync::Arc<Router> {
    let backends: Vec<Box<dyn ShardBackend>> = sharded_engines(20_000, shards)
        .into_iter()
        .enumerate()
        .map(|(i, engine)| {
            Box::new(LocalShards::new(engine).with_id(format!("shard-{i}")))
                as Box<dyn ShardBackend>
        })
        .collect();
    Router::new(backends, scatter_config()).expect("bench router config is valid")
}

/// The `route_replicated` scenarios: every logical shard sits behind a
/// 2-replica [`ReplicaSet`].
enum ReplicaScenario {
    /// Both replicas healthy; no hedging pressure.
    Healthy,
    /// One replica of each set is a dead address — the breaker must open it
    /// and route around for near-healthy latency.
    OneReplicaDown,
    /// Both healthy, but the hedge deadline is tiny so nearly every query
    /// races two replicas.
    Hedged,
}

fn replicated_router(scenario: &ReplicaScenario) -> std::sync::Arc<Router> {
    let breaker = ReplicaSetConfig {
        // No probes mid-measurement: the dead replica opens during warm-up
        // and stays open, which is the steady state being measured.
        probe_backoff: Duration::from_secs(120),
        hedge_after: match scenario {
            ReplicaScenario::Hedged => Some(Duration::from_micros(20)),
            _ => None,
        },
        adaptive_hedge: false,
        ..ReplicaSetConfig::default()
    };
    let dead = || -> Box<dyn ShardBackend> {
        // Connection refused on loopback is immediate; the timeout only
        // bounds pathological environments.
        Box::new(RemoteShard::with_config(
            "127.0.0.1:1",
            RemoteShardConfig {
                connect_timeout: Duration::from_millis(50),
                ..RemoteShardConfig::default()
            },
        ))
    };
    let backends: Vec<Box<dyn ShardBackend>> = sharded_engines(20_000, 2)
        .into_iter()
        .enumerate()
        .map(|(i, engine)| {
            // Two replicas per logical shard; in the down scenario replica 0
            // is a dead address, so the idle-tie pick tries it first — the
            // worst case for the health gating being measured.
            let first: Box<dyn ShardBackend> = match scenario {
                ReplicaScenario::OneReplicaDown => dead(),
                _ => Box::new(
                    LocalShards::new(std::sync::Arc::clone(&engine))
                        .with_id(format!("shard-{i}-a")),
                ),
            };
            let second: Box<dyn ShardBackend> =
                Box::new(LocalShards::new(engine).with_id(format!("shard-{i}-b")));
            let replicas = vec![first, second];
            Box::new(
                ReplicaSet::new(format!("shard-{i}"), replicas, breaker)
                    .expect("bench replica config is valid"),
            ) as Box<dyn ShardBackend>
        })
        .collect();
    Router::new(backends, scatter_config()).expect("bench router config is valid")
}

/// p50/p99 over `samples` timed runs (plus an untimed warm-up — which for
/// the one-replica-down scenario also absorbs the breaker opening).
fn percentiles_ns<F: FnMut()>(samples: usize, mut routine: F) -> (u64, u64) {
    routine(); // warm-up, untimed
    let mut times: Vec<u64> = (0..samples.max(10))
        .map(|_| {
            let start = Instant::now();
            routine();
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    (times[times.len() / 2], times[times.len() * 99 / 100])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR10.json".to_owned());
    let samples = if quick { 5 } else { 25 };

    let mut fields: Vec<(String, Value)> = Vec::new();
    let mut record = |key: &str, value: Value| fields.push((key.to_owned(), value));

    // ---- Size: bytes/posting on the bench corpus -------------------------
    let (mut index, docs) = synthetic_index(20_000);
    let shard = SealedShard::from_index(&index);
    let compressed_bytes = shard.posting_bytes();
    let raw_bytes = shard.uncompressed_posting_bytes();
    let postings = shard.posting_count();
    let bytes_per_posting = compressed_bytes as f64 / postings as f64;
    record("corpus_docs", Value::UInt(20_000));
    record("corpus_postings", Value::UInt(postings));
    record("posting_bytes_compressed", Value::UInt(compressed_bytes as u64));
    record("posting_bytes_raw", Value::UInt(raw_bytes as u64));
    record("bytes_per_posting_compressed", Value::Float(bytes_per_posting));
    record("bytes_per_posting_raw", Value::Float(4.0));
    record("compression_ratio", Value::Float(raw_bytes as f64 / compressed_bytes as f64));
    // The interning satellite: dictionary text the sealed shard *shares*
    // with the vocabulary instead of duplicating (the pre-PR-4 dictionary
    // cloned every term string at snapshot build).
    let vocab_bytes: u64 = shard.terms().iter().map(|t| t.len() as u64).sum();
    record("dictionary_bytes_shared_not_copied", Value::UInt(vocab_bytes));

    // ---- Primitive: skewed intersect (100 ids vs 100k ids) ---------------
    let small = list_of((0..100).map(|i| i * 1_000));
    let large = list_of(0..100_000);
    let mut out: Vec<FileId> = Vec::new();
    let view_ns = median_ns(samples, || {
        small.as_view().intersect_into(large.as_view(), &mut out);
        black_box(out.len());
    });
    let small_cp = CompressedPostings::from_list(&small);
    let large_cp = CompressedPostings::from_list(&large);
    let block_ns = median_ns(samples, || {
        intersect_cursors_into(
            PostingsCursor::Block(small_cp.cursor()),
            PostingsCursor::Block(large_cp.cursor()),
            &mut out,
        );
        black_box(out.len());
    });
    record("intersect_skewed_100_vs_100k_view_ns", Value::UInt(view_ns));
    record("intersect_skewed_100_vs_100k_block_ns", Value::UInt(block_ns));

    // ---- Primitive: 16-way union of 2k-id interleaved lists --------------
    let union_lists: Vec<PostingList> =
        (0..16u32).map(|j| list_of((0..2_000u32).map(move |i| i * 16 + j))).collect();
    let views: Vec<PostingView<'_>> = union_lists.iter().map(PostingList::as_view).collect();
    let union_view_ns = median_ns(samples, || {
        union_into(&views, &mut out);
        black_box(out.len());
    });
    let union_compressed: Vec<CompressedPostings> =
        union_lists.iter().map(CompressedPostings::from_list).collect();
    let union_block_ns = median_ns(samples, || {
        let cursors: Vec<PostingsCursor<'_>> =
            union_compressed.iter().map(|cp| PostingsCursor::Block(cp.cursor())).collect();
        union_cursors_into(cursors, &mut out);
        black_box(out.len());
    });
    record("union_16x2k_view_ns", Value::UInt(union_view_ns));
    record("union_16x2k_block_ns", Value::UInt(union_block_ns));

    // ---- End to end: query_eval over borrowed vs sealed-compressed -------
    index.build_dictionary();
    let searcher = SingleIndexSearcher::new(&index, &docs);
    let snapshot = IndexSnapshot::from_index(index.clone(), docs.clone(), 1);
    for (name, raw) in [
        ("skewed_and", "rare012345 common"),
        ("three_term_and", "mid042 even common"),
        ("prefix", "mid04* even"),
        ("or_groups", "mid001 common OR mid002 even"),
    ] {
        let query = Query::parse(raw).expect("bench query parses");
        let zero_copy_ns = median_ns(samples, || {
            black_box(searcher.search(&query).len());
        });
        let sealed_ns = median_ns(samples, || {
            black_box(snapshot.search(&query).len());
        });
        record(&format!("query_{name}_zero_copy_ns"), Value::UInt(zero_copy_ns));
        record(&format!("query_{name}_sealed_ns"), Value::UInt(sealed_ns));
    }

    // ---- Ranked retrieval: block-max WAND vs exhaustive top-k ------------
    // Two pure-OR shapes over a 100k-document corpus.  "skewed": a term on
    // every document plus a rare high-tf term that owns the top ranks — the
    // case block-max pruning exists for.  "dense_or": three overlapping
    // lists that keep the WAND frontier aligned — pruning's worst case, kept
    // honest next to the win.  The exhaustive baseline is the same evaluator
    // with an unbounded k, which can never prune (the heap threshold never
    // rises), so it scores every posting block.
    let topk_corpora: Vec<(&str, &str, SealedShard, DocTable)> = {
        let mut skewed = InMemoryIndex::new();
        let mut skewed_docs = DocTable::new();
        for d in 0..100_000u32 {
            let id = skewed_docs.insert(format!("doc{d:06}.txt"));
            let mut words = vec![(Term::from("common"), 1u32)];
            if d % 1_000 == 0 {
                words.push((Term::from("rare"), 8));
            }
            skewed.insert_file_counted(id, words);
        }
        let mut dense = InMemoryIndex::new();
        let mut dense_docs = DocTable::new();
        for d in 0..100_000u32 {
            let id = dense_docs.insert(format!("doc{d:06}.txt"));
            let mut words = vec![(Term::from("alpha"), 1 + d % 4)];
            if d % 2 == 0 {
                words.push((Term::from("beta"), 1 + d % 3));
            }
            if d % 3 == 0 {
                words.push((Term::from("gamma"), 1));
            }
            dense.insert_file_counted(id, words);
        }
        vec![
            ("skewed", "common OR rare", SealedShard::from_index(&skewed), skewed_docs),
            ("dense_or", "alpha OR beta OR gamma", SealedShard::from_index(&dense), dense_docs),
        ]
    };
    let no_cancel = || false;
    for (shape, raw, shard, topk_docs) in &topk_corpora {
        let topk_shards = std::slice::from_ref(shard);
        let query = Query::parse(raw).expect("bench query parses");
        let exhaustive_ns = median_ns(samples, || {
            let (results, _) = search_topk(topk_shards, topk_docs, &query, usize::MAX, &no_cancel)
                .expect("pure-OR query is scorable");
            black_box(results.len());
        });
        record(&format!("query_topk_{shape}_exhaustive_ns"), Value::UInt(exhaustive_ns));
        for k in [10usize, 100] {
            let ns = median_ns(samples, || {
                let (results, _) = search_topk(topk_shards, topk_docs, &query, k, &no_cancel)
                    .expect("pure-OR query is scorable");
                black_box(results.len());
            });
            record(&format!("query_topk_{shape}_blockmax_k{k}_ns"), Value::UInt(ns));
            record(
                &format!("query_topk_{shape}_k{k}_speedup"),
                Value::Float(exhaustive_ns as f64 / ns.max(1) as f64),
            );
        }
        let (_, prune) = search_topk(topk_shards, topk_docs, &query, 10, &no_cancel)
            .expect("pure-OR query is scorable");
        record(&format!("query_topk_{shape}_k10_blocks_scored"), Value::UInt(prune.blocks_scored));
        record(
            &format!("query_topk_{shape}_k10_blocks_skipped"),
            Value::UInt(prune.blocks_skipped),
        );
    }

    // ---- Router: scatter-gather overhead, direct vs 1 vs 2 local shards --
    // Steady-state serving comparison (caches warm on every side): the
    // routed paths add scatter, per-shard result cloning and the k-way
    // ranked merge on top of the same engine execution.
    let direct = sharded_engines(20_000, 1).pop().expect("one engine");
    let router_one = router_over(1);
    let router_two = router_over(2);
    for (name, raw) in [
        ("skewed_and", "rare012345 common"),
        ("three_term_and", "mid042 even common"),
        ("prefix", "mid04* even"),
    ] {
        let direct_ns = median_ns(samples, || {
            black_box(direct.execute(raw).expect("bench query serves").results.len());
        });
        let one_ns = median_ns(samples, || {
            black_box(router_one.route(raw).expect("routed query serves").hits.len());
        });
        let two_ns = median_ns(samples, || {
            black_box(router_two.route(raw).expect("routed query serves").hits.len());
        });
        record(&format!("route_{name}_direct_ns"), Value::UInt(direct_ns));
        record(&format!("route_{name}_1shard_ns"), Value::UInt(one_ns));
        record(&format!("route_{name}_2shard_ns"), Value::UInt(two_ns));
    }

    // ---- Router: traced stage breakdown over 2 shards --------------------
    // Where a routed query's wall time goes, from the responses' own query
    // traces (`@id`-prefixed, so the traced path is exercised): the scatter
    // (fan-out plus shard execution), the critical-path shard round trip
    // inside it, and the k-way ranked merge.
    let mut scatter_ns: Vec<u64> = Vec::new();
    let mut shard_rtt_ns: Vec<u64> = Vec::new();
    let mut merge_ns: Vec<u64> = Vec::new();
    for _ in 0..samples.max(3) {
        let response = router_two.route("@1 mid042 even common").expect("traced query serves");
        for span in response.trace.spans() {
            let ns = u64::try_from(span.dur.as_nanos()).unwrap_or(u64::MAX);
            match span.stage {
                Stage::Scatter => scatter_ns.push(ns),
                Stage::Merge => merge_ns.push(ns),
                _ => {}
            }
        }
        if let Some(worst) = response.trace.shards().iter().map(|shard| shard.rtt).max() {
            shard_rtt_ns.push(u64::try_from(worst.as_nanos()).unwrap_or(u64::MAX));
        }
    }
    let median_of = |mut ns: Vec<u64>| -> u64 {
        assert!(!ns.is_empty(), "traced responses carry the stage");
        ns.sort_unstable();
        ns[ns.len() / 2]
    };
    record("route_stage_scatter_2shard_ns", Value::UInt(median_of(scatter_ns)));
    record("route_stage_shard_rtt_2shard_ns", Value::UInt(median_of(shard_rtt_ns)));
    record("route_stage_merge_2shard_ns", Value::UInt(median_of(merge_ns)));

    // ---- Router: replicated shard sets, healthy / one-down / hedged ------
    // Two logical shards, each a 2-replica ReplicaSet over local engines.
    // The acceptance bar: losing one replica per set must cost near nothing
    // once the breaker opens (one_replica_down p99 within 2x of healthy).
    let replica_samples = if quick { 40 } else { 400 };
    for (name, scenario) in [
        ("healthy", ReplicaScenario::Healthy),
        ("one_replica_down", ReplicaScenario::OneReplicaDown),
        ("hedged", ReplicaScenario::Hedged),
    ] {
        let router = replicated_router(&scenario);
        let (p50, p99) = percentiles_ns(replica_samples, || {
            black_box(
                router.route("mid042 even common").expect("replicated query serves").hits.len(),
            );
        });
        record(&format!("route_replicated_{name}_p50_ns"), Value::UInt(p50));
        record(&format!("route_replicated_{name}_p99_ns"), Value::UInt(p99));
    }

    // ---- Build pipeline: cold vs resumed, checkpoint-interval overhead ---
    // A fixed synthetic corpus in memory (so only the pipeline and the store
    // writes are measured).  "Resumed at 50 %" interrupts a build via
    // stop_after at half the corpus, then times the --resume run alone — the
    // crash-recovery cost the checkpoint exists to bound.
    let build_corpus = {
        let spec = CorpusSpec { small_files: 240, directories: 8, ..CorpusSpec::tiny() };
        let (fs, _) = materialize_to_memfs(&spec, 97);
        std::sync::Arc::new(fs)
    };
    let build_files = {
        let probe = BuildPipeline::new(BuildOptions { extractors: 2, ..BuildOptions::default() });
        let dir = BenchStoreDir::new("probe");
        probe.build(build_corpus.as_ref(), &VPath::root(), &dir.path()).expect("probe build").files
    };
    record("build_corpus_files", Value::UInt(build_files));
    let build_options = |checkpoint_every: Duration| BuildOptions {
        extractors: 2,
        checkpoint_every,
        ..BuildOptions::default()
    };
    let build_samples = samples.min(9);
    for (name, interval) in
        [("0s", Duration::ZERO), ("1s", Duration::from_secs(1)), ("10s", Duration::from_secs(10))]
    {
        let dir = BenchStoreDir::new(name);
        let pipeline = BuildPipeline::new(build_options(interval));
        let ns = median_ns(build_samples, || {
            black_box(
                pipeline
                    .build(build_corpus.as_ref(), &VPath::root(), &dir.path())
                    .expect("bench build completes")
                    .counters
                    .items_ok,
            );
        });
        record(&format!("build_cold_checkpoint_every_{name}_ns"), Value::UInt(ns));
    }
    {
        let dir = BenchStoreDir::new("resume");
        let half = build_files / 2;
        let mut interrupted = build_options(Duration::ZERO);
        interrupted.stop_after = Some(half);
        let interrupted = BuildPipeline::new(interrupted);
        let mut resumed = build_options(Duration::ZERO);
        resumed.resume = true;
        let resumed = BuildPipeline::new(resumed);
        let ns = median_ns(build_samples, || {
            // Each sample replays the full crash story: fresh build killed at
            // 50 %, then the timed resume finishes the other half.
            let report = interrupted
                .build(build_corpus.as_ref(), &VPath::root(), &dir.path())
                .expect("interrupted build runs");
            assert!(report.interrupted, "stop_after fired");
            let start = Instant::now();
            let report = resumed
                .build(build_corpus.as_ref(), &VPath::root(), &dir.path())
                .expect("resumed build completes");
            black_box(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            assert!(report.complete && report.skipped >= half, "resume skipped sealed work");
        });
        // median_ns times interrupted+resume together; re-time just the
        // resume leg for the headline number.
        record("build_interrupt_plus_resume_at_50pct_ns", Value::UInt(ns));
        let mut resume_only: Vec<u64> = (0..build_samples.max(3))
            .map(|_| {
                interrupted
                    .build(build_corpus.as_ref(), &VPath::root(), &dir.path())
                    .expect("interrupted build runs");
                let start = Instant::now();
                resumed
                    .build(build_corpus.as_ref(), &VPath::root(), &dir.path())
                    .expect("resumed build completes");
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
            })
            .collect();
        resume_only.sort_unstable();
        record("build_resumed_at_50pct_ns", Value::UInt(resume_only[resume_only.len() / 2]));
    }

    let json = serde_json::to_string_pretty(&Value::Object(fields)).expect("summary serialises");
    std::fs::write(&out_path, format!("{json}\n")).expect("summary written");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
