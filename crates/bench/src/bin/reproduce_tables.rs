//! Regenerates every table of the paper.
//!
//! ```text
//! cargo run -p dsearch-bench --bin reproduce_tables            # all tables
//! cargo run -p dsearch-bench --bin reproduce_tables -- table3  # just one
//! cargo run -p dsearch-bench --bin reproduce_tables -- real    # real run on this host
//! ```
//!
//! * **Table 1** — sequential stage times.  Printed twice: the calibrated
//!   platform model's prediction for the paper's full 869 MB corpus on each of
//!   the three paper machines, and a real measured run of this crate's
//!   sequential pipeline on a scaled synthetic corpus on *this* host.
//! * **Tables 2–4** — best-configuration comparison of the three
//!   implementations on the 4-, 8- and 32-core platform models, evaluated at
//!   the paper's best configurations and at the model's own best
//!   configurations.
//! * **real** — runs the three real threaded implementations on this host
//!   (whatever core count it has) over a scaled corpus, so the code path the
//!   paper measures is exercised end to end.

use std::time::Instant;

use dsearch::core::{Configuration, Implementation, IndexGenerator};
use dsearch::corpus::{materialize_to_memfs, CorpusSpec};
use dsearch::sim::paper;
use dsearch::sim::sweep::SweepRanges;
use dsearch::sim::{
    best_configuration, estimate_run, sequential_stages, PlatformModel, WorkloadModel,
};
use dsearch::vfs::VPath;
use dsearch_bench::{format_table, TableRow};

fn print_table1() {
    println!("== Table 1: execution times for sequential index generation (seconds) ==\n");
    let workload = WorkloadModel::paper();
    let mut rows = Vec::new();
    for (platform, expected) in PlatformModel::paper_platforms().iter().zip(paper::table1()) {
        let est = sequential_stages(platform, &workload);
        rows.push(TableRow::new([
            format!("{}-core platform", platform.cores),
            format!(
                "{:.1} (paper {:.1})",
                est.filename_generation_s, expected.filename_generation_s
            ),
            format!("{:.1} (paper {:.1})", est.read_files_s, expected.read_files_s),
            format!("{:.1} (paper {:.1})", est.read_and_extract_s, expected.read_and_extract_s),
            format!("{:.1} (paper {:.1})", est.index_update_s, expected.index_update_s),
        ]));
    }
    println!(
        "{}",
        format_table(
            &["platform", "filename generation", "read files", "read + extract", "index update"],
            &rows
        )
    );

    println!("-- measured on this host (scaled synthetic corpus, sequential pipeline) --\n");
    let spec = CorpusSpec::paper_scaled(0.002);
    let (fs, manifest) = materialize_to_memfs(&spec, 2010);
    let run = IndexGenerator::default()
        .run_sequential(&fs, &VPath::root())
        .expect("sequential run succeeds");
    let rows = vec![TableRow::new([
        format!(
            "this host ({} files, {:.1} MB)",
            manifest.file_count(),
            manifest.total_bytes() as f64 / 1e6
        ),
        format!("{:.3}", run.timings.filename_generation.as_secs_f64()),
        format!("{:.3}", run.timings.read_files.as_secs_f64()),
        format!("{:.3}", run.timings.read_and_extract.as_secs_f64()),
        format!("{:.3}", run.timings.index_update.as_secs_f64()),
    ])];
    println!(
        "{}",
        format_table(
            &["platform", "filename generation", "read files", "read + extract", "index update"],
            &rows
        )
    );
}

fn print_best_config_table(platform: &PlatformModel, expected: &paper::BestConfigTable) {
    println!(
        "== Table {}: best configurations on the {}-core machine (sequential ≈ {:.0} s) ==\n",
        match expected.platform_cores {
            4 => "2",
            8 => "3",
            _ => "4",
        },
        expected.platform_cores,
        expected.sequential_s
    );
    let workload = WorkloadModel::paper();
    let ranges = SweepRanges::for_platform(platform);
    let mut rows = Vec::new();
    let mut model_speedup_impl1 = None;
    for row in &expected.rows {
        let at_paper_config =
            estimate_run(platform, &workload, row.implementation, row.best_configuration);
        let model_best = best_configuration(platform, &workload, row.implementation, ranges);
        if row.implementation == Implementation::SharedLocked {
            model_speedup_impl1 = Some(at_paper_config.speedup);
        }
        let variance = model_speedup_impl1
            .map(|base| (at_paper_config.speedup - base) / base * 100.0)
            .unwrap_or(0.0);
        rows.push(TableRow::new([
            row.implementation.paper_name().to_string(),
            row.best_configuration.to_string(),
            format!("{:.1} (paper {:.1})", at_paper_config.total_s, row.execution_time_s),
            format!("{:.2} (paper {:.2})", at_paper_config.speedup, row.speedup),
            format!("{:+.1}% (paper {:+.1}%)", variance, row.variance_vs_impl1_percent),
            format!("{} @ {:.1}s", model_best.configuration, model_best.estimate.total_s),
            at_paper_config.bottleneck.to_string(),
        ]));
    }
    println!(
        "{}",
        format_table(
            &[
                "implementation",
                "paper best config",
                "exec time (s)",
                "speed-up",
                "variance vs impl 1",
                "model's own best",
                "bottleneck",
            ],
            &rows
        )
    );
}

fn print_real_run() {
    println!("== Real threaded run on this host ==\n");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let spec = CorpusSpec::paper_scaled(0.002);
    let (fs, manifest) = materialize_to_memfs(&spec, 77);
    println!(
        "host cores: {cores}; corpus: {} files, {:.1} MB (paper corpus scaled)\n",
        manifest.file_count(),
        manifest.total_bytes() as f64 / 1e6
    );

    let generator = IndexGenerator::default();
    let started = Instant::now();
    let sequential =
        generator.run_sequential(&fs, &VPath::root()).expect("sequential run succeeds");
    let sequential_s = started.elapsed().as_secs_f64();

    let x = cores.max(1);
    let configs = [
        (Implementation::SharedLocked, Configuration::new(x, 1, 0)),
        (Implementation::ReplicateJoin, Configuration::new(x, 0, 1)),
        (Implementation::ReplicateNoJoin, Configuration::new(x, 0, 0)),
    ];
    let mut rows = Vec::new();
    rows.push(TableRow::new([
        "Sequential".to_string(),
        "-".to_string(),
        format!("{sequential_s:.3}"),
        "-".to_string(),
    ]));
    for (implementation, config) in configs {
        let run = generator
            .run(&fs, &VPath::root(), implementation, config)
            .expect("parallel run succeeds");
        let report = run.report();
        rows.push(TableRow::new([
            implementation.paper_name().to_string(),
            config.to_string(),
            format!("{:.3}", report.total_seconds),
            format!("{:.2}", report.speedup_vs_seconds(sequential_s)),
        ]));
        // Sanity: all implementations index every file.
        assert_eq!(report.files, sequential.stage2.files);
    }
    println!(
        "{}",
        format_table(&["implementation", "config (x, y, z)", "exec time (s)", "speed-up"], &rows)
    );
    println!(
        "note: this container exposes {cores} core(s); wall-clock speed-up on the paper's\n\
         multi-core machines is reproduced by the platform model (tables 2-4 above)."
    );
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let platforms = PlatformModel::paper_platforms();
    match arg.as_str() {
        "table1" => print_table1(),
        "table2" => print_best_config_table(&platforms[0], &paper::table2()),
        "table3" => print_best_config_table(&platforms[1], &paper::table3()),
        "table4" => print_best_config_table(&platforms[2], &paper::table4()),
        "real" => print_real_run(),
        "all" => {
            print_table1();
            print_best_config_table(&platforms[0], &paper::table2());
            print_best_config_table(&platforms[1], &paper::table3());
            print_best_config_table(&platforms[2], &paper::table4());
            print_real_run();
        }
        other => {
            eprintln!("unknown table {other:?}; expected table1|table2|table3|table4|real|all");
            std::process::exit(2);
        }
    }
}
