//! Shared helpers for the `dsearch` benchmark harness.
//!
//! The real work lives in the Criterion benches (`benches/`) and the
//! `reproduce_tables` binary (`src/bin/`); this library holds the formatting
//! and measurement helpers they share so every table is rendered the same
//! way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tables;

pub use tables::{format_table, TableRow};
