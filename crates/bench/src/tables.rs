//! Plain-text table rendering for the experiment harness.

/// One row of a rendered table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// Cell values, one per column.
    pub cells: Vec<String>,
}

impl TableRow {
    /// Builds a row from anything displayable.
    pub fn new<I, S>(cells: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TableRow { cells: cells.into_iter().map(Into::into).collect() }
    }
}

/// Renders a header and rows as an aligned plain-text table.
///
/// # Example
///
/// ```
/// use dsearch_bench::{format_table, TableRow};
///
/// let text = format_table(
///     &["impl", "time (s)"],
///     &[TableRow::new(["Implementation 1", "46.7"])],
/// );
/// assert!(text.contains("Implementation 1"));
/// assert!(text.lines().count() >= 3);
/// ```
#[must_use]
pub fn format_table(header: &[&str], rows: &[TableRow]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.cells.iter().enumerate().take(columns) {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, width) in widths.iter().enumerate().take(columns) {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!("{cell:<width$}"));
            if i + 1 < columns {
                line.push_str("  ");
            }
        }
        line.trim_end().to_string()
    };

    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    let mut out = render_row(&header_cells);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(&row.cells));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_aligned() {
        let text = format_table(
            &["name", "value"],
            &[TableRow::new(["short", "1"]), TableRow::new(["a much longer name", "2"])],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // The value column starts at the same offset in both data rows.
        let offset_1 = lines[2].find('1').unwrap();
        let offset_2 = lines[3].find('2').unwrap();
        assert_eq!(offset_1, offset_2);
    }

    #[test]
    fn missing_cells_render_as_blank() {
        let text = format_table(&["a", "b", "c"], &[TableRow::new(["only"])]);
        assert!(text.contains("only"));
    }

    #[test]
    fn extra_cells_are_ignored() {
        let text = format_table(&["a"], &[TableRow::new(["x", "ignored"])]);
        assert!(!text.contains("ignored"));
    }
}
