//! A small, dependency-free command-line argument parser.
//!
//! The grammar is the common GNU-ish subset the `dsearch-cli` commands need:
//!
//! * the first non-option token is the subcommand;
//! * `--name value` and `--name=value` set an option;
//! * `--flag` with no value sets a boolean flag (a token starting with `--`
//!   following it is not consumed as its value);
//! * everything else is a positional argument.

use std::collections::{BTreeMap, BTreeSet};

use crate::CliError;

/// Option names that take a value (everything else starting with `--` is a
/// boolean flag).
const VALUE_OPTIONS: &[&str] = &[
    "store",
    "extractors",
    "updaters",
    "joiners",
    "implementation",
    "limit",
    "scale",
    "seed",
    "platform",
    "max-threads",
    "table",
    // serve / loadgen / route
    "tcp",
    "idle-timeout-secs",
    "max-conns",
    "workers",
    "cache",
    "cache-shards",
    "cache-admission",
    "requests",
    "clients",
    "rate",
    "queries",
    "mode",
    "max-batch",
    "batch-wait-us",
    "queue-bound",
    "overload",
    "shard",
    "shard-timeout-ms",
    "connect-timeout-ms",
    "trace-us",
    "hedge-ms",
    "probe-ms",
    "default-deadline-ms",
    "retry-budget-pct",
    "deadline-ms",
    // build / dlq
    "max-retries",
    "checkpoint-every",
    "throttle-ms",
];

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional token), if any.
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positionals: Vec<String>,
    /// Every value given for each option, in order — options like `--shard`
    /// repeat; single-valued options read the last occurrence.
    options: BTreeMap<String, Vec<String>>,
    flags: BTreeSet<String>,
}

impl ParsedArgs {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Fails when an option that requires a value is missing one.
    pub fn parse<I, S>(raw: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut parsed = ParsedArgs::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if let Some((name, value)) = name.split_once('=') {
                    parsed.options.entry(name.to_owned()).or_default().push(value.to_owned());
                    continue;
                }
                if VALUE_OPTIONS.contains(&name) {
                    match iter.peek() {
                        Some(next) if !next.starts_with("--") => {
                            let value = iter.next().expect("peeked");
                            parsed.options.entry(name.to_owned()).or_default().push(value);
                        }
                        _ => {
                            return Err(CliError::Usage(format!(
                                "option --{name} requires a value"
                            )))
                        }
                    }
                } else {
                    parsed.flags.insert(name.to_owned());
                }
            } else if parsed.command.is_none() {
                parsed.command = Some(token);
            } else {
                parsed.positionals.push(token);
            }
        }
        Ok(parsed)
    }

    /// The value of `--name`, if given (the last occurrence when repeated).
    #[must_use]
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|values| values.last()).map(String::as_str)
    }

    /// Every value given for `--name`, in order (empty when absent) — for
    /// options like `--shard` that repeat.
    #[must_use]
    pub fn values_of(&self, name: &str) -> Vec<&str> {
        self.options
            .get(name)
            .map(|values| values.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Whether `--name` appeared as a boolean flag.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The value of `--name` parsed as a number.
    ///
    /// # Errors
    ///
    /// Fails when the value is present but does not parse.
    pub fn number_of<T>(&self, name: &str) -> Result<Option<T>, CliError>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        match self.value_of(name) {
            None => Ok(None),
            Some(raw) => raw.parse::<T>().map(Some).map_err(|e| {
                CliError::Usage(format!("option --{name}: invalid value {raw:?} ({e})"))
            }),
        }
    }

    /// The `i`-th positional argument.
    ///
    /// # Errors
    ///
    /// Fails with a usage error naming `what` when the positional is missing.
    pub fn require_positional(&self, i: usize, what: &str) -> Result<&str, CliError> {
        self.positionals
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required argument: {what}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn subcommand_and_positionals_are_separated() {
        let args = parse(&["index", "/home/docs", "extra"]);
        assert_eq!(args.command.as_deref(), Some("index"));
        assert_eq!(args.positionals, ["/home/docs", "extra"]);
    }

    #[test]
    fn options_take_values_in_both_spellings() {
        let args = parse(&["index", "dir", "--store", "/tmp/s", "--extractors=4"]);
        assert_eq!(args.value_of("store"), Some("/tmp/s"));
        assert_eq!(args.value_of("extractors"), Some("4"));
        assert_eq!(args.number_of::<usize>("extractors").unwrap(), Some(4));
        assert_eq!(args.value_of("missing"), None);
        assert!(args.values_of("missing").is_empty());
    }

    #[test]
    fn repeated_options_keep_every_value_in_order() {
        let args = parse(&[
            "route",
            "--shard",
            "h1:7878",
            "--shard=h2:7878",
            "--shard",
            "h3:7878",
            "--workers",
            "2",
            "--workers",
            "4",
        ]);
        assert_eq!(args.values_of("shard"), ["h1:7878", "h2:7878", "h3:7878"]);
        // Single-valued reads see the last occurrence.
        assert_eq!(args.value_of("shard"), Some("h3:7878"));
        assert_eq!(args.number_of::<usize>("workers").unwrap(), Some(4));
    }

    #[test]
    fn flags_do_not_consume_the_next_token() {
        let args = parse(&["index", "dir", "--incremental", "--store", "s"]);
        assert!(args.flag("incremental"));
        assert!(!args.flag("formats"));
        assert_eq!(args.value_of("store"), Some("s"));
        assert_eq!(args.positionals, ["dir"]);
    }

    #[test]
    fn value_option_followed_by_option_is_an_error() {
        let err = ParsedArgs::parse(["index", "--store", "--incremental"]).unwrap_err();
        assert!(err.to_string().contains("--store"));
        let err = ParsedArgs::parse(["search", "--limit"]).unwrap_err();
        assert!(err.to_string().contains("--limit"));
    }

    #[test]
    fn bad_numbers_are_reported() {
        let args = parse(&["search", "--limit", "many"]);
        let err = args.number_of::<usize>("limit").unwrap_err();
        assert!(err.to_string().contains("--limit"));
        assert!(err.to_string().contains("many"));
    }

    #[test]
    fn required_positionals_produce_usage_errors() {
        let args = parse(&["corpus"]);
        assert!(args.require_positional(0, "output directory").is_err());
        let args = parse(&["corpus", "/tmp/c"]);
        assert_eq!(args.require_positional(0, "output directory").unwrap(), "/tmp/c");
    }

    #[test]
    fn empty_input_parses_to_nothing() {
        let args = parse(&[]);
        assert!(args.command.is_none());
        assert!(args.positionals.is_empty());
    }
}
