//! `dsearch-cli build` — the checkpointed, fault-tolerant index build.
//!
//! Unlike `index` (the paper's batch pipeline), `build` leases work items,
//! retries transient failures with backoff, quarantines poison files in the
//! dead-letter queue, and checkpoints progress so a killed build resumes
//! with `--resume` instead of starting over.

use std::path::PathBuf;
use std::time::Duration;

use dsearch::core::{BuildOptions, BuildPipeline, BuildReport};
use dsearch::vfs::{OsFs, VPath};

use crate::args::ParsedArgs;
use crate::CliError;

/// Builds the pipeline options shared by `build` and `dlq replay`.
pub(crate) fn options_from(args: &ParsedArgs) -> Result<BuildOptions, CliError> {
    let default_threads = std::thread::available_parallelism().map_or(2, usize::from);
    let mut options = BuildOptions {
        extractors: args.number_of::<usize>("extractors")?.unwrap_or(default_threads.max(1)),
        resume: args.flag("resume"),
        formats: args.flag("formats"),
        ..BuildOptions::default()
    };
    if let Some(n) = args.number_of::<u32>("max-retries")? {
        if n == 0 {
            return Err(CliError::Usage("--max-retries must be at least 1".into()));
        }
        options.max_retries = n;
    }
    if let Some(secs) = args.number_of::<f64>("checkpoint-every")? {
        if !secs.is_finite() || secs < 0.0 {
            return Err(CliError::Usage("--checkpoint-every must be a non-negative number".into()));
        }
        options.checkpoint_every = Duration::from_secs_f64(secs);
    }
    if let Some(ms) = args.number_of::<u64>("throttle-ms")? {
        options.throttle = Duration::from_millis(ms);
    }
    Ok(options)
}

/// Renders the build summary, counters included — `items_ok`, `items_dead`
/// and friends are part of the command's contract (the CI kill–resume smoke
/// greps for them).
pub(crate) fn render_report(dir: &str, store: &str, report: &BuildReport) -> String {
    let status = if report.complete {
        "complete"
    } else if report.interrupted {
        "interrupted"
    } else {
        "incomplete"
    };
    format!(
        "build of {dir} -> {store}: {status}\n  \
         files {} (skipped {}) / {:.2} MB read in {:.3} s\n  \
         items_ok {}  items_retried {}  items_dead {}\n  \
         checkpoint_writes {}  lease_reclaims {}\n  \
         segments {}  dead_letters {}  corpus_fingerprint {:#018x}\n",
        report.files,
        report.skipped,
        report.bytes as f64 / 1e6,
        report.elapsed_seconds,
        report.counters.items_ok,
        report.counters.items_retried,
        report.counters.items_dead,
        report.counters.checkpoint_writes,
        report.counters.lease_reclaims,
        report.segments,
        report.dead_letters,
        report.corpus_fingerprint,
    )
}

/// Runs the `build` command.
///
/// # Errors
///
/// Fails on usage errors, walk failures and store I/O errors; per-file
/// failures retry and then dead-letter instead of failing the build.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let dir = args.require_positional(0, "directory to index")?;
    let store = args
        .value_of("store")
        .ok_or_else(|| CliError::Usage("build requires --store <path>".into()))?;
    let options = options_from(args)?;

    let fs = OsFs::new(PathBuf::from(dir));
    let pipeline = BuildPipeline::new(options);
    let report = pipeline.build(&fs, &VPath::root(), store.as_ref()).map_err(CliError::failed)?;
    let mut out = render_report(dir, store, &report);
    if report.dead_letters > 0 {
        out.push_str(&format!(
            "  {} file(s) quarantined; inspect with `dsearch dlq list --store {store}`\n",
            report.dead_letters
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_with_defaults_and_overrides() {
        let args = ParsedArgs::parse(["build", "d", "--store", "s"]).unwrap();
        let options = options_from(&args).unwrap();
        assert!(!options.resume);
        assert!(options.extractors >= 1);
        assert_eq!(options.max_retries, 3);

        let args = ParsedArgs::parse([
            "build",
            "d",
            "--store",
            "s",
            "--resume",
            "--extractors",
            "2",
            "--max-retries",
            "5",
            "--checkpoint-every",
            "0.5",
            "--throttle-ms",
            "7",
            "--formats",
        ])
        .unwrap();
        let options = options_from(&args).unwrap();
        assert!(options.resume);
        assert!(options.formats);
        assert_eq!(options.extractors, 2);
        assert_eq!(options.max_retries, 5);
        assert_eq!(options.checkpoint_every, Duration::from_millis(500));
        assert_eq!(options.throttle, Duration::from_millis(7));
    }

    #[test]
    fn invalid_options_are_usage_errors() {
        let args = ParsedArgs::parse(["build", "d", "--store", "s", "--max-retries", "0"]).unwrap();
        assert!(matches!(options_from(&args), Err(CliError::Usage(_))));
        let args =
            ParsedArgs::parse(["build", "d", "--store", "s", "--checkpoint-every", "-1"]).unwrap();
        assert!(matches!(options_from(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_store_or_directory_is_a_usage_error() {
        let args = ParsedArgs::parse(["build", "/tmp/somewhere"]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        let args = ParsedArgs::parse(["build"]).unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn summary_names_every_counter() {
        let report = BuildReport {
            files: 10,
            skipped: 2,
            bytes: 1_000_000,
            counters: dsearch::core::CounterSnapshot::default(),
            segments: 3,
            dead_letters: 1,
            complete: true,
            interrupted: false,
            elapsed_seconds: 0.25,
            corpus_fingerprint: 0xabcd,
        };
        let out = render_report("docs", "/tmp/store", &report);
        for needle in [
            "items_ok",
            "items_retried",
            "items_dead",
            "checkpoint_writes",
            "lease_reclaims",
            "dead_letters",
            "complete",
        ] {
            assert!(out.contains(needle), "summary missing {needle}: {out}");
        }
    }
}
