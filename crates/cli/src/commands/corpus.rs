//! `dsearch-cli corpus` — materialise a synthetic benchmark corpus on disk.

use dsearch::corpus::materialize::DirSink;
use dsearch::corpus::{materialize, CorpusSpec};

use crate::args::ParsedArgs;
use crate::CliError;

/// Runs the `corpus` command.
///
/// # Errors
///
/// Fails on usage errors, an invalid scale, or output-directory I/O errors.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let out_dir = args.require_positional(0, "output directory")?;
    let scale = args.number_of::<f64>("scale")?.unwrap_or(0.01);
    let seed = args.number_of::<u64>("seed")?.unwrap_or(2010);
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(CliError::Usage(format!("--scale must be in (0, 1], got {scale}")));
    }

    let spec = CorpusSpec::paper_scaled(scale);
    let mut sink = DirSink::new(out_dir).map_err(CliError::Failed)?;
    let manifest = materialize(&spec, seed, &mut sink).map_err(CliError::Failed)?;

    Ok(format!(
        "materialised corpus in {out_dir}\n  scale {scale} of the paper benchmark (seed {seed})\n  \
         {} files, {:.2} MB total, {} large file(s)\n",
        manifest.file_count(),
        manifest.total_bytes() as f64 / 1e6,
        manifest.large_file_count(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_validated() {
        let args = ParsedArgs::parse(["corpus", "/tmp/x", "--scale", "2.0"]).unwrap();
        assert!(matches!(run(&args).unwrap_err(), CliError::Usage(_)));
        let args = ParsedArgs::parse(["corpus", "/tmp/x", "--scale", "0"]).unwrap();
        assert!(run(&args).is_err());
        let args = ParsedArgs::parse(["corpus"]).unwrap();
        assert!(run(&args).is_err());
    }

    #[test]
    fn corpus_is_written_to_disk() {
        let dir = std::env::temp_dir().join(format!("dsearch-cli-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = ParsedArgs::parse([
            "corpus".to_owned(),
            dir.to_string_lossy().into_owned(),
            "--scale".to_owned(),
            "0.0005".to_owned(),
            "--seed".to_owned(),
            "7".to_owned(),
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("files"));
        assert!(dir.exists());
        let file_count = walk_count(&dir);
        assert!(file_count > 5, "expected files on disk, found {file_count}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn walk_count(dir: &std::path::Path) -> usize {
        let mut count = 0;
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_dir() {
                count += walk_count(&entry.path());
            } else {
                count += 1;
            }
        }
        count
    }
}
