//! `dsearch-cli curves` — speed-up-vs-thread-count curves per implementation.

use dsearch::sim::{all_curves, amdahl_ceiling, PlatformModel, WorkloadModel};

use crate::args::ParsedArgs;
use crate::commands::format_table;
use crate::CliError;

fn platform_from(args: &ParsedArgs) -> Result<PlatformModel, CliError> {
    match args.value_of("platform").unwrap_or("32") {
        "4" => Ok(PlatformModel::four_core()),
        "8" => Ok(PlatformModel::eight_core()),
        "32" => Ok(PlatformModel::thirty_two_core()),
        other => Err(CliError::Usage(format!("--platform must be 4, 8 or 32 (got {other:?})"))),
    }
}

/// Runs the `curves` command.
///
/// # Errors
///
/// Fails when `--platform` or `--max-threads` is invalid.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let platform = platform_from(args)?;
    let max_threads = args.number_of::<usize>("max-threads")?.unwrap_or(platform.cores + 2).max(1);
    let workload = WorkloadModel::paper();
    let curves = all_curves(&platform, &workload, max_threads);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for x in 1..=max_threads {
        let mut row = vec![x.to_string()];
        for curve in &curves {
            let point = &curve.points[x - 1];
            row.push(format!("{:.2}x ({})", point.estimate.speedup, point.configuration));
        }
        row.push(format!("{:.2}x", amdahl_ceiling(&platform, &workload, x)));
        rows.push(row);
    }

    let mut out = format!(
        "speed-up vs extraction threads on {} (model; best (y, z) per point)\n",
        platform.name
    );
    out.push_str(&format_table(
        &["x", "Implementation 1", "Implementation 2", "Implementation 3", "Amdahl ceiling"],
        &rows,
    ));
    out.push('\n');
    for curve in &curves {
        out.push_str(&format!(
            "{}: peak {:.2}x, 95% of peak reached at x = {}\n",
            curve.implementation.paper_name(),
            curve.peak_speedup(),
            curve.knee(0.95).unwrap_or(0),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_cover_all_three_implementations() {
        let args = ParsedArgs::parse(["curves", "--platform", "8", "--max-threads", "6"]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("8-core"));
        for needle in ["Implementation 1", "Implementation 2", "Implementation 3", "Amdahl"] {
            assert!(out.contains(needle), "missing {needle}");
        }
        // Six rows of data plus header/separator.
        assert!(out.lines().filter(|l| l.trim_start().starts_with(char::is_numeric)).count() >= 6);
    }

    #[test]
    fn invalid_platform_is_rejected() {
        let args = ParsedArgs::parse(["curves", "--platform", "16"]).unwrap();
        assert!(matches!(run(&args).unwrap_err(), CliError::Usage(_)));
        let args = ParsedArgs::parse(["curves"]).unwrap();
        assert!(run(&args).unwrap().contains("32-core"));
    }
}
