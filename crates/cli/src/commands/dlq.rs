//! `dsearch-cli dlq` — inspect and replay the dead-letter queue.
//!
//! `dlq list` prints the quarantined files with their attempt counts and
//! final errors; `dlq replay` re-runs them through the build pipeline once
//! the underlying fault is fixed (permissions repaired, disk healthy, …).

use std::path::PathBuf;

use dsearch::core::BuildPipeline;
use dsearch::persist::DeadLetterQueue;
use dsearch::vfs::{OsFs, VPath};

use crate::args::ParsedArgs;
use crate::commands::format_table;
use crate::CliError;

fn store_of(args: &ParsedArgs) -> Result<&str, CliError> {
    args.value_of("store").ok_or_else(|| CliError::Usage("dlq requires --store <path>".into()))
}

fn list(args: &ParsedArgs) -> Result<String, CliError> {
    let store = store_of(args)?;
    let dlq = DeadLetterQueue::load(store.as_ref()).map_err(CliError::failed)?;
    if dlq.is_empty() {
        return Ok(format!("dead-letter queue of {store} is empty\n"));
    }
    let rows: Vec<Vec<String>> = dlq
        .entries
        .iter()
        .map(|e| {
            vec![e.path.clone(), e.file_id.to_string(), e.attempts.to_string(), e.error.clone()]
        })
        .collect();
    let mut out = format!("{} quarantined file(s) in {store}\n", dlq.len());
    out.push_str(&format_table(&["path", "file_id", "attempts", "error"], &rows));
    out.push_str("\nre-run them with `dsearch dlq replay <dir> --store <path>`\n");
    Ok(out)
}

fn replay(args: &ParsedArgs) -> Result<String, CliError> {
    let dir = args.require_positional(1, "directory the store was built from")?;
    let store = store_of(args)?;
    let options = crate::commands::build::options_from(args)?;
    let fs = OsFs::new(PathBuf::from(dir));
    let pipeline = BuildPipeline::new(options);
    let report =
        pipeline.replay_dlq(&fs, &VPath::root(), store.as_ref()).map_err(CliError::failed)?;
    let mut out = format!(
        "dlq replay of {store}: attempted {}  recovered {}  still_dead {}\n",
        report.attempted, report.recovered, report.still_dead
    );
    if report.missing > 0 {
        out.push_str(&format!(
            "  {} quarantined path(s) no longer exist in {dir} and were left in the queue\n",
            report.missing
        ));
    }
    Ok(out)
}

/// Runs the `dlq` command (`list` or `replay`).
///
/// # Errors
///
/// Fails on usage errors, a missing checkpoint, or store I/O errors.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    match args.require_positional(0, "dlq action (list or replay)")? {
        "list" => list(args),
        "replay" => replay(args),
        other => Err(CliError::Usage(format!(
            "unknown dlq action {other:?}; expected `list` or `replay`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_action_and_missing_store_are_usage_errors() {
        let args = ParsedArgs::parse(["dlq", "purge", "--store", "s"]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        let args = ParsedArgs::parse(["dlq", "list"]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        let args = ParsedArgs::parse(["dlq"]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        // Replay needs the corpus directory too.
        let args = ParsedArgs::parse(["dlq", "replay", "--store", "s"]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn listing_a_store_without_a_dlq_reports_empty() {
        let dir = std::env::temp_dir().join(format!("dsearch-dlq-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let args = ParsedArgs::parse(["dlq", "list", "--store", dir.to_str().unwrap()]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("empty"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
