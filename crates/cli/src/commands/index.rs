//! `dsearch-cli index` — index a directory and persist the result.

use std::path::PathBuf;

use dsearch::core::{Configuration, FormatMode, GeneratorOptions, Implementation, IndexGenerator};
use dsearch::persist::{IncrementalIndexer, IndexStore, SignatureDb};
use dsearch::vfs::{OsFs, VPath};

use crate::args::ParsedArgs;
use crate::CliError;

/// Name of the signature-database file inside the index store directory.
const SIGNATURES_FILE: &str = "signatures.json";

fn implementation_from(args: &ParsedArgs) -> Result<Implementation, CliError> {
    match args.value_of("implementation").unwrap_or("3") {
        "1" => Ok(Implementation::SharedLocked),
        "2" => Ok(Implementation::ReplicateJoin),
        "3" => Ok(Implementation::ReplicateNoJoin),
        other => {
            Err(CliError::Usage(format!("--implementation must be 1, 2 or 3 (got {other:?})")))
        }
    }
}

fn configuration_from(
    args: &ParsedArgs,
    implementation: Implementation,
) -> Result<Configuration, CliError> {
    let default_threads = std::thread::available_parallelism().map_or(2, usize::from);
    let x = args.number_of::<usize>("extractors")?.unwrap_or(default_threads.max(1));
    let y = args.number_of::<usize>("updaters")?.unwrap_or(0);
    let z =
        args.number_of::<usize>("joiners")?.unwrap_or(if implementation.joins() { 1 } else { 0 });
    let configuration = Configuration::new(x, y, z);
    configuration.validate(implementation).map_err(CliError::Usage)?;
    Ok(configuration)
}

/// Runs the `index` command.
///
/// # Errors
///
/// Fails on usage errors, unreadable input directories and store I/O errors.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let dir = args.require_positional(0, "directory to index")?;
    let store_path = args
        .value_of("store")
        .ok_or_else(|| CliError::Usage("index requires --store <path>".into()))?;
    let implementation = implementation_from(args)?;
    let configuration = configuration_from(args, implementation)?;

    let mut options = GeneratorOptions::paper_defaults();
    if args.flag("formats") {
        options.formats = FormatMode::DetectAndExtract;
    }

    let fs = OsFs::new(PathBuf::from(dir));
    let mut store = IndexStore::open(store_path).map_err(CliError::failed)?;
    let mut out = String::new();

    if args.flag("incremental") {
        // Load the previous state (joined index + signatures), update only
        // what changed, and replace the store contents.
        let (mut index, mut docs) = if store.segment_count() > 0 {
            store.load_joined().map_err(CliError::failed)?
        } else {
            (dsearch::index::InMemoryIndex::new(), dsearch::index::DocTable::new())
        };
        let signatures_path = store.root().join(SIGNATURES_FILE);
        let mut signatures = if signatures_path.exists() {
            let json = std::fs::read_to_string(&signatures_path).map_err(CliError::failed)?;
            SignatureDb::from_json(&json).map_err(CliError::failed)?
        } else {
            SignatureDb::new()
        };

        let indexer = IncrementalIndexer::new();
        let report = indexer
            .update(&fs, &VPath::root(), &mut index, &mut docs, &mut signatures)
            .map_err(CliError::failed)?;
        let info = store.replace_all(&index, &docs).map_err(CliError::failed)?;
        std::fs::write(&signatures_path, signatures.to_json().map_err(CliError::failed)?)
            .map_err(CliError::failed)?;

        out.push_str(&format!(
            "incremental update of {dir}\n  added {} / modified {} / removed {} / unchanged {}\n  \
             re-scanned {:.2} MB ({:.0}% of tracked files)\n  store now holds {} docs, {} terms, {} postings\n",
            report.added,
            report.modified,
            report.removed,
            report.unchanged,
            report.bytes_scanned as f64 / 1e6,
            report.rescan_ratio() * 100.0,
            info.doc_count,
            info.term_count,
            info.posting_count,
        ));
        return Ok(out);
    }

    // Full rebuild through the paper's parallel pipeline.
    let generator = IndexGenerator::new(options);
    let run = generator
        .run(&fs, &VPath::root(), implementation, configuration)
        .map_err(CliError::failed)?;
    let report = run.report();
    out.push_str(&format!(
        "indexed {} files ({:.2} MB) from {dir}\n  {} with configuration {}\n  \
         total {:.3} s (stage 1 {:.3} s, extraction {:.3} s, join {:.3} s)\n",
        report.files,
        report.bytes as f64 / 1e6,
        implementation.paper_name(),
        configuration,
        report.total_seconds,
        report.filename_generation_seconds,
        report.extraction_seconds,
        report.join_seconds,
    ));

    // Persist: Implementation 3 keeps one segment per replica (searched
    // together); the others store a single joined segment.
    let outcome = run.outcome;
    let segments_before = store.segment_count();
    match outcome {
        dsearch::core::IndexOutcome::Replicas { set, docs } => {
            for replica in set.into_replicas() {
                store.commit(&replica, &docs).map_err(CliError::failed)?;
            }
        }
        single => {
            let (index, docs) = single.into_single_index();
            store.commit(&index, &docs).map_err(CliError::failed)?;
        }
    }
    out.push_str(&format!(
        "  store {store_path}: {} segment(s) (+{})\n",
        store.segment_count(),
        store.segment_count() - segments_before
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implementation_parsing_accepts_paper_numbers() {
        let args = ParsedArgs::parse(["index", "d", "--implementation", "1"]).unwrap();
        assert_eq!(implementation_from(&args).unwrap(), Implementation::SharedLocked);
        let args = ParsedArgs::parse(["index", "d"]).unwrap();
        assert_eq!(implementation_from(&args).unwrap(), Implementation::ReplicateNoJoin);
        let args = ParsedArgs::parse(["index", "d", "--implementation", "7"]).unwrap();
        assert!(implementation_from(&args).is_err());
    }

    #[test]
    fn configuration_defaults_and_validation() {
        let args =
            ParsedArgs::parse(["index", "d", "--extractors", "3", "--updaters", "2"]).unwrap();
        let cfg = configuration_from(&args, Implementation::ReplicateNoJoin).unwrap();
        assert_eq!(cfg, Configuration::new(3, 2, 0));
        // Joiners default to 1 for Implementation 2 and are rejected for 3.
        let cfg = configuration_from(&args, Implementation::ReplicateJoin).unwrap();
        assert_eq!(cfg.join_threads, 1);
        let bad = ParsedArgs::parse(["index", "d", "--joiners", "2"]).unwrap();
        assert!(configuration_from(&bad, Implementation::SharedLocked).is_err());
    }

    #[test]
    fn missing_store_is_a_usage_error() {
        let args = ParsedArgs::parse(["index", "/tmp/somewhere"]).unwrap();
        let err = run(&args).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let args = ParsedArgs::parse(["index"]).unwrap();
        assert!(run(&args).is_err());
    }
}
