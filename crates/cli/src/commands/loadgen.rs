//! `dsearch loadgen` — replay a query workload against a persisted store and
//! report QPS and latency percentiles.
//!
//! The workload is derived from the store's own index terms (weighted toward
//! frequent terms), so it exercises realistic hit patterns without needing a
//! separate query log.  `--mode closed` models `--clients` synchronous users;
//! `--mode open` submits at a fixed `--rate` regardless of completions —
//! combined with `--queue-bound`/`--overload` this is how load shedding is
//! observed (the report's `shed` column and the server's `shed=` counter).
//! `--max-batch`/`--batch-wait-us` control how aggressively workers batch
//! the backlog.  `--stage-report` adds per-stage latency percentiles from
//! the servers' query traces: where the wall time of a query actually went.
//! `--deadline-ms` stamps every request with a `@d=<ms>` budget; the report
//! then separates goodput (on-time completions) from raw throughput and
//! counts `deadline_exceeded` answers apart from errors.

use std::sync::Arc;

use dsearch::server::{loadgen, LoadConfig, LoadMode, WorkerPool, Workload};

use crate::args::ParsedArgs;
use crate::commands::serve::load_engine;
use crate::CliError;

/// Runs the `loadgen` command.
///
/// # Errors
///
/// Fails on usage errors or an unreadable/empty store.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let (engine, _store_path) = load_engine(args)?;

    let requests = args.number_of::<usize>("requests")?.unwrap_or(1000).max(1);
    let distinct = args.number_of::<usize>("queries")?.unwrap_or(64).max(1);
    let seed = args.number_of::<u64>("seed")?.unwrap_or(42);
    let mode = match args.value_of("mode").unwrap_or("closed") {
        "closed" => {
            LoadMode::Closed { clients: args.number_of::<usize>("clients")?.unwrap_or(4).max(1) }
        }
        "open" => LoadMode::Open { rate_qps: args.number_of::<f64>("rate")?.unwrap_or(1000.0) },
        other => {
            return Err(CliError::Usage(format!(
                "unknown --mode {other:?}; expected closed or open"
            )))
        }
    };

    let snapshot = engine.snapshot_cell().load();
    let workload = Workload::from_snapshot(&snapshot, distinct, seed);
    drop(snapshot);

    let pool = WorkerPool::start(Arc::clone(&engine));
    let stage_report = args.flag("stage-report");
    // `--deadline-ms 0` means "no deadline", mirroring `--default-deadline-ms`.
    let deadline_ms = args.number_of::<u64>("deadline-ms")?.filter(|&ms| ms > 0);
    let report =
        loadgen::run(&pool, &workload, &LoadConfig { requests, mode, stage_report, deadline_ms });
    pool.shutdown();

    let mode_text = match mode {
        LoadMode::Closed { clients } => format!("closed-loop, {clients} client(s)"),
        LoadMode::Open { rate_qps } => format!("open-loop, {rate_qps:.0} qps target"),
    };
    let deadline_text = match deadline_ms {
        Some(ms) => format!(", {ms}ms deadline"),
        None => String::new(),
    };
    Ok(format!(
        "workload: {} distinct queries (seed {seed}), {mode_text}{deadline_text}, {} worker(s)\n{report}\nserver: {}\n",
        workload.len(),
        engine.config().workers,
        engine.stats_report(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadgen_requires_a_store() {
        let args = ParsedArgs::parse(["loadgen"]).unwrap();
        assert!(matches!(run(&args).unwrap_err(), CliError::Usage(_)));
    }

    #[test]
    fn unknown_mode_is_a_usage_error() {
        let dir = std::env::temp_dir().join(format!("dsearch-loadgen-mode-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = ParsedArgs::parse([
            "loadgen".to_string(),
            "--store".to_string(),
            dir.to_string_lossy().into_owned(),
            "--mode".to_string(),
            "sideways".to_string(),
        ])
        .unwrap();
        let err = run(&args).unwrap_err();
        // Store is checked first (it's empty), which is also fine — either
        // way the command fails cleanly.
        assert!(!err.to_string().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
