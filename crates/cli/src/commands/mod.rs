//! The individual CLI commands.
//!
//! Each command takes the parsed arguments and returns its printable output,
//! so the commands can be tested without spawning the binary.

pub mod build;
pub mod corpus;
pub mod curves;
pub mod dlq;
pub mod index;
pub mod loadgen;
pub mod route;
pub mod search;
pub mod serve;
pub mod tables;
pub mod tune;

/// Formats a plain-text table: a header row, a separator and the data rows,
/// with every column padded to its widest cell.
#[must_use]
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .take(columns)
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_owned()
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    let mut out = String::new();
    out.push_str(&render(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&render(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_columns_are_aligned() {
        let out = format_table(
            &["name", "value"],
            &[vec!["short".into(), "1".into()], vec!["a much longer name".into(), "2".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // The value column starts at the same offset in every data row.
        let offset = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find('2').unwrap(), offset);
    }

    #[test]
    fn extra_cells_beyond_the_header_are_ignored() {
        let out = format_table(&["only"], &[vec!["a".into(), "ignored".into()]]);
        assert!(!out.contains("ignored"));
    }
}
