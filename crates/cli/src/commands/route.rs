//! `dsearch route` — the scatter-gather coordinator over shard servers.
//!
//! Points the [`Router`](dsearch::server::Router) at one `--shard
//! host:port` per `dsearch serve` process.  Every query read from stdin (or
//! TCP, with `--tcp`) is fanned out to all shards concurrently over the
//! existing line protocol, the per-shard rankings are merged, and a shard
//! that is down or times out degrades the answer to `partial=true` instead
//! of failing it.  `!stats` aggregates the shards' own stats under the
//! router's counters; `!reload` forwards to every shard.

use std::sync::Arc;
use std::time::Duration;

use dsearch::server::{
    LineHandler, RemoteShard, RemoteShardConfig, RouteService, Router, RouterConfig, ShardBackend,
    TcpServer,
};

use crate::args::ParsedArgs;
use crate::CliError;

/// Builds the router configuration from the shared serve/route options.
pub(crate) fn router_config(args: &ParsedArgs) -> Result<RouterConfig, CliError> {
    let mut config = RouterConfig::default();
    if let Some(workers) = args.number_of::<usize>("workers")? {
        config.workers = workers;
    }
    if let Some(limit) = args.number_of::<usize>("limit")? {
        config.result_limit = limit;
    }
    if let Some(max_batch) = args.number_of::<usize>("max-batch")? {
        config.batch.max_batch = max_batch;
    }
    super::serve::apply_batch_wait(args, &mut config.batch)?;
    if let Some(bound) = args.number_of::<usize>("queue-bound")? {
        config.batch.queue_bound = bound;
    }
    if let Some(policy) = args.value_of("overload") {
        config.batch.overload = policy.parse().map_err(CliError::Usage)?;
    }
    config.validate().map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))?;
    Ok(config)
}

/// Builds the per-shard connection policy from `--shard-timeout-ms` /
/// `--connect-timeout-ms`.
pub(crate) fn shard_config(args: &ParsedArgs) -> Result<RemoteShardConfig, CliError> {
    let mut config = RemoteShardConfig::default();
    if let Some(ms) = args.number_of::<u64>("connect-timeout-ms")? {
        config.connect_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = args.number_of::<u64>("shard-timeout-ms")? {
        config.io_timeout = Duration::from_millis(ms);
    }
    Ok(config)
}

/// Builds the router over one [`RemoteShard`] per `--shard` address.
pub(crate) fn build_router(args: &ParsedArgs) -> Result<Arc<Router>, CliError> {
    let addrs = args.values_of("shard");
    if addrs.is_empty() {
        return Err(CliError::Usage(
            "this command requires at least one --shard <host:port>".into(),
        ));
    }
    let shard_config = shard_config(args)?;
    let backends: Vec<Box<dyn ShardBackend>> = addrs
        .iter()
        .map(|addr| {
            Box::new(RemoteShard::with_config(*addr, shard_config)) as Box<dyn ShardBackend>
        })
        .collect();
    Router::new(backends, router_config(args)?)
        .map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))
}

/// Runs the `route` command.
///
/// # Errors
///
/// Fails on usage errors (no shards, malformed options) or when the TCP
/// listener cannot bind.  Unreachable shards are *not* a startup error —
/// they come and go at runtime and show as `partial=true` / `shard
/// <addr> DOWN` until they return.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let router = build_router(args)?;
    let shard_list: Vec<String> = router.backends().iter().map(|b| b.id()).collect();
    let batch = &router.config().batch;
    let wait = if batch.adaptive { "auto".to_owned() } else { format!("{:?}", batch.max_wait) };
    let banner = format!(
        "routing over {} shard(s): {} ({} workers, limit {})\n\
         batching: max_batch={} max_wait={wait} queue_bound={} overload={}\n\
         protocol: one query per line (prefix @<hex-id> to trace); !stats aggregates shards, \
         !metrics, !trace <us>, !slow, !reload fans out, !quit\n",
        shard_list.len(),
        shard_list.join(", "),
        router.config().workers,
        router.config().result_limit,
        batch.max_batch,
        match batch.queue_bound {
            0 => "unbounded".to_owned(),
            bound => bound.to_string(),
        },
        batch.overload,
    );
    let service = Arc::new(RouteService::start(router));
    // `--trace-us <n>` arms the router's slow-query log from the start; slow
    // entries carry the per-shard stage breakdown of the routed query.
    if let Some(us) = args.number_of::<u64>("trace-us")? {
        service.router().stats().slow_log().arm(Duration::from_micros(us));
        eprintln!("slow-query log armed at {us}us (!slow to dump)");
    }

    let tcp_server = match args.value_of("tcp") {
        Some(addr) => {
            let tcp_config = super::serve::tcp_config(args)?;
            let server = TcpServer::bind_with(Arc::clone(&service), addr, tcp_config)
                .map_err(CliError::failed)?;
            eprintln!("listening on {}", server.local_addr());
            Some(server)
        }
        None => None,
    };

    eprint!("{banner}");
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let end = service.serve_lines(stdin.lock(), stdout.lock()).map_err(CliError::failed)?;

    if let Some(server) = tcp_server {
        // Same daemon semantics as `dsearch serve`: stdin EOF keeps the TCP
        // front end routing, stdin `!quit` stops everything.
        if end == dsearch::server::SessionEnd::Eof {
            eprintln!("stdin closed; continuing to route TCP (Ctrl-C to stop)");
            loop {
                std::thread::park();
            }
        }
        server.stop();
    }
    let report = service.stats_report();
    Ok(format!("{report}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_requires_shards() {
        let args = ParsedArgs::parse(["route"]).unwrap();
        let err = run(&args).unwrap_err();
        assert!(matches!(&err, CliError::Usage(msg) if msg.contains("--shard")), "{err}");
    }

    #[test]
    fn router_config_parses_overrides() {
        let args = ParsedArgs::parse([
            "route",
            "--shard",
            "127.0.0.1:7878",
            "--workers",
            "2",
            "--limit",
            "7",
            "--max-batch",
            "8",
            "--batch-wait-us",
            "auto",
            "--queue-bound",
            "32",
            "--overload",
            "drop",
        ])
        .unwrap();
        let config = router_config(&args).unwrap();
        assert_eq!(config.workers, 2);
        assert_eq!(config.result_limit, 7);
        assert_eq!(config.batch.max_batch, 8);
        assert!(config.batch.adaptive);
        assert_eq!(config.batch.queue_bound, 32);
        assert_eq!(config.batch.overload, dsearch::server::OverloadPolicy::DropOldest);
    }

    #[test]
    fn shard_config_parses_timeouts() {
        let args = ParsedArgs::parse([
            "route",
            "--shard",
            "a:1",
            "--connect-timeout-ms",
            "250",
            "--shard-timeout-ms",
            "1500",
        ])
        .unwrap();
        let config = shard_config(&args).unwrap();
        assert_eq!(config.connect_timeout, Duration::from_millis(250));
        assert_eq!(config.io_timeout, Duration::from_millis(1500));
    }

    #[test]
    fn build_router_wires_one_backend_per_shard_flag() {
        let args =
            ParsedArgs::parse(["route", "--shard", "h1:7878", "--shard", "h2:7878"]).unwrap();
        let router = build_router(&args).unwrap();
        let ids: Vec<String> = router.backends().iter().map(|b| b.id()).collect();
        assert_eq!(ids, ["h1:7878", "h2:7878"]);
    }

    #[test]
    fn invalid_router_configs_are_usage_errors() {
        let args = ParsedArgs::parse(["route", "--shard", "h1:7878", "--workers", "0"]).unwrap();
        let err = build_router(&args).unwrap_err();
        assert!(matches!(&err, CliError::Usage(msg) if msg.contains("invalid")), "{err}");
    }
}
