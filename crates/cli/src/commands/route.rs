//! `dsearch route` — the scatter-gather coordinator over shard servers.
//!
//! Points the [`Router`](dsearch::server::Router) at one `--shard` per
//! logical shard.  A `--shard` value is a comma-separated replica group:
//! `--shard a:7878` is a single `dsearch serve` process, `--shard
//! a:7878,b:7878` a [`ReplicaSet`](dsearch::server::ReplicaSet) routing each
//! query to the least-loaded healthy replica, with circuit breaking
//! (`--probe-ms` controls the half-open probe backoff) and hedged requests
//! (`--hedge-ms` fixes the hedge deadline; `0` disables hedging; unset
//! derives it from the rolling round-trip p99).  Every query read from
//! stdin (or TCP, with `--tcp`) is fanned out to all shards concurrently
//! over the existing line protocol, the per-shard rankings are merged, and
//! a shard that is down or times out degrades the answer to `partial=true`
//! instead of failing it.  `!stats` aggregates the shards' own stats under
//! the router's counters; `!reload` fans out and reports each backend
//! individually.

use std::sync::Arc;
use std::time::Duration;

use dsearch::server::{
    LineHandler, RemoteShard, RemoteShardConfig, ReplicaSet, ReplicaSetConfig, RouteService,
    Router, RouterConfig, ShardBackend, TcpServer,
};

use crate::args::ParsedArgs;
use crate::CliError;

/// Builds the router configuration from the shared serve/route options.
pub(crate) fn router_config(args: &ParsedArgs) -> Result<RouterConfig, CliError> {
    let mut config = RouterConfig::default();
    if let Some(workers) = args.number_of::<usize>("workers")? {
        config.workers = workers;
    }
    if let Some(limit) = args.number_of::<usize>("limit")? {
        config.result_limit = limit;
    }
    if let Some(max_batch) = args.number_of::<usize>("max-batch")? {
        config.batch.max_batch = max_batch;
    }
    super::serve::apply_batch_wait(args, &mut config.batch)?;
    if let Some(bound) = args.number_of::<usize>("queue-bound")? {
        config.batch.queue_bound = bound;
    }
    if let Some(policy) = args.value_of("overload") {
        config.batch.overload = policy.parse().map_err(CliError::Usage)?;
    }
    if let Some(capacity) = args.number_of::<usize>("cache")? {
        config.cache_capacity = capacity;
    }
    if let Some(shards) = args.number_of::<usize>("cache-shards")? {
        config.cache_shards = shards;
    }
    if let Some(ms) = args.number_of::<u64>("default-deadline-ms")? {
        config.default_deadline = (ms > 0).then(|| Duration::from_millis(ms));
    }
    config.validate().map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))?;
    Ok(config)
}

/// Builds the replica-set policy from `--hedge-ms` / `--probe-ms`.
pub(crate) fn replica_config(args: &ParsedArgs) -> Result<ReplicaSetConfig, CliError> {
    let mut config = ReplicaSetConfig::default();
    if let Some(ms) = args.number_of::<u64>("hedge-ms")? {
        if ms == 0 {
            config.hedge_after = None;
            config.adaptive_hedge = false;
        } else {
            config.hedge_after = Some(Duration::from_millis(ms));
        }
    }
    if let Some(ms) = args.number_of::<u64>("probe-ms")? {
        config.probe_backoff = Duration::from_millis(ms.max(1));
    }
    if let Some(pct) = args.number_of::<u32>("retry-budget-pct")? {
        config.retry_budget_pct = pct;
    }
    Ok(config)
}

/// Builds the per-shard connection policy from `--shard-timeout-ms` /
/// `--connect-timeout-ms`.
pub(crate) fn shard_config(args: &ParsedArgs) -> Result<RemoteShardConfig, CliError> {
    let mut config = RemoteShardConfig::default();
    if let Some(ms) = args.number_of::<u64>("connect-timeout-ms")? {
        config.connect_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = args.number_of::<u64>("shard-timeout-ms")? {
        config.io_timeout = Duration::from_millis(ms);
    }
    Ok(config)
}

/// Builds the router over one backend per `--shard` value: a single
/// [`RemoteShard`] for a plain address, a [`ReplicaSet`] of remote shards
/// for a comma-separated replica group.
pub(crate) fn build_router(args: &ParsedArgs) -> Result<Arc<Router>, CliError> {
    let groups = args.values_of("shard");
    if groups.is_empty() {
        return Err(CliError::Usage(
            "this command requires at least one --shard <host:port>[,<host:port>...]".into(),
        ));
    }
    let shard_config = shard_config(args)?;
    let replica_config = replica_config(args)?;
    let mut backends: Vec<Box<dyn ShardBackend>> = Vec::with_capacity(groups.len());
    for group in &groups {
        let addrs: Vec<&str> = group.split(',').map(str::trim).filter(|a| !a.is_empty()).collect();
        match addrs.as_slice() {
            [] => {
                return Err(CliError::Usage(format!("--shard {group:?} names no addresses")));
            }
            [addr] => backends.push(Box::new(RemoteShard::with_config(*addr, shard_config))),
            many => {
                let replicas: Vec<Box<dyn ShardBackend>> = many
                    .iter()
                    .map(|addr| {
                        Box::new(RemoteShard::with_config(*addr, shard_config))
                            as Box<dyn ShardBackend>
                    })
                    .collect();
                let set = ReplicaSet::new(*group, replicas, replica_config)
                    .map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))?;
                backends.push(Box::new(set));
            }
        }
    }
    Router::new(backends, router_config(args)?)
        .map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))
}

/// Runs the `route` command.
///
/// # Errors
///
/// Fails on usage errors (no shards, malformed options) or when the TCP
/// listener cannot bind.  Unreachable shards are *not* a startup error —
/// they come and go at runtime and show as `partial=true` / `shard
/// <addr> DOWN` until they return.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let router = build_router(args)?;
    let shard_list: Vec<String> = router.backends().iter().map(|b| b.id()).collect();
    let batch = &router.config().batch;
    let wait = if batch.adaptive { "auto".to_owned() } else { format!("{:?}", batch.max_wait) };
    let banner = format!(
        "routing over {} shard(s): {} ({} workers, limit {})\n\
         batching: max_batch={} max_wait={wait} queue_bound={} overload={}\n\
         protocol: one query per line (prefix @<hex-id> to trace, @d=<ms> for a deadline); \
         !stats aggregates shards, \
         !metrics, !trace <us>, !slow, !reload fans out, !quit\n",
        shard_list.len(),
        shard_list.join(", "),
        router.config().workers,
        router.config().result_limit,
        batch.max_batch,
        match batch.queue_bound {
            0 => "unbounded".to_owned(),
            bound => bound.to_string(),
        },
        batch.overload,
    );
    let service = Arc::new(RouteService::start(router));
    // `--trace-us <n>` arms the router's slow-query log from the start; slow
    // entries carry the per-shard stage breakdown of the routed query.
    if let Some(us) = args.number_of::<u64>("trace-us")? {
        service.router().stats().slow_log().arm(Duration::from_micros(us));
        eprintln!("slow-query log armed at {us}us (!slow to dump)");
    }

    let tcp_server = match args.value_of("tcp") {
        Some(addr) => {
            let tcp_config = super::serve::tcp_config(args)?;
            let server = TcpServer::bind_with(Arc::clone(&service), addr, tcp_config)
                .map_err(CliError::failed)?;
            eprintln!("listening on {}", server.local_addr());
            Some(server)
        }
        None => None,
    };

    eprint!("{banner}");
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let end = service.serve_lines(stdin.lock(), stdout.lock()).map_err(CliError::failed)?;

    if let Some(server) = tcp_server {
        // Same daemon semantics as `dsearch serve`: stdin EOF keeps the TCP
        // front end routing, stdin `!quit` stops everything.
        if end == dsearch::server::SessionEnd::Eof {
            eprintln!("stdin closed; continuing to route TCP (Ctrl-C to stop)");
            loop {
                std::thread::park();
            }
        }
        server.stop();
    }
    let report = service.stats_report();
    Ok(format!("{report}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_requires_shards() {
        let args = ParsedArgs::parse(["route"]).unwrap();
        let err = run(&args).unwrap_err();
        assert!(matches!(&err, CliError::Usage(msg) if msg.contains("--shard")), "{err}");
    }

    #[test]
    fn router_config_parses_overrides() {
        let args = ParsedArgs::parse([
            "route",
            "--shard",
            "127.0.0.1:7878",
            "--workers",
            "2",
            "--limit",
            "7",
            "--max-batch",
            "8",
            "--batch-wait-us",
            "auto",
            "--queue-bound",
            "32",
            "--overload",
            "drop",
            "--default-deadline-ms",
            "75",
        ])
        .unwrap();
        let config = router_config(&args).unwrap();
        assert_eq!(config.workers, 2);
        assert_eq!(config.result_limit, 7);
        assert_eq!(config.batch.max_batch, 8);
        assert!(config.batch.adaptive);
        assert_eq!(config.batch.queue_bound, 32);
        assert_eq!(config.batch.overload, dsearch::server::OverloadPolicy::DropOldest);
        assert_eq!(config.default_deadline, Some(Duration::from_millis(75)));
    }

    #[test]
    fn shard_config_parses_timeouts() {
        let args = ParsedArgs::parse([
            "route",
            "--shard",
            "a:1",
            "--connect-timeout-ms",
            "250",
            "--shard-timeout-ms",
            "1500",
        ])
        .unwrap();
        let config = shard_config(&args).unwrap();
        assert_eq!(config.connect_timeout, Duration::from_millis(250));
        assert_eq!(config.io_timeout, Duration::from_millis(1500));
    }

    #[test]
    fn build_router_wires_one_backend_per_shard_flag() {
        let args =
            ParsedArgs::parse(["route", "--shard", "h1:7878", "--shard", "h2:7878"]).unwrap();
        let router = build_router(&args).unwrap();
        let ids: Vec<String> = router.backends().iter().map(|b| b.id()).collect();
        assert_eq!(ids, ["h1:7878", "h2:7878"]);
    }

    #[test]
    fn comma_separated_shard_values_become_replica_sets() {
        let args = ParsedArgs::parse(["route", "--shard", "h1:7878,h2:7878", "--shard", "h3:7878"])
            .unwrap();
        let router = build_router(&args).unwrap();
        let ids: Vec<String> = router.backends().iter().map(|b| b.id()).collect();
        assert_eq!(ids, ["h1:7878,h2:7878", "h3:7878"]);
        // The replica group reports per-replica status lines; the plain
        // shard has none.
        assert_eq!(router.backends()[0].replica_status().len(), 2);
        assert!(router.backends()[1].replica_status().is_empty());
    }

    #[test]
    fn replica_config_parses_hedge_and_probe_overrides() {
        let args = ParsedArgs::parse([
            "route",
            "--shard",
            "a:1,b:1",
            "--hedge-ms",
            "25",
            "--probe-ms",
            "200",
        ])
        .unwrap();
        let config = replica_config(&args).unwrap();
        assert_eq!(config.hedge_after, Some(Duration::from_millis(25)));
        assert_eq!(config.probe_backoff, Duration::from_millis(200));
        // `--hedge-ms 0` disables hedging entirely (fixed and adaptive).
        let args = ParsedArgs::parse(["route", "--shard", "a:1,b:1", "--hedge-ms", "0"]).unwrap();
        let config = replica_config(&args).unwrap();
        assert_eq!(config.hedge_after, None);
        assert!(!config.adaptive_hedge);
    }

    #[test]
    fn replica_config_parses_retry_budget_override() {
        let args =
            ParsedArgs::parse(["route", "--shard", "a:1,b:1", "--retry-budget-pct", "25"]).unwrap();
        let config = replica_config(&args).unwrap();
        assert_eq!(config.retry_budget_pct, 25);
        assert_eq!(ReplicaSetConfig::default().retry_budget_pct, 10);
    }

    #[test]
    fn empty_replica_group_is_a_usage_error() {
        let args = ParsedArgs::parse(["route", "--shard", ","]).unwrap();
        let err = build_router(&args).unwrap_err();
        assert!(matches!(&err, CliError::Usage(msg) if msg.contains("no addresses")), "{err}");
    }

    #[test]
    fn invalid_router_configs_are_usage_errors() {
        let args = ParsedArgs::parse(["route", "--shard", "h1:7878", "--workers", "0"]).unwrap();
        let err = build_router(&args).unwrap_err();
        assert!(matches!(&err, CliError::Usage(msg) if msg.contains("invalid")), "{err}");
    }
}
