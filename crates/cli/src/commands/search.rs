//! `dsearch-cli search` — query a persisted index.

use dsearch::index::IndexSet;
use dsearch::persist::IndexStore;
use dsearch::query::{MultiIndexSearcher, Query, SearchBackend, SingleIndexSearcher};

use crate::args::ParsedArgs;
use crate::CliError;

/// Runs the `search` command.
///
/// # Errors
///
/// Fails on usage errors, an unreadable store, or an unparsable query.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let store_path = args
        .value_of("store")
        .ok_or_else(|| CliError::Usage("search requires --store <path>".into()))?;
    if args.positionals.is_empty() {
        return Err(CliError::Usage("search requires at least one query word".into()));
    }
    let raw_query = args.positionals.join(" ");
    let query = Query::parse(&raw_query)
        .map_err(|e| CliError::Usage(format!("invalid query {raw_query:?}: {e}")))?;
    let limit = args.number_of::<usize>("limit")?.unwrap_or(20);

    let store = IndexStore::open(store_path).map_err(CliError::failed)?;
    if store.segment_count() == 0 {
        return Err(CliError::Failed(format!(
            "index store {store_path} is empty; run `dsearch-cli index` first"
        )));
    }

    // One segment → search it directly; several segments are the un-joined
    // replicas of Implementation 3 and are searched together.
    let mut results = if store.segment_count() == 1 {
        let (index, docs) = store.load_segment(0).map_err(CliError::failed)?;
        SingleIndexSearcher::new(&index, &docs).search(&query)
    } else {
        let segments = store.load_all().map_err(CliError::failed)?;
        let mut docs = dsearch::index::DocTable::new();
        let mut replicas = Vec::with_capacity(segments.len());
        for (replica, segment_docs) in segments {
            if segment_docs.len() > docs.len() {
                docs = segment_docs;
            }
            replicas.push(replica);
        }
        let set = IndexSet::new(replicas);
        MultiIndexSearcher::new(&set, &docs).search(&query)
    };
    results.truncate(limit);

    let mut out = format!("query: {query}\n{} result(s)\n", results.len());
    for hit in results.hits() {
        out.push_str(&format!("  {}  (matched {} terms)\n", hit.path, hit.matched_terms));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_store_or_query_is_a_usage_error() {
        let args = ParsedArgs::parse(["search", "hello"]).unwrap();
        assert!(matches!(run(&args).unwrap_err(), CliError::Usage(_)));
        let args = ParsedArgs::parse(["search", "--store", "/nonexistent"]).unwrap();
        assert!(matches!(run(&args).unwrap_err(), CliError::Usage(_)));
    }

    #[test]
    fn invalid_queries_are_reported_as_usage_errors() {
        let args = ParsedArgs::parse(["search", "--store", "/tmp/x", "rust", "OR"]).unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.to_string().contains("invalid query"));
    }
}
