//! `dsearch serve` — run the query service over a persisted index store.
//!
//! The service answers the line protocol on stdin; with `--tcp <addr>` it
//! also listens on a socket, sharing one worker pool and cache between both
//! front ends.  `!reload` re-reads the store and publishes the result as the
//! next snapshot generation without interrupting in-flight queries.

use std::path::PathBuf;
use std::sync::Arc;

use dsearch::persist::IndexStore;
use dsearch::server::{
    EngineConfig, IndexSnapshot, LineHandler, QueryEngine, Service, TcpServer, TcpServerConfig,
};

use crate::args::ParsedArgs;
use crate::CliError;

/// Builds the engine configuration from the shared serve/loadgen options.
/// Invalid combinations (zero workers, zero cache shards, empty batches) are
/// usage errors here, before any store I/O happens.
pub(crate) fn engine_config(args: &ParsedArgs) -> Result<EngineConfig, CliError> {
    let mut config = EngineConfig::default();
    if let Some(workers) = args.number_of::<usize>("workers")? {
        config.workers = workers;
    }
    if let Some(capacity) = args.number_of::<usize>("cache")? {
        config.cache_capacity = capacity;
    }
    if let Some(shards) = args.number_of::<usize>("cache-shards")? {
        config.cache_shards = shards;
    }
    if let Some(policy) = args.value_of("cache-admission") {
        config.cache_admission = policy
            .parse()
            .map_err(|e| CliError::Usage(format!("option --cache-admission: {e}")))?;
    }
    if let Some(limit) = args.number_of::<usize>("limit")? {
        config.result_limit = limit;
    }
    if let Some(max_batch) = args.number_of::<usize>("max-batch")? {
        config.batch.max_batch = max_batch;
    }
    apply_batch_wait(args, &mut config.batch)?;
    if let Some(bound) = args.number_of::<usize>("queue-bound")? {
        config.batch.queue_bound = bound;
    }
    if let Some(policy) = args.value_of("overload") {
        config.batch.overload = policy.parse().map_err(CliError::Usage)?;
    }
    if let Some(ms) = args.number_of::<u64>("default-deadline-ms")? {
        config.default_deadline = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    config.validate().map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))?;
    Ok(config)
}

/// Applies `--batch-wait-us`: a number arms a fixed fill window, `auto`
/// turns on adaptive batching (wait for the default window only when the
/// arrival rate suggests the batch will fill).
pub(crate) fn apply_batch_wait(
    args: &ParsedArgs,
    batch: &mut dsearch::server::BatchConfig,
) -> Result<(), CliError> {
    match args.value_of("batch-wait-us") {
        None => {}
        Some("auto") => {
            batch.adaptive = true;
            batch.max_wait = dsearch::server::DEFAULT_AUTO_WAIT;
        }
        Some(raw) => {
            let wait_us: u64 = raw.parse().map_err(|e| {
                CliError::Usage(format!(
                    "option --batch-wait-us: invalid value {raw:?} ({e}); \
                     expected a duration in microseconds or \"auto\""
                ))
            })?;
            batch.max_wait = std::time::Duration::from_micros(wait_us);
        }
    }
    Ok(())
}

/// Builds the TCP connection policy from `--idle-timeout-secs` /
/// `--max-conns` (0 disables either).
pub(crate) fn tcp_config(args: &ParsedArgs) -> Result<TcpServerConfig, CliError> {
    let mut config = TcpServerConfig::default();
    if let Some(secs) = args.number_of::<u64>("idle-timeout-secs")? {
        config.idle_timeout = (secs > 0).then(|| std::time::Duration::from_secs(secs));
    }
    if let Some(cap) = args.number_of::<usize>("max-conns")? {
        config.max_conns = cap;
    }
    Ok(config)
}

/// Opens the store and loads generation 1.
pub(crate) fn load_engine(args: &ParsedArgs) -> Result<(Arc<QueryEngine>, PathBuf), CliError> {
    let store_path = args
        .value_of("store")
        .ok_or_else(|| CliError::Usage("this command requires --store <path>".into()))?;
    let store = IndexStore::open(store_path).map_err(CliError::failed)?;
    if store.segment_count() == 0 {
        return Err(CliError::Failed(format!(
            "index store {store_path} is empty; run `dsearch index` first"
        )));
    }
    let snapshot = IndexSnapshot::load(&store, 1).map_err(CliError::failed)?;
    let config = engine_config(args)?;
    let engine = QueryEngine::new(snapshot, config)
        .map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))?;
    Ok((engine, PathBuf::from(store_path)))
}

/// Runs the `serve` command.
///
/// # Errors
///
/// Fails on usage errors or an unreadable/empty store.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let (engine, store_path) = load_engine(args)?;
    let batch = &engine.config().batch;
    let queue_bound = match batch.queue_bound {
        0 => "unbounded".to_owned(),
        bound => bound.to_string(),
    };
    let banner = format!(
        "serving {} document(s), {} shard(s), generation {} \
         ({} workers, cache {} entries / {} shards, admission={})\n\
         batching: max_batch={} max_wait={:?} queue_bound={queue_bound} overload={}\n\
         protocol: one query per line (prefix @<hex-id> to trace, @d=<ms> for a deadline); \
         !stats, !metrics, !trace <us>, !slow, !reload, !quit\n",
        engine.snapshot_cell().load().doc_count(),
        engine.snapshot_cell().load().shard_count(),
        engine.snapshot_cell().generation(),
        engine.config().workers,
        engine.config().cache_capacity,
        engine.config().cache_shards,
        engine.config().cache_admission,
        batch.max_batch,
        batch.max_wait,
        batch.overload,
    );
    let service = Arc::new(Service::start(engine, Some(store_path)));
    // `--trace-us <n>` arms the slow-query log from the start (equivalent to
    // a client sending `!trace <n>`).
    if let Some(us) = args.number_of::<u64>("trace-us")? {
        service.engine().stats().slow_log().arm(std::time::Duration::from_micros(us));
        eprintln!("slow-query log armed at {us}us (!slow to dump)");
    }

    let tcp_server = match args.value_of("tcp") {
        Some(addr) => {
            let tcp_config = tcp_config(args)?;
            let server = TcpServer::bind_with(Arc::clone(&service), addr, tcp_config)
                .map_err(CliError::failed)?;
            let idle = match tcp_config.idle_timeout {
                Some(timeout) => format!("{}s", timeout.as_secs()),
                None => "off".to_owned(),
            };
            let cap = match tcp_config.max_conns {
                0 => "unlimited".to_owned(),
                cap => cap.to_string(),
            };
            eprintln!("listening on {} (idle_timeout={idle} max_conns={cap})", server.local_addr());
            Some(server)
        }
        None => None,
    };

    eprint!("{banner}");
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let end = service.serve_lines(stdin.lock(), stdout.lock()).map_err(CliError::failed)?;

    if let Some(server) = tcp_server {
        // A daemonised server (stdin closed, e.g. `< /dev/null &`) keeps
        // serving TCP; an explicit stdin `!quit` shuts the whole service
        // down.
        if end == dsearch::server::SessionEnd::Eof {
            eprintln!("stdin closed; continuing to serve TCP (Ctrl-C to stop)");
            loop {
                std::thread::park();
            }
        }
        server.stop();
    }
    let report = service.engine().stats_report();
    Ok(format!("{report}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_requires_a_store() {
        let args = ParsedArgs::parse(["serve"]).unwrap();
        assert!(matches!(run(&args).unwrap_err(), CliError::Usage(_)));
    }

    #[test]
    fn empty_store_is_a_failure() {
        let dir = std::env::temp_dir().join(format!("dsearch-serve-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = ParsedArgs::parse([
            "serve".to_string(),
            "--store".to_string(),
            dir.to_string_lossy().into_owned(),
        ])
        .unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_config_parses_overrides() {
        let args =
            ParsedArgs::parse(["serve", "--idle-timeout-secs", "30", "--max-conns", "64"]).unwrap();
        let config = tcp_config(&args).unwrap();
        assert_eq!(config.idle_timeout, Some(std::time::Duration::from_secs(30)));
        assert_eq!(config.max_conns, 64);
        // Zero disables the timeout; omitted flags keep the defaults.
        let args = ParsedArgs::parse(["serve", "--idle-timeout-secs", "0"]).unwrap();
        let config = tcp_config(&args).unwrap();
        assert_eq!(config.idle_timeout, None);
        assert_eq!(config.max_conns, 0);
    }

    #[test]
    fn engine_config_parses_overrides() {
        let args = ParsedArgs::parse([
            "serve",
            "--workers",
            "3",
            "--cache",
            "128",
            "--cache-shards",
            "2",
            "--cache-admission",
            "lfu",
            "--limit",
            "5",
            "--max-batch",
            "16",
            "--batch-wait-us",
            "250",
            "--queue-bound",
            "64",
            "--overload",
            "drop-oldest",
            "--default-deadline-ms",
            "40",
        ])
        .unwrap();
        let config = engine_config(&args).unwrap();
        assert_eq!(config.workers, 3);
        assert_eq!(config.cache_capacity, 128);
        assert_eq!(config.cache_shards, 2);
        assert_eq!(config.cache_admission, dsearch::server::AdmissionPolicy::TinyLfu);
        assert_eq!(config.result_limit, 5);
        assert_eq!(config.batch.max_batch, 16);
        assert_eq!(config.batch.max_wait, std::time::Duration::from_micros(250));
        assert!(!config.batch.adaptive);
        assert_eq!(config.batch.queue_bound, 64);
        assert_eq!(config.batch.overload, dsearch::server::OverloadPolicy::DropOldest);
        assert_eq!(config.default_deadline, Some(std::time::Duration::from_millis(40)));
    }

    #[test]
    fn default_deadline_of_zero_disables_the_budget() {
        let args = ParsedArgs::parse(["serve", "--default-deadline-ms", "0"]).unwrap();
        let config = engine_config(&args).unwrap();
        assert_eq!(config.default_deadline, None);
    }

    #[test]
    fn batch_wait_auto_arms_adaptive_batching() {
        let args = ParsedArgs::parse(["serve", "--batch-wait-us", "auto"]).unwrap();
        let config = engine_config(&args).unwrap();
        assert!(config.batch.adaptive);
        assert_eq!(config.batch.max_wait, dsearch::server::DEFAULT_AUTO_WAIT);
        // Anything that is neither a number nor "auto" is a usage error.
        let args = ParsedArgs::parse(["serve", "--batch-wait-us", "sometimes"]).unwrap();
        let err = engine_config(&args).unwrap_err();
        assert!(err.to_string().contains("auto"), "{err}");
    }

    #[test]
    fn invalid_configs_are_usage_errors_before_store_io() {
        for flags in [["--workers", "0"], ["--cache-shards", "0"], ["--max-batch", "0"]] {
            let args = ParsedArgs::parse(["serve", flags[0], flags[1], "--store", "/nonexistent"])
                .unwrap();
            let err = engine_config(&args).unwrap_err();
            assert!(
                matches!(&err, CliError::Usage(msg) if msg.contains("invalid configuration")),
                "{flags:?}: {err}"
            );
        }
        let args = ParsedArgs::parse(["serve", "--overload", "sideways"]).unwrap();
        let err = engine_config(&args).unwrap_err();
        assert!(err.to_string().contains("sideways"), "{err}");
        let args = ParsedArgs::parse(["serve", "--cache-admission", "clairvoyant"]).unwrap();
        let err = engine_config(&args).unwrap_err();
        assert!(err.to_string().contains("clairvoyant"), "{err}");
    }
}
