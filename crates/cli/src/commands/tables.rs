//! `dsearch-cli tables` — print the paper's tables from the platform models.

use dsearch::core::Implementation;
use dsearch::sim::paper;
use dsearch::sim::sweep::SweepRanges;
use dsearch::sim::{
    best_configuration, estimate_run, sequential_stages, PlatformModel, WorkloadModel,
};

use crate::args::ParsedArgs;
use crate::commands::format_table;
use crate::CliError;

fn table1() -> String {
    let workload = WorkloadModel::paper();
    let rows: Vec<Vec<String>> = PlatformModel::paper_platforms()
        .iter()
        .zip(paper::table1())
        .map(|(platform, expected)| {
            let est = sequential_stages(platform, &workload);
            vec![
                format!("{}-core", platform.cores),
                format!("{:.1} ({:.1})", est.filename_generation_s, expected.filename_generation_s),
                format!("{:.1} ({:.1})", est.read_files_s, expected.read_files_s),
                format!("{:.1} ({:.1})", est.read_and_extract_s, expected.read_and_extract_s),
                format!("{:.1} ({:.1})", est.index_update_s, expected.index_update_s),
            ]
        })
        .collect();
    format!(
        "Table 1 — sequential stage times in seconds, model (paper)\n{}",
        format_table(
            &["platform", "filename gen", "read files", "read + extract", "index update"],
            &rows
        )
    )
}

fn best_config_table(platform: &PlatformModel, table: &paper::BestConfigTable) -> String {
    let workload = WorkloadModel::paper();
    let ranges = SweepRanges::for_platform(platform);
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|row| {
            let at_paper =
                estimate_run(platform, &workload, row.implementation, row.best_configuration);
            let model_best = best_configuration(platform, &workload, row.implementation, ranges);
            vec![
                row.implementation.paper_name().to_owned(),
                row.best_configuration.to_string(),
                format!("{:.1} ({:.1})", at_paper.total_s, row.execution_time_s),
                format!("{:.2} ({:.2})", at_paper.speedup, row.speedup),
                format!("{} @ {:.1}s", model_best.configuration, model_best.estimate.total_s),
            ]
        })
        .collect();
    format!(
        "Table {} — {}-core machine, model (paper), sequential ≈ {:.0} s\n{}",
        match table.platform_cores {
            4 => 2,
            8 => 3,
            _ => 4,
        },
        table.platform_cores,
        table.sequential_s,
        format_table(
            &["implementation", "paper best (x,y,z)", "exec time s", "speed-up", "model best"],
            &rows
        )
    )
}

/// Runs the `tables` command.
///
/// # Errors
///
/// Fails when `--table` names anything other than 1–4.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let which = args.value_of("table");
    let platforms = PlatformModel::paper_platforms();
    let best_tables = [paper::table2(), paper::table3(), paper::table4()];
    let mut sections: Vec<String> = Vec::new();
    match which {
        None => {
            sections.push(table1());
            for (platform, table) in platforms.iter().zip(&best_tables) {
                sections.push(best_config_table(platform, table));
            }
        }
        Some("1") => sections.push(table1()),
        Some("2") => sections.push(best_config_table(&platforms[0], &best_tables[0])),
        Some("3") => sections.push(best_config_table(&platforms[1], &best_tables[1])),
        Some("4") => sections.push(best_config_table(&platforms[2], &best_tables[2])),
        Some(other) => {
            return Err(CliError::Usage(format!("--table must be 1, 2, 3 or 4 (got {other:?})")))
        }
    }
    // Sanity note: the model's winner matches the paper's on every platform.
    let workload = WorkloadModel::paper();
    let winner_note = platforms
        .iter()
        .map(|p| {
            let ranges = SweepRanges::for_platform(p);
            let best = Implementation::ALL
                .into_iter()
                .map(|i| (i, best_configuration(p, &workload, i, ranges).estimate.total_s))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i.paper_name().to_owned())
                .unwrap_or_default();
            format!("{}-core winner: {best}", p.cores)
        })
        .collect::<Vec<_>>()
        .join("; ");
    sections.push(format!("({winner_note})\n"));
    Ok(sections.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_are_printed_by_default() {
        let args = ParsedArgs::parse(["tables"]).unwrap();
        let out = run(&args).unwrap();
        for needle in ["Table 1", "Table 2", "Table 3", "Table 4", "Implementation 3"] {
            assert!(out.contains(needle), "missing {needle}");
        }
        assert!(out.contains("winner"));
    }

    #[test]
    fn single_table_selection_works() {
        let args = ParsedArgs::parse(["tables", "--table", "3"]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("Table 3"));
        assert!(!out.contains("Table 2"));
        let args = ParsedArgs::parse(["tables", "--table", "9"]).unwrap();
        assert!(matches!(run(&args).unwrap_err(), CliError::Usage(_)));
    }
}
