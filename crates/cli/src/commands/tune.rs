//! `dsearch-cli tune` — search the `(x, y, z)` space with the auto-tuners.
//!
//! The paper used an auto-tuner (Schäfer et al.) to explore thread
//! allocations.  This command runs the reproduction's tuners (exhaustive,
//! hill-climbing with restarts, random search) against the calibrated cost
//! model of one paper platform and reports the configuration each finds for
//! every implementation, together with how many objective evaluations it
//! needed — the trade-off an auto-tuner exists to improve.

use dsearch::autotune::{ConfigSpace, ExhaustiveTuner, HillClimbTuner, RandomSearchTuner, Tuner};
use dsearch::core::Implementation;
use dsearch::sim::{estimate_run, PlatformModel, WorkloadModel};

use crate::args::ParsedArgs;
use crate::commands::format_table;
use crate::CliError;

fn platform_from(args: &ParsedArgs) -> Result<PlatformModel, CliError> {
    match args.value_of("platform").unwrap_or("32") {
        "4" => Ok(PlatformModel::four_core()),
        "8" => Ok(PlatformModel::eight_core()),
        "32" => Ok(PlatformModel::thirty_two_core()),
        other => Err(CliError::Usage(format!("--platform must be 4, 8 or 32 (got {other:?})"))),
    }
}

/// Runs the `tune` command.
///
/// # Errors
///
/// Fails when `--platform` is not one of the paper's machines.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    let platform = platform_from(args)?;
    let workload = WorkloadModel::paper();
    let space = ConfigSpace::for_cores(platform.cores);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for implementation in Implementation::ALL {
        let objective = |configuration: &dsearch::core::Configuration| {
            if configuration.validate(implementation).is_err() {
                return f64::INFINITY;
            }
            estimate_run(&platform, &workload, implementation, *configuration).total_s
        };
        let results = [
            ("exhaustive", ExhaustiveTuner::new().tune(&space, objective)),
            ("hill-climb", HillClimbTuner::default().tune(&space, objective)),
            ("random-search", RandomSearchTuner::default().tune(&space, objective)),
        ];
        for (name, result) in results {
            rows.push(vec![
                implementation.paper_name().to_owned(),
                name.to_owned(),
                result.best_configuration.to_string(),
                format!("{:.1}", result.best_cost),
                format!("{:.2}", platform.sequential_reported_s / result.best_cost),
                result.evaluation_count().to_string(),
            ]);
        }
    }

    let mut out = format!(
        "auto-tuning the (x, y, z) space on {} ({} configurations)\n",
        platform.name,
        space.size() * Implementation::ALL.len(),
    );
    out.push_str(&format_table(
        &["implementation", "tuner", "best (x,y,z)", "best time s", "speed-up", "evaluations"],
        &rows,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuners_agree_on_the_best_time_within_tolerance() {
        let args = ParsedArgs::parse(["tune", "--platform", "8"]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("8-core"));
        for needle in ["exhaustive", "hill-climb", "random-search", "Implementation 3"] {
            assert!(out.contains(needle), "missing {needle}");
        }
        // Nine rows: three tuners for each of the three implementations.
        let data_rows = out.lines().filter(|l| l.contains("Implementation")).count();
        assert_eq!(data_rows, 9);
    }

    #[test]
    fn invalid_platform_is_rejected() {
        let args = ParsedArgs::parse(["tune", "--platform", "2"]).unwrap();
        assert!(matches!(run(&args).unwrap_err(), CliError::Usage(_)));
    }
}
