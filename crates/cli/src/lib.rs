//! The `dsearch-cli` command-line tool.
//!
//! A thin, scriptable front end over the `dsearch` library — the "desktop
//! search" application the paper's index generator exists to serve:
//!
//! | command | purpose |
//! |---|---|
//! | `index <dir> --store <path>` | index a directory with one of the paper's three parallel implementations and persist the result |
//! | `build <dir> --store <path>` | checkpointed fault-tolerant build: leased work items, retries with backoff, dead-letter queue, `--resume` |
//! | `dlq list\|replay --store <path>` | inspect the dead-letter queue or re-run its quarantined files |
//! | `search --store <path> <query…>` | run a boolean/prefix query against a persisted index |
//! | `serve --store <path> [--tcp addr]` | run the concurrent query service (line protocol, snapshot reloads) |
//! | `loadgen --store <path>` | replay a derived query workload and report QPS + latency percentiles |
//! | `corpus <dir> --scale 0.01` | materialise a synthetic benchmark corpus with the paper's shape |
//! | `tables` | print the paper's Tables 1–4 regenerated from the calibrated platform models |
//! | `curves --platform 32` | print speed-up-vs-threads curves for the three implementations |
//!
//! The command functions all return their output as a `String` so they can be
//! unit- and integration-tested without capturing stdout; `main` just prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;

pub use args::ParsedArgs;

/// Errors reported to the command-line user.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was malformed.
    Usage(String),
    /// The requested operation failed.
    Failed(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Wraps any displayable failure.
    pub fn failed(e: impl fmt::Display) -> Self {
        CliError::Failed(e.to_string())
    }
}

/// The top-level usage text.
#[must_use]
pub fn usage() -> String {
    "dsearch-cli — parallel desktop-search index generator (Meder & Tichy 2010 reproduction)

USAGE:
    dsearch-cli <command> [arguments]

COMMANDS:
    index <dir> --store <path> [--extractors N] [--updaters N] [--joiners N]
          [--implementation 1|2|3] [--formats] [--incremental]
        Index the files under <dir> and persist the result in <path>
        (the paper's batch pipeline; see `build` for the fault-tolerant,
        resumable variant).

    build <dir> --store <path> [--resume] [--extractors N] [--max-retries N]
          [--checkpoint-every SECS] [--throttle-ms N] [--formats]
        Fault-tolerant, checkpointed build of <dir> into <path>.  Work items
        are leased (a dead worker's lease is reclaimed), transient read
        failures retry with exponential backoff, and files that keep failing
        are quarantined in the dead-letter queue instead of failing the
        build.  Progress checkpoints atomically every SECS seconds (0 =
        after every file); a killed build rerun with --resume skips the
        files already sealed into segments.

    dlq list --store <path>
    dlq replay <dir> --store <path> [--extractors N] [--max-retries N]
        Inspect the dead-letter queue, or re-run the quarantined files
        through the pipeline once the underlying fault is fixed; recovered
        files join the index and leave the queue.

    search --store <path> <query words…> [--limit N]
        Query a persisted index.  Supports AND/OR/NOT and trailing-* prefixes.

    serve --store <path> [--tcp ADDR] [--workers N] [--cache N]
          [--cache-shards N] [--limit N] [--max-batch N]
          [--batch-wait-us N|auto] [--queue-bound N] [--overload reject|drop]
          [--trace-us N]
        Run the query service: line protocol on stdin (and ADDR when --tcp is
        given).  One query per line (prefix @<hex-id> for a traced response
        with its stage breakdown); !stats reports counters, !metrics the full
        Prometheus-style exposition, !trace <µs>|on|off arms the slow-query
        log (--trace-us arms it at boot), !slow dumps it, !reload republishes
        the store as a new snapshot generation, !quit disconnects.  With --tcp,
        closing stdin leaves the TCP listener serving (daemon mode); !quit on
        stdin stops everything.  Workers drain up to --max-batch queued queries
        per wakeup (waiting up to --batch-wait-us for a fuller batch); with a
        nonzero --queue-bound, excess load is shed per --overload (reject the
        new request, or drop the oldest queued one).

    route --shard HOST:PORT [--shard HOST:PORT …] [--tcp ADDR] [--limit N]
          [--workers N] [--max-batch N] [--batch-wait-us N|auto]
          [--queue-bound N] [--overload reject|drop]
          [--shard-timeout-ms N] [--connect-timeout-ms N] [--trace-us N]
        Run the scatter-gather coordinator over one or more `dsearch serve`
        shard servers.  Every query fans out to all shards concurrently over
        the line protocol and the per-shard rankings are merged; a shard that
        is down or times out degrades the answer to partial=true instead of
        failing it (shard_errors= in !stats).  !stats aggregates the shards'
        metrics; !reload fans out to every shard.  Traced responses (@<hex-id>
        prefix, or !trace / --trace-us for the slow-query log) carry one
        `# shard <addr> rtt= stages=` line per shard; !metrics exposes the
        per-shard round-trip histograms.

    loadgen --store <path> [--requests N] [--queries N] [--seed N]
            [--mode closed|open] [--clients N] [--rate QPS] [--workers N]
            [--max-batch N] [--batch-wait-us N] [--queue-bound N]
            [--overload reject|drop] [--stage-report]
        Replay a query workload derived from the indexed terms and report QPS,
        p50/p95/p99/p99.9 latency and shed/batched/dedup counts; with
        --stage-report, also per-stage latency percentiles from the servers'
        query traces.

    corpus <dir> [--scale F] [--seed N]
        Materialise a synthetic benchmark corpus with the paper's shape.

    tables [--table 1|2|3|4]
        Print the paper's tables regenerated from the calibrated platform models.

    curves [--platform 4|8|32] [--max-threads N]
        Print speed-up-vs-thread-count curves for the three implementations.

    tune [--platform 4|8|32]
        Search the (x, y, z) space with the exhaustive, hill-climbing and
        random-search auto-tuners and compare what they find.

    help
        Show this message.
"
    .to_owned()
}

/// Parses `raw` arguments (without the program name) and runs the selected
/// command, returning its printable output.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed command lines and
/// [`CliError::Failed`] when the operation itself fails.
pub fn run<I, S>(raw: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args = ParsedArgs::parse(raw)?;
    match args.command.as_deref() {
        None | Some("help") => Ok(usage()),
        Some("index") => commands::index::run(&args),
        Some("build") => commands::build::run(&args),
        Some("dlq") => commands::dlq::run(&args),
        Some("search") => commands::search::run(&args),
        Some("serve") => commands::serve::run(&args),
        Some("route") => commands::route::run(&args),
        Some("loadgen") => commands::loadgen::run(&args),
        Some("corpus") => commands::corpus::run(&args),
        Some("tables") => commands::tables::run(&args),
        Some("curves") => commands::curves::run(&args),
        Some("tune") => commands::tune::run(&args),
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}; run `dsearch-cli help` for the command list"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_empty_input_print_usage() {
        let out = run(["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("index <dir>"));
        assert_eq!(run(Vec::<String>::new()).unwrap(), out);
    }

    #[test]
    fn unknown_commands_are_usage_errors() {
        let err = run(["frobnicate"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn error_display_distinguishes_usage_from_failure() {
        assert!(CliError::Usage("x".into()).to_string().starts_with("usage error"));
        assert_eq!(CliError::failed("boom").to_string(), "boom");
    }
}
