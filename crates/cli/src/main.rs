//! Binary entry point for `dsearch-cli`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match dsearch_cli::run(raw) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dsearch: {e}");
            if matches!(e, dsearch_cli::CliError::Usage(_)) {
                eprintln!("\n{}", dsearch_cli::usage());
            }
            ExitCode::FAILURE
        }
    }
}
