//! End-to-end tests of the CLI: corpus → index → search → incremental update,
//! all through the library-level `run` entry point (no subprocess needed).

use std::fs;
use std::path::{Path, PathBuf};

use dsearch_cli::{run, CliError};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("dsearch-cli-e2e-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn sub(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn write_docs(dir: &Path) {
    fs::create_dir_all(dir.join("notes")).unwrap();
    fs::write(dir.join("notes/report.txt"), "quarterly revenue grew strongly").unwrap();
    fs::write(dir.join("notes/plan.md"), "# Roadmap\n\nParallel indexing milestones\n").unwrap();
    fs::write(dir.join("todo.txt"), "review the parallel index generator").unwrap();
}

#[test]
fn index_then_search_finds_documents() {
    let dir = TempDir::new("index-search");
    let docs = dir.path().join("docs");
    fs::create_dir_all(&docs).unwrap();
    write_docs(&docs);
    let store = dir.sub("store");

    let out = run([
        "index".to_owned(),
        docs.to_string_lossy().into_owned(),
        "--store".to_owned(),
        store.clone(),
        "--extractors".to_owned(),
        "2".to_owned(),
        "--implementation".to_owned(),
        "2".to_owned(),
        "--formats".to_owned(),
    ])
    .unwrap();
    assert!(out.contains("indexed 3 files"), "{out}");
    assert!(out.contains("Implementation 2"));

    let out =
        run(["search".to_owned(), "--store".to_owned(), store.clone(), "parallel".to_owned()])
            .unwrap();
    assert!(out.contains("2 result(s)"), "{out}");
    assert!(out.contains("todo.txt"));

    // NOT and prefix queries work through the CLI too.
    let out = run([
        "search".to_owned(),
        "--store".to_owned(),
        store.clone(),
        "parallel".to_owned(),
        "NOT".to_owned(),
        "roadmap".to_owned(),
    ])
    .unwrap();
    assert!(out.contains("1 result(s)"), "{out}");
    let out =
        run(["search".to_owned(), "--store".to_owned(), store, "revenu*".to_owned()]).unwrap();
    assert!(out.contains("report.txt"), "{out}");
}

#[test]
fn implementation_three_stores_replicas_and_searches_them_together() {
    let dir = TempDir::new("replicas");
    let docs = dir.path().join("docs");
    fs::create_dir_all(&docs).unwrap();
    write_docs(&docs);
    let store = dir.sub("store");

    let out = run([
        "index".to_owned(),
        docs.to_string_lossy().into_owned(),
        "--store".to_owned(),
        store.clone(),
        "--extractors".to_owned(),
        "3".to_owned(),
        "--implementation".to_owned(),
        "3".to_owned(),
    ])
    .unwrap();
    assert!(out.contains("3 segment(s)"), "{out}");

    let out = run(["search".to_owned(), "--store".to_owned(), store, "index".to_owned()]).unwrap();
    assert!(out.contains("result(s)"), "{out}");
    assert!(out.contains("todo.txt"), "{out}");
}

#[test]
fn incremental_update_rescans_only_changes() {
    let dir = TempDir::new("incremental");
    let docs = dir.path().join("docs");
    fs::create_dir_all(&docs).unwrap();
    write_docs(&docs);
    let store = dir.sub("store");

    let first = run([
        "index".to_owned(),
        docs.to_string_lossy().into_owned(),
        "--store".to_owned(),
        store.clone(),
        "--incremental".to_owned(),
    ])
    .unwrap();
    assert!(first.contains("added 3"), "{first}");

    // No changes: nothing is re-scanned.
    let second = run([
        "index".to_owned(),
        docs.to_string_lossy().into_owned(),
        "--store".to_owned(),
        store.clone(),
        "--incremental".to_owned(),
    ])
    .unwrap();
    assert!(second.contains("added 0 / modified 0 / removed 0 / unchanged 3"), "{second}");

    // Add one file, remove another.
    fs::write(docs.join("notes/new.txt"), "fresh incremental content").unwrap();
    fs::remove_file(docs.join("todo.txt")).unwrap();
    let third = run([
        "index".to_owned(),
        docs.to_string_lossy().into_owned(),
        "--store".to_owned(),
        store.clone(),
        "--incremental".to_owned(),
    ])
    .unwrap();
    assert!(third.contains("added 1"), "{third}");
    assert!(third.contains("removed 1"), "{third}");

    let out =
        run(["search".to_owned(), "--store".to_owned(), store.clone(), "incremental".to_owned()])
            .unwrap();
    assert!(out.contains("new.txt"), "{out}");
    let out =
        run(["search".to_owned(), "--store".to_owned(), store, "generator".to_owned()]).unwrap();
    assert!(out.contains("0 result(s)"), "removed file must not be found: {out}");
}

#[test]
fn loadgen_reports_qps_and_percentiles() {
    let dir = TempDir::new("loadgen");
    let docs = dir.path().join("docs");
    fs::create_dir_all(&docs).unwrap();
    write_docs(&docs);
    let store = dir.sub("store");

    run([
        "index".to_owned(),
        docs.to_string_lossy().into_owned(),
        "--store".to_owned(),
        store.clone(),
    ])
    .unwrap();

    let out = run([
        "loadgen".to_owned(),
        "--store".to_owned(),
        store.clone(),
        "--requests".to_owned(),
        "200".to_owned(),
        "--queries".to_owned(),
        "16".to_owned(),
        "--clients".to_owned(),
        "2".to_owned(),
        "--workers".to_owned(),
        "2".to_owned(),
    ])
    .unwrap();
    assert!(out.contains("qps"), "{out}");
    assert!(out.contains("p50") && out.contains("p95") && out.contains("p99"), "{out}");
    assert!(out.contains("errors 0"), "{out}");
    assert!(out.contains("generations seen {1}"), "{out}");

    // Open-loop mode works through the CLI too.
    let out = run([
        "loadgen".to_owned(),
        "--store".to_owned(),
        store,
        "--requests".to_owned(),
        "50".to_owned(),
        "--mode".to_owned(),
        "open".to_owned(),
        "--rate".to_owned(),
        "5000".to_owned(),
    ])
    .unwrap();
    assert!(out.contains("open-loop"), "{out}");
    assert!(out.contains("p99"), "{out}");
}

#[test]
fn searching_an_empty_store_fails_cleanly() {
    let dir = TempDir::new("empty-store");
    let store = dir.sub("store");
    // Opening the store lazily creates it, so the search sees zero segments.
    let err =
        run(["search".to_owned(), "--store".to_owned(), store, "anything".to_owned()]).unwrap_err();
    assert!(matches!(err, CliError::Failed(_)));
    assert!(err.to_string().contains("empty"));
}

#[test]
fn tables_and_curves_commands_run_without_a_corpus() {
    let out = run(["tables", "--table", "4"]).unwrap();
    assert!(out.contains("32-core"));
    let out = run(["curves", "--platform", "4", "--max-threads", "4"]).unwrap();
    assert!(out.contains("Implementation 3"));
}
