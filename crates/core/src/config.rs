//! Run configurations.
//!
//! The paper explores the design space along two axes:
//!
//! * which **implementation** of the index interaction is used
//!   ([`Implementation`]), and
//! * how many threads are allocated to each stage — the configuration tuple
//!   *(x, y, z)* = (term-extraction threads, index-update threads, index-join
//!   threads) ([`Configuration`]).
//!
//! [`GeneratorOptions`] collects the remaining design choices the paper calls
//! out (work-distribution strategy, duplicate handling, Stage 1 scheduling),
//! each of which the ablation benchmarks can flip independently.

use serde::{Deserialize, Serialize};

use dsearch_text::tokenizer::TokenizerOptions;

use crate::distribute::DistributionStrategy;

/// The three index-update designs compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Implementation {
    /// Implementation 1: a single shared index, locked on update.
    SharedLocked,
    /// Implementation 2: per-thread replica indices, joined at the end
    /// ("Join Forces").
    ReplicateJoin,
    /// Implementation 3: per-thread replica indices, never joined; the search
    /// queries all replicas in parallel.
    ReplicateNoJoin,
}

impl Implementation {
    /// All three implementations, in paper order.
    pub const ALL: [Implementation; 3] = [
        Implementation::SharedLocked,
        Implementation::ReplicateJoin,
        Implementation::ReplicateNoJoin,
    ];

    /// The paper's name for the implementation ("Implementation 1" …).
    #[must_use]
    pub fn paper_name(self) -> &'static str {
        match self {
            Implementation::SharedLocked => "Implementation 1",
            Implementation::ReplicateJoin => "Implementation 2",
            Implementation::ReplicateNoJoin => "Implementation 3",
        }
    }

    /// Whether the implementation performs a join stage.
    #[must_use]
    pub fn joins(self) -> bool {
        matches!(self, Implementation::ReplicateJoin)
    }

    /// Whether the implementation keeps a single shared index during updates.
    #[must_use]
    pub fn uses_shared_index(self) -> bool {
        matches!(self, Implementation::SharedLocked)
    }
}

impl std::fmt::Display for Implementation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A thread-allocation tuple *(x, y, z)*.
///
/// * `x` — term-extraction threads (Stage 2); must be ≥ 1.
/// * `y` — dedicated index-update threads (Stage 3); `0` means the extractor
///   threads update the index themselves.
/// * `z` — index-join threads; only meaningful for
///   [`Implementation::ReplicateJoin`], `0` means the main thread performs a
///   sequential join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    /// Term-extraction threads (x).
    pub extraction_threads: usize,
    /// Index-update threads (y); 0 = extractors update the index directly.
    pub update_threads: usize,
    /// Index-join threads (z); 0 = sequential join on the main thread.
    pub join_threads: usize,
}

impl Configuration {
    /// Creates a configuration tuple `(x, y, z)`.
    #[must_use]
    pub fn new(extraction_threads: usize, update_threads: usize, join_threads: usize) -> Self {
        Configuration { extraction_threads, update_threads, join_threads }
    }

    /// The sequential configuration `(1, 0, 0)`.
    #[must_use]
    pub fn sequential() -> Self {
        Configuration::new(1, 0, 0)
    }

    /// Number of threads that perform index updates: `y`, or `x` when `y == 0`.
    #[must_use]
    pub fn updater_count(&self) -> usize {
        if self.update_threads == 0 {
            self.extraction_threads
        } else {
            self.update_threads
        }
    }

    /// Total worker threads used during the extraction/update phase.
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        self.extraction_threads + self.update_threads
    }

    /// Validates the tuple for a given implementation.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when the tuple cannot be run.
    pub fn validate(&self, implementation: Implementation) -> Result<(), String> {
        if self.extraction_threads == 0 {
            return Err("extraction_threads (x) must be at least 1".into());
        }
        if self.join_threads > 0 && !implementation.joins() {
            return Err(format!(
                "{} does not join indices; join_threads (z) must be 0",
                implementation.paper_name()
            ));
        }
        Ok(())
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.extraction_threads, self.update_threads, self.join_threads)
    }
}

/// How term duplicates within one file are handled (Section 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DedupMode {
    /// Build a condensed word list per file (the paper's choice).
    #[default]
    PerFileWordList,
    /// Insert every occurrence into the index and let the index discard
    /// duplicates (the rejected alternative; kept for the ablation).
    InsertEveryOccurrence,
}

/// Granularity of index insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InsertGranularity {
    /// Pass the whole per-file word list to the index in one call (en bloc).
    #[default]
    EnBloc,
    /// Insert terms one at a time (one lock acquisition per term for the
    /// shared index).
    PerTerm,
}

/// How Stage 2 treats file formats other than plain text.
///
/// The paper's benchmark was plain ASCII text only; handling "more file
/// formats" is listed as future work.  [`FormatMode::DetectAndExtract`] is
/// that extension: each file's format is detected (by extension, then content
/// sniffing) and converted to plain text by `dsearch-formats` before
/// tokenisation, and binary files are skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FormatMode {
    /// Treat every file as plain text (the paper's setup).
    #[default]
    PlainTextOnly,
    /// Detect each file's format and extract its plain text before
    /// tokenisation; skip binary files.
    DetectAndExtract,
}

/// When Stage 1 runs relative to Stage 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Stage1Mode {
    /// Generate the complete filename list before extraction starts (the
    /// paper's choice).
    #[default]
    UpFront,
    /// Run the filename generator concurrently with the extractors, feeding
    /// them through a shared queue (the paper found this "highly inefficient"
    /// because of per-filename locking; kept for the ablation).
    Concurrent,
}

/// All design choices of a run besides the thread counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GeneratorOptions {
    /// Tokenizer settings.
    pub tokenizer: TokenizerOptions,
    /// Work-distribution strategy for Stage 2.
    pub distribution: DistributionStrategy,
    /// Duplicate handling.
    pub dedup: DedupMode,
    /// Index insertion granularity.
    pub granularity: InsertGranularity,
    /// Stage 1 scheduling.
    pub stage1: Stage1Mode,
    /// File-format handling in Stage 2.
    pub formats: FormatMode,
    /// Capacity of the extractor → updater buffer (files in flight) when
    /// dedicated updater threads are used.
    pub update_queue_capacity: usize,
}

impl GeneratorOptions {
    /// The reference configuration the paper converged on.
    #[must_use]
    pub fn paper_defaults() -> Self {
        GeneratorOptions {
            tokenizer: TokenizerOptions::default(),
            distribution: DistributionStrategy::RoundRobin,
            dedup: DedupMode::PerFileWordList,
            granularity: InsertGranularity::EnBloc,
            stage1: Stage1Mode::UpFront,
            formats: FormatMode::PlainTextOnly,
            update_queue_capacity: 64,
        }
    }

    /// Effective update-queue capacity (defaults to 64 when left at 0).
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        if self.update_queue_capacity == 0 {
            64
        } else {
            self.update_queue_capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Configuration::new(3, 1, 0).to_string(), "(3, 1, 0)");
        assert_eq!(Configuration::new(8, 4, 1).to_string(), "(8, 4, 1)");
        assert_eq!(Implementation::SharedLocked.to_string(), "Implementation 1");
        assert_eq!(Implementation::ReplicateJoin.to_string(), "Implementation 2");
        assert_eq!(Implementation::ReplicateNoJoin.to_string(), "Implementation 3");
    }

    #[test]
    fn implementation_properties() {
        assert!(Implementation::SharedLocked.uses_shared_index());
        assert!(!Implementation::ReplicateJoin.uses_shared_index());
        assert!(Implementation::ReplicateJoin.joins());
        assert!(!Implementation::ReplicateNoJoin.joins());
        assert_eq!(Implementation::ALL.len(), 3);
    }

    #[test]
    fn validation_rules() {
        assert!(Configuration::new(0, 1, 0).validate(Implementation::SharedLocked).is_err());
        assert!(Configuration::new(1, 0, 1).validate(Implementation::SharedLocked).is_err());
        assert!(Configuration::new(1, 0, 1).validate(Implementation::ReplicateNoJoin).is_err());
        assert!(Configuration::new(3, 5, 1).validate(Implementation::ReplicateJoin).is_ok());
        assert!(Configuration::new(3, 1, 0).validate(Implementation::SharedLocked).is_ok());
    }

    #[test]
    fn updater_and_worker_counts() {
        let direct = Configuration::new(4, 0, 0);
        assert_eq!(direct.updater_count(), 4);
        assert_eq!(direct.worker_threads(), 4);
        let buffered = Configuration::new(3, 2, 1);
        assert_eq!(buffered.updater_count(), 2);
        assert_eq!(buffered.worker_threads(), 5);
        assert_eq!(Configuration::sequential(), Configuration::new(1, 0, 0));
    }

    #[test]
    fn options_defaults_match_paper_choices() {
        let opts = GeneratorOptions::paper_defaults();
        assert_eq!(opts.distribution, DistributionStrategy::RoundRobin);
        assert_eq!(opts.dedup, DedupMode::PerFileWordList);
        assert_eq!(opts.granularity, InsertGranularity::EnBloc);
        assert_eq!(opts.stage1, Stage1Mode::UpFront);
        assert_eq!(opts.formats, FormatMode::PlainTextOnly);
        assert!(opts.queue_capacity() > 0);
        let default_opts = GeneratorOptions::default();
        assert_eq!(default_opts.queue_capacity(), 64);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = Configuration::new(6, 2, 0);
        let json = serde_json::to_string(&cfg).unwrap();
        assert_eq!(serde_json::from_str::<Configuration>(&json).unwrap(), cfg);
        let imp = Implementation::ReplicateNoJoin;
        let json = serde_json::to_string(&imp).unwrap();
        assert_eq!(serde_json::from_str::<Implementation>(&json).unwrap(), imp);
    }
}
