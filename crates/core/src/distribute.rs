//! Work distribution for Stage 2.
//!
//! Section 2.1 of the paper lists the options considered for handing files to
//! the term extractors: work queues, round-robin distribution, assignment
//! based on file lengths, and work stealing.  The paper settled on round-robin
//! into *k* private vectors — no synchronisation at all during extraction —
//! after finding it faster than size-aware assignment.  All the alternatives
//! are implemented here so the ablation benchmark can reproduce that
//! comparison:
//!
//! * [`DistributionStrategy::RoundRobin`] — file *i* goes to vector *i mod k*;
//! * [`DistributionStrategy::SizeBalanced`] — longest-processing-time-first
//!   bin packing on file sizes;
//! * [`DistributionStrategy::Chunked`] — contiguous slices (the naive split);
//! * [`WorkQueue`] — a shared lock-protected queue the extractors pop from
//!   (dynamic load balancing paid for with per-file locking).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use dsearch_index::FileId;
use dsearch_vfs::VPath;

/// One unit of Stage 2 work: a file to scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// Id assigned by Stage 1.
    pub file_id: FileId,
    /// Path of the file.
    pub path: VPath,
    /// Size in bytes (from the directory walk).
    pub size: u64,
}

/// Static distribution strategies (files are assigned before extraction
/// starts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DistributionStrategy {
    /// Round-robin assignment (the paper's choice).
    #[default]
    RoundRobin,
    /// Longest-processing-time-first assignment by file size.
    SizeBalanced,
    /// Contiguous chunks of the file list.
    Chunked,
    /// A shared work queue popped by the extractors (dynamic; involves one
    /// lock operation per file).
    WorkQueue,
    /// Per-extractor deques with work stealing: each extractor owns a local
    /// deque (filled round-robin) and steals from the others once its own is
    /// empty — the last of the four options Section 2.1 of the paper lists.
    WorkStealing,
}

impl DistributionStrategy {
    /// All strategies, for sweeps and ablations.
    pub const ALL: [DistributionStrategy; 5] = [
        DistributionStrategy::RoundRobin,
        DistributionStrategy::SizeBalanced,
        DistributionStrategy::Chunked,
        DistributionStrategy::WorkQueue,
        DistributionStrategy::WorkStealing,
    ];

    /// Whether the strategy requires synchronisation between extractors
    /// (a shared queue or stealable deques) instead of private vectors.
    #[must_use]
    pub fn is_dynamic(self) -> bool {
        matches!(self, DistributionStrategy::WorkQueue | DistributionStrategy::WorkStealing)
    }
}

impl std::fmt::Display for DistributionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DistributionStrategy::RoundRobin => "round-robin",
            DistributionStrategy::SizeBalanced => "size-balanced",
            DistributionStrategy::Chunked => "chunked",
            DistributionStrategy::WorkQueue => "work-queue",
            DistributionStrategy::WorkStealing => "work-stealing",
        };
        f.write_str(name)
    }
}

/// Statically partitions `items` into `workers` private vectors.
///
/// For [`DistributionStrategy::WorkQueue`] the partition is round-robin (the
/// caller should use [`WorkQueue`] instead; this fallback keeps the function
/// total).
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn partition(
    items: Vec<WorkItem>,
    workers: usize,
    strategy: DistributionStrategy,
) -> Vec<Vec<WorkItem>> {
    assert!(workers > 0, "cannot partition work across zero workers");
    match strategy {
        DistributionStrategy::RoundRobin
        | DistributionStrategy::WorkQueue
        | DistributionStrategy::WorkStealing => {
            let mut parts: Vec<Vec<WorkItem>> =
                (0..workers).map(|_| Vec::with_capacity(items.len() / workers + 1)).collect();
            for (i, item) in items.into_iter().enumerate() {
                parts[i % workers].push(item);
            }
            parts
        }
        DistributionStrategy::Chunked => {
            let chunk = items.len().div_ceil(workers).max(1);
            let mut parts: Vec<Vec<WorkItem>> = Vec::with_capacity(workers);
            let mut iter = items.into_iter().peekable();
            for _ in 0..workers {
                let mut part = Vec::with_capacity(chunk);
                for _ in 0..chunk {
                    match iter.next() {
                        Some(item) => part.push(item),
                        None => break,
                    }
                }
                parts.push(part);
            }
            // Any remainder (only when chunk*workers < len, impossible with
            // div_ceil) — defensive drain.
            if iter.peek().is_some() {
                parts.last_mut().expect("workers > 0").extend(iter);
            }
            parts
        }
        DistributionStrategy::SizeBalanced => {
            // Longest-processing-time-first greedy bin packing.
            let mut indexed: Vec<WorkItem> = items;
            indexed.sort_by(|a, b| b.size.cmp(&a.size).then_with(|| a.file_id.cmp(&b.file_id)));
            let mut parts: Vec<Vec<WorkItem>> = (0..workers).map(|_| Vec::new()).collect();
            let mut loads = vec![0u64; workers];
            for item in indexed {
                let (lightest, _) = loads
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, &load)| (load, *i))
                    .expect("workers > 0");
                loads[lightest] += item.size;
                parts[lightest].push(item);
            }
            parts
        }
    }
}

/// Measures how evenly a partition spreads bytes across workers.
///
/// Returns `(max_bytes, min_bytes, imbalance)` where `imbalance` is
/// `max / mean` (1.0 = perfectly balanced). An empty partition yields
/// `(0, 0, 1.0)`.
#[must_use]
pub fn balance_metrics(parts: &[Vec<WorkItem>]) -> (u64, u64, f64) {
    if parts.is_empty() {
        return (0, 0, 1.0);
    }
    let loads: Vec<u64> = parts.iter().map(|p| p.iter().map(|w| w.size).sum()).collect();
    let max = *loads.iter().max().unwrap_or(&0);
    let min = *loads.iter().min().unwrap_or(&0);
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / loads.len() as f64;
    let imbalance = if mean == 0.0 { 1.0 } else { max as f64 / mean };
    (max, min, imbalance)
}

/// How many times a queue item is re-leased after panic reclaims before the
/// queue refuses to hand it out again and counts it as poisoned.
pub const MAX_LEASE_ATTEMPTS: u32 = 3;

/// A shared FIFO work queue for the dynamic distribution strategy.
///
/// Every `pop` takes the lock once — exactly the per-filename synchronisation
/// cost the paper measured when running Stage 1 concurrently with Stage 2.
///
/// Plain `pop` hands the item over unconditionally: a consumer that panics
/// between the pop and the index insert silently loses the file.  The
/// lease/ack protocol ([`WorkQueue::lease`]) closes that hole — a
/// [`QueueLease`] dropped without [`QueueLease::ack`] (a panic unwinding
/// through the extractor, or the extractor thread dying outright) puts the
/// item back at the front of the queue for another worker, up to
/// [`MAX_LEASE_ATTEMPTS`] attempts per item.
#[derive(Debug, Clone)]
pub struct WorkQueue {
    inner: Arc<Mutex<QueueInner>>,
}

#[derive(Debug, Default)]
struct QueueInner {
    items: VecDeque<(WorkItem, u32)>,
    reclaims: u64,
    poisoned: Vec<WorkItem>,
}

impl WorkQueue {
    /// Creates a queue pre-filled with `items`.
    #[must_use]
    pub fn new(items: Vec<WorkItem>) -> Self {
        let inner =
            QueueInner { items: items.into_iter().map(|i| (i, 0)).collect(), ..Default::default() };
        WorkQueue { inner: Arc::new(Mutex::new(inner)) }
    }

    /// Creates an empty queue (for the concurrent Stage 1 ablation, where the
    /// producer pushes while consumers pop).
    #[must_use]
    pub fn empty() -> Self {
        WorkQueue::new(Vec::new())
    }

    /// Adds an item to the back of the queue.
    pub fn push(&self, item: WorkItem) {
        self.inner.lock().items.push_back((item, 0));
    }

    /// Removes and returns the item at the front of the queue.
    #[must_use]
    pub fn pop(&self) -> Option<WorkItem> {
        self.inner.lock().items.pop_front().map(|(item, _)| item)
    }

    /// Takes the front item under a lease: the item is only consumed once the
    /// lease is [`QueueLease::ack`]ed.  Dropping the lease un-acked returns
    /// the item to the front of the queue.
    #[must_use]
    pub fn lease(&self) -> Option<QueueLease> {
        self.inner.lock().items.pop_front().map(|(item, attempts)| QueueLease {
            queue: self.clone(),
            slot: Some((item, attempts)),
        })
    }

    /// Number of items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Returns `true` when the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().items.is_empty()
    }

    /// Times a lease was returned to the queue instead of being acked.
    #[must_use]
    pub fn reclaims(&self) -> u64 {
        self.inner.lock().reclaims
    }

    /// Items that were reclaimed [`MAX_LEASE_ATTEMPTS`] times and refused
    /// further leases — work that could not be completed by any consumer.
    #[must_use]
    pub fn poisoned(&self) -> Vec<WorkItem> {
        self.inner.lock().poisoned.clone()
    }

    fn reclaim(&self, item: WorkItem, attempts: u32) {
        let mut inner = self.inner.lock();
        inner.reclaims += 1;
        if attempts + 1 >= MAX_LEASE_ATTEMPTS {
            inner.poisoned.push(item);
        } else {
            inner.items.push_front((item, attempts + 1));
        }
    }
}

/// A leased [`WorkItem`]: the holder must [`QueueLease::ack`] after the item
/// has been fully processed.  Dropping the lease — including a panic
/// unwinding through the holder — puts the item back on the queue.
#[derive(Debug)]
pub struct QueueLease {
    queue: WorkQueue,
    slot: Option<(WorkItem, u32)>,
}

impl QueueLease {
    /// The leased item.
    #[must_use]
    pub fn item(&self) -> &WorkItem {
        &self.slot.as_ref().expect("lease not yet resolved").0
    }

    /// Marks the item as fully processed, consuming the lease.
    pub fn ack(mut self) {
        self.slot = None;
    }
}

impl Drop for QueueLease {
    fn drop(&mut self) {
        if let Some((item, attempts)) = self.slot.take() {
            self.queue.reclaim(item, attempts);
        }
    }
}

/// One extractor's handle into the work-stealing pool.
///
/// The extractor pops from its own deque first (LIFO, cache-friendly) and,
/// once that is empty, steals batches from its peers — the dynamic
/// load-balancing alternative the paper lists in Section 2.1 that needs no
/// central lock.
#[derive(Debug)]
pub struct StealWorker {
    local: crossbeam::deque::Worker<WorkItem>,
    peers: Vec<crossbeam::deque::Stealer<WorkItem>>,
}

impl StealWorker {
    /// Takes the next item: the local deque first, then any peer.
    ///
    /// Returns `None` only when every deque in the pool is empty.
    #[must_use]
    pub fn pop(&self) -> Option<WorkItem> {
        if let Some(item) = self.local.pop() {
            return Some(item);
        }
        loop {
            let mut retry = false;
            for stealer in &self.peers {
                match stealer.steal_batch_and_pop(&self.local) {
                    crossbeam::deque::Steal::Success(item) => return Some(item),
                    crossbeam::deque::Steal::Retry => retry = true,
                    crossbeam::deque::Steal::Empty => {}
                }
            }
            if !retry {
                return None;
            }
        }
    }

    /// Number of items currently in this worker's local deque.
    #[must_use]
    pub fn local_len(&self) -> usize {
        self.local.len()
    }
}

/// Builds the per-extractor deques for [`DistributionStrategy::WorkStealing`].
///
/// Items are dealt round-robin into `workers` deques; every returned
/// [`StealWorker`] can steal from all the others.
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn stealing_pool(items: Vec<WorkItem>, workers: usize) -> Vec<StealWorker> {
    assert!(workers > 0, "cannot build a stealing pool with zero workers");
    let locals: Vec<crossbeam::deque::Worker<WorkItem>> =
        (0..workers).map(|_| crossbeam::deque::Worker::new_fifo()).collect();
    for (i, item) in items.into_iter().enumerate() {
        locals[i % workers].push(item);
    }
    let stealers: Vec<crossbeam::deque::Stealer<WorkItem>> =
        locals.iter().map(crossbeam::deque::Worker::stealer).collect();
    locals
        .into_iter()
        .enumerate()
        .map(|(i, local)| {
            let peers = stealers
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, s)| s.clone())
                .collect();
            StealWorker { local, peers }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn items(sizes: &[u64]) -> Vec<WorkItem> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| WorkItem {
                file_id: FileId(i as u32),
                path: VPath::new(format!("f{i}.txt")),
                size,
            })
            .collect()
    }

    #[test]
    fn round_robin_interleaves() {
        let parts = partition(items(&[1, 2, 3, 4, 5]), 2, DistributionStrategy::RoundRobin);
        assert_eq!(parts.len(), 2);
        let ids: Vec<Vec<u32>> =
            parts.iter().map(|p| p.iter().map(|w| w.file_id.as_u32()).collect()).collect();
        assert_eq!(ids, vec![vec![0, 2, 4], vec![1, 3]]);
    }

    #[test]
    fn chunked_keeps_contiguity() {
        let parts = partition(items(&[0; 7]), 3, DistributionStrategy::Chunked);
        let ids: Vec<Vec<u32>> =
            parts.iter().map(|p| p.iter().map(|w| w.file_id.as_u32()).collect()).collect();
        assert_eq!(ids, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }

    #[test]
    fn size_balanced_beats_round_robin_on_skewed_sizes() {
        // One huge file and many small ones — the scenario the paper's
        // benchmark (five large files) creates.
        let mut sizes = vec![1_000_000u64];
        sizes.extend(std::iter::repeat_n(1_000, 99));
        let rr = partition(items(&sizes), 4, DistributionStrategy::RoundRobin);
        let sb = partition(items(&sizes), 4, DistributionStrategy::SizeBalanced);
        let (_, _, rr_imbalance) = balance_metrics(&rr);
        let (_, _, sb_imbalance) = balance_metrics(&sb);
        assert!(sb_imbalance <= rr_imbalance);
        assert!(sb_imbalance < 3.9, "LPT should spread the load, got {sb_imbalance}");
    }

    #[test]
    fn single_worker_gets_everything() {
        for strategy in DistributionStrategy::ALL {
            let parts = partition(items(&[5, 6, 7]), 1, strategy);
            assert_eq!(parts.len(), 1);
            assert_eq!(parts[0].len(), 3, "strategy {strategy}");
        }
    }

    #[test]
    fn more_workers_than_items_leaves_empty_parts() {
        let parts = partition(items(&[1, 2]), 5, DistributionStrategy::RoundRobin);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
    }

    #[test]
    #[should_panic(expected = "zero workers")]
    fn zero_workers_panics() {
        let _ = partition(items(&[1]), 0, DistributionStrategy::RoundRobin);
    }

    #[test]
    fn balance_metrics_edge_cases() {
        assert_eq!(balance_metrics(&[]), (0, 0, 1.0));
        let parts = vec![Vec::new(), Vec::new()];
        let (max, min, imbalance) = balance_metrics(&parts);
        assert_eq!((max, min), (0, 0));
        assert!((imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strategy_display_and_dynamic_flag() {
        assert_eq!(DistributionStrategy::RoundRobin.to_string(), "round-robin");
        assert_eq!(DistributionStrategy::WorkQueue.to_string(), "work-queue");
        assert_eq!(DistributionStrategy::WorkStealing.to_string(), "work-stealing");
        assert!(DistributionStrategy::WorkQueue.is_dynamic());
        assert!(DistributionStrategy::WorkStealing.is_dynamic());
        assert!(!DistributionStrategy::RoundRobin.is_dynamic());
    }

    #[test]
    fn stealing_pool_delivers_every_item_exactly_once() {
        let workers = stealing_pool(items(&[1; 50]), 4);
        assert_eq!(workers.len(), 4);
        assert!(workers.iter().all(|w| w.local_len() >= 12));

        let consumed = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for worker in workers {
                let consumed = Arc::clone(&consumed);
                scope.spawn(move || {
                    while let Some(item) = worker.pop() {
                        consumed.lock().push(item.file_id.as_u32());
                    }
                });
            }
        });
        let mut seen = consumed.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn idle_stealer_takes_work_from_a_loaded_peer() {
        // Round-robin puts 10 items in each deque.  If worker 1 alone drains
        // the pool it must steal worker 0's share once its own runs out.
        let workers = stealing_pool(items(&[1; 20]), 2);
        let mut drained = 0;
        while workers[1].pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 20, "worker 1 should drain its own deque and steal the rest");
        assert!(workers[0].pop().is_none());
    }

    #[test]
    fn stealing_pool_single_worker_behaves_like_a_queue() {
        let workers = stealing_pool(items(&[1, 2, 3]), 1);
        assert_eq!(workers.len(), 1);
        let mut count = 0;
        while workers[0].pop().is_some() {
            count += 1;
        }
        assert_eq!(count, 3);
        assert!(workers[0].pop().is_none());
    }

    #[test]
    #[should_panic(expected = "zero workers")]
    fn stealing_pool_zero_workers_panics() {
        let _ = stealing_pool(Vec::new(), 0);
    }

    #[test]
    fn work_queue_is_fifo_and_thread_safe() {
        let queue = WorkQueue::new(items(&[1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(queue.len(), 8);
        assert!(!queue.is_empty());

        let consumed = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let queue = queue.clone();
            let consumed = Arc::clone(&consumed);
            handles.push(std::thread::spawn(move || {
                while let Some(item) = queue.pop() {
                    consumed.lock().push(item.file_id.as_u32());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = consumed.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert!(queue.is_empty());

        let empty = WorkQueue::empty();
        assert!(empty.pop().is_none());
        empty.push(WorkItem { file_id: FileId(42), path: VPath::new("x"), size: 1 });
        assert_eq!(empty.pop().unwrap().file_id, FileId(42));
    }

    #[test]
    fn dropped_lease_returns_the_item_to_the_front() {
        let queue = WorkQueue::new(items(&[1, 2]));
        {
            let lease = queue.lease().unwrap();
            assert_eq!(lease.item().file_id, FileId(0));
            assert_eq!(queue.len(), 1);
            // Dropped without ack — e.g. a panic unwound through the holder.
        }
        assert_eq!(queue.reclaims(), 1);
        assert_eq!(queue.len(), 2, "the item is back");
        let lease = queue.lease().unwrap();
        assert_eq!(lease.item().file_id, FileId(0), "reclaimed item keeps its place at the front");
        lease.ack();
        assert_eq!(queue.lease().unwrap().item().file_id, FileId(1));
    }

    #[test]
    fn acked_lease_consumes_the_item() {
        let queue = WorkQueue::new(items(&[1]));
        queue.lease().unwrap().ack();
        assert!(queue.is_empty());
        assert!(queue.lease().is_none());
        assert_eq!(queue.reclaims(), 0);
        assert!(queue.poisoned().is_empty());
    }

    #[test]
    fn repeatedly_reclaimed_item_is_poisoned_not_looped() {
        let queue = WorkQueue::new(items(&[7]));
        for _ in 0..MAX_LEASE_ATTEMPTS {
            let lease = queue.lease().expect("item still leasable");
            drop(lease);
        }
        assert!(queue.lease().is_none(), "poisoned item is not handed out again");
        assert_eq!(queue.reclaims(), u64::from(MAX_LEASE_ATTEMPTS));
        let poisoned = queue.poisoned();
        assert_eq!(poisoned.len(), 1);
        assert_eq!(poisoned[0].file_id, FileId(0));
    }

    #[test]
    fn panicking_lease_holder_does_not_lose_the_item() {
        let queue = WorkQueue::new(items(&[1, 2, 3]));
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let mut first = true;
        // One consumer panics on the first item; the catch_unwind drops the
        // lease, which reclaims it — draining afterwards still sees all 3.
        while let Some(lease) = queue.lease() {
            let panics = first && lease.item().file_id == FileId(0);
            first = false;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                assert!(!panics, "scripted panic");
                lease.item().file_id.as_u32()
            }));
            match result {
                Ok(id) => {
                    consumed.lock().push(id);
                    lease.ack();
                }
                Err(_) => drop(lease),
            }
        }
        let mut seen = consumed.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(queue.reclaims(), 1);
    }

    proptest! {
        /// Every static strategy produces a partition: no item lost, none
        /// duplicated, exactly `workers` parts.
        #[test]
        fn partition_is_lossless(
            sizes in proptest::collection::vec(0u64..100_000, 0..200),
            workers in 1usize..9,
            strategy_idx in 0usize..DistributionStrategy::ALL.len(),
        ) {
            let strategy = DistributionStrategy::ALL[strategy_idx];
            let input = items(&sizes);
            let parts = partition(input.clone(), workers, strategy);
            prop_assert_eq!(parts.len(), workers);
            let mut recovered: Vec<u32> = parts
                .iter()
                .flat_map(|p| p.iter().map(|w| w.file_id.as_u32()))
                .collect();
            recovered.sort_unstable();
            let expected: Vec<u32> = (0..sizes.len() as u32).collect();
            prop_assert_eq!(recovered, expected);
        }

        /// Size-balanced imbalance is never worse than chunked imbalance by
        /// more than a rounding margin on any workload.
        #[test]
        fn size_balanced_is_reasonably_balanced(
            sizes in proptest::collection::vec(1u64..1_000_000, 1..120),
            workers in 1usize..8,
        ) {
            let sb = partition(items(&sizes), workers, DistributionStrategy::SizeBalanced);
            let (max, _, _) = balance_metrics(&sb);
            let total: u64 = sizes.iter().sum();
            let largest = *sizes.iter().max().unwrap();
            // LPT guarantee: max load ≤ mean + largest item.
            let bound = (total as f64 / workers as f64) + largest as f64 + 1.0;
            prop_assert!(max as f64 <= bound, "max {max} > bound {bound}");
        }
    }
}
