//! Pipeline error type.

use dsearch_persist::PersistError;
use dsearch_vfs::VfsError;

/// Errors produced while generating an index.
#[derive(Debug)]
pub enum PipelineError {
    /// The configuration tuple is invalid for the chosen implementation.
    InvalidConfiguration(String),
    /// Stage 1 failed to traverse the directory tree.
    Walk(VfsError),
    /// A file listed in Stage 1 could not be read in Stage 2.
    Read {
        /// The file that failed.
        path: String,
        /// The underlying error.
        source: VfsError,
    },
    /// A worker thread panicked.
    WorkerPanicked(&'static str),
    /// The checkpointed build could not persist a segment, checkpoint or
    /// dead-letter queue.
    Persist(PersistError),
    /// A resume or DLQ replay was refused (no checkpoint, or the corpus
    /// changed since it was written).
    ResumeRejected(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
            PipelineError::Walk(e) => write!(f, "filename generation failed: {e}"),
            PipelineError::Read { path, source } => write!(f, "failed to read {path}: {source}"),
            PipelineError::WorkerPanicked(stage) => write!(f, "a {stage} worker thread panicked"),
            PipelineError::Persist(e) => write!(f, "build persistence failed: {e}"),
            PipelineError::ResumeRejected(msg) => write!(f, "resume rejected: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Walk(e) => Some(e),
            PipelineError::Read { source, .. } => Some(source),
            PipelineError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VfsError> for PipelineError {
    fn from(e: VfsError) -> Self {
        PipelineError::Walk(e)
    }
}

impl From<PersistError> for PipelineError {
    fn from(e: PersistError) -> Self {
        PipelineError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_vfs::VPath;

    #[test]
    fn display_and_source() {
        let e = PipelineError::InvalidConfiguration("x must be positive".into());
        assert!(e.to_string().contains("x must be positive"));
        assert!(std::error::Error::source(&e).is_none());

        let e: PipelineError = VfsError::NotFound(VPath::new("missing")).into();
        assert!(e.to_string().contains("missing"));
        assert!(std::error::Error::source(&e).is_some());

        let e = PipelineError::Read {
            path: "a.txt".into(),
            source: VfsError::NotFound(VPath::new("a.txt")),
        };
        assert!(e.to_string().contains("a.txt"));
        assert!(std::error::Error::source(&e).is_some());

        let e = PipelineError::WorkerPanicked("extraction");
        assert!(e.to_string().contains("extraction"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
