//! The parallel index generator for desktop search — the primary contribution
//! of Meder & Tichy, *"Parallelizing an Index Generator for Desktop Search"*
//! (KIT technical report 2010-9).
//!
//! The generator runs in three stages:
//!
//! 1. **Filename generation** ([`stage1`]) — a single thread traverses the
//!    directory tree and produces the complete list of files (the paper
//!    measured this at 2–5 % of the runtime, so it is not parallelised).
//! 2. **Term extraction** ([`stage2`]) — *x* extractor threads read their
//!    private share of the files (round-robin distribution by default, see
//!    [`distribute`]), tokenize them and build a de-duplicated word list per
//!    file.
//! 3. **Index update** ([`stage3`]) — the word lists are inserted into the
//!    inverted index, either directly by the extractors or by *y* dedicated
//!    updater threads fed through a bounded buffer.
//!
//! Three implementations of the index-update interaction are provided, exactly
//! as compared in the paper ([`config::Implementation`]):
//!
//! | Implementation | Index organisation | Final step |
//! |---|---|---|
//! | 1 `SharedLocked`   | one shared index, locked per file insert | — |
//! | 2 `ReplicateJoin`  | one private replica per updating thread | replicas joined by *z* threads |
//! | 3 `ReplicateNoJoin`| one private replica per updating thread | replicas kept; queries search them all |
//!
//! [`runner::IndexGenerator`] orchestrates a run for any `(x, y, z)`
//! configuration and returns a [`report::RunReport`] with per-stage timings —
//! the quantities the paper's Tables 1–4 are built from.
//!
//! # Example
//!
//! ```
//! use dsearch_core::config::{Configuration, Implementation};
//! use dsearch_core::runner::IndexGenerator;
//! use dsearch_corpus::{materialize_to_memfs, CorpusSpec};
//! use dsearch_vfs::VPath;
//!
//! let (fs, _) = materialize_to_memfs(&CorpusSpec::tiny(), 7);
//! let generator = IndexGenerator::default();
//! let run = generator
//!     .run(&fs, &VPath::root(), Implementation::SharedLocked, Configuration::new(2, 0, 0))
//!     .unwrap();
//! assert!(run.outcome.file_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod distribute;
pub mod error;
pub mod pipeline;
pub mod report;
pub mod runner;
pub mod stage1;
pub mod stage2;
pub mod stage3;
pub mod timing;

pub use config::{Configuration, FormatMode, GeneratorOptions, Implementation};
pub use error::PipelineError;
pub use pipeline::{
    corpus_fingerprint, BuildCounters, BuildOptions, BuildPipeline, BuildReport, CancelToken,
    CounterSnapshot, ReplayReport,
};
pub use report::{IndexOutcome, ParallelRun, RunReport, SequentialRun};
pub use runner::IndexGenerator;
pub use timing::{percentile, LatencySummary, StageTimings, Stopwatch};
