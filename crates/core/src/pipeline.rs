//! Checkpointed, fault-tolerant index builds.
//!
//! The paper's pipeline assumes a perfect run: every file reads cleanly, no
//! worker dies, and a 90–220 second build that crashes at second 89 starts
//! over from zero.  This module wraps the same Stage 1 → Stage 2 machinery in
//! the reliability layer a deployed index generator needs:
//!
//! * **Leased work items** ([`LeaseQueue`]) — extractors *lease* a file
//!   instead of popping it.  A lease is acknowledged on success; if the
//!   holder panics or dies, the RAII guard returns the item to the queue, so
//!   no file is ever silently dropped.
//! * **Retry with backoff** — transient read failures reschedule the item
//!   with exponential backoff and deterministic jitter (no worker ever
//!   sleeps; delayed items sit in a timer set inside the queue).  Permanent
//!   failures and items that exhaust their retry budget are quarantined in
//!   the on-disk dead-letter queue instead of failing the build.
//! * **Checkpointing** — completed files accumulate in a partial in-memory
//!   index that is sealed into an ordinary store segment at a configurable
//!   interval; the durable [`BuildCheckpoint`] is written (atomically) only
//!   *after* its segment is on disk.  A build killed at any instant resumes
//!   with `resume: true`, re-extracting only the unsealed tail.
//! * **DLQ replay** ([`BuildPipeline::replay_dlq`]) — quarantined files are
//!   re-run through the same pipeline once the underlying fault is fixed;
//!   recovered items leave the queue and join the index.
//!
//! The sealed partial segments are ordinary v2 segments, so a resumed build's
//! store answers queries exactly like a batch build's — the equivalence the
//! resume proptest in `tests/pipeline_resume.rs` pins down.

use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use dsearch_formats::FormatRegistry;
use dsearch_index::DocTable;
use dsearch_index::InMemoryIndex;
use dsearch_persist::{BuildCheckpoint, DeadLetter, DeadLetterQueue, IndexStore};
use dsearch_vfs::{FileSystem, VPath, VfsError};

use crate::distribute::WorkItem;
use crate::error::PipelineError;
use crate::stage1::generate_filenames;
use crate::stage2::Extractor;

/// Options of a checkpointed build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Extractor worker threads.
    pub extractors: usize,
    /// Maximum extraction attempts per file before it is dead-lettered.
    pub max_retries: u32,
    /// Minimum interval between checkpoint writes.  [`Duration::ZERO`]
    /// checkpoints after every completed file (maximum durability, maximum
    /// overhead — the bench measures the trade-off).
    pub checkpoint_every: Duration,
    /// Resume from an existing checkpoint instead of starting fresh.
    pub resume: bool,
    /// Detect file formats and extract text before tokenising.
    pub formats: bool,
    /// Artificial per-file delay, used by tests and the CI kill–resume smoke
    /// to make a SIGKILL land mid-corpus deterministically.
    pub throttle: Duration,
    /// Base delay of the exponential retry backoff.
    pub retry_base: Duration,
    /// Upper bound on a single retry delay.
    pub retry_cap: Duration,
    /// Stop the build (as if it crashed) after this many successful
    /// extractions — the hook the interruption tests and the resumed-build
    /// bench use.  `None` runs to completion.
    pub stop_after: Option<u64>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            extractors: 4,
            max_retries: 3,
            checkpoint_every: Duration::from_secs(1),
            resume: false,
            formats: false,
            throttle: Duration::ZERO,
            retry_base: Duration::from_millis(10),
            retry_cap: Duration::from_secs(1),
            stop_after: None,
        }
    }
}

/// Shared atomic counters of one build, exported into the run report and the
/// metrics registry.
#[derive(Debug, Default)]
pub struct BuildCounters {
    /// Files extracted and sealed (or pending seal).
    pub items_ok: AtomicU64,
    /// Retries scheduled after transient failures (including caught panics).
    pub items_retried: AtomicU64,
    /// Files quarantined in the dead-letter queue.
    pub items_dead: AtomicU64,
    /// Durable checkpoint writes.
    pub checkpoint_writes: AtomicU64,
    /// Leases returned by the RAII guard after a holder died.
    pub lease_reclaims: AtomicU64,
}

impl BuildCounters {
    /// A plain-data copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            items_ok: self.items_ok.load(Ordering::Relaxed),
            items_retried: self.items_retried.load(Ordering::Relaxed),
            items_dead: self.items_dead.load(Ordering::Relaxed),
            checkpoint_writes: self.checkpoint_writes.load(Ordering::Relaxed),
            lease_reclaims: self.lease_reclaims.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`BuildCounters`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Files extracted successfully.
    pub items_ok: u64,
    /// Retries scheduled.
    pub items_retried: u64,
    /// Files dead-lettered.
    pub items_dead: u64,
    /// Checkpoints written.
    pub checkpoint_writes: u64,
    /// Leases reclaimed from dead holders.
    pub lease_reclaims: u64,
}

/// Outcome of a checkpointed build.
#[derive(Debug, Clone, Serialize)]
pub struct BuildReport {
    /// Files the Stage 1 walk discovered.
    pub files: u64,
    /// Files skipped because a checkpoint or the DLQ already covered them.
    pub skipped: u64,
    /// Bytes read by successful extractions this run.
    pub bytes: u64,
    /// Counter totals for this run.
    pub counters: CounterSnapshot,
    /// Segments live in the store after the build.
    pub segments: usize,
    /// Files quarantined in the DLQ (across all runs, as on disk).
    pub dead_letters: usize,
    /// `true` when every discovered file is extracted or dead-lettered.
    pub complete: bool,
    /// `true` when the build stopped early (`stop_after` or cancellation).
    pub interrupted: bool,
    /// Wall-clock seconds.
    pub elapsed_seconds: f64,
    /// Fingerprint of the corpus file list the build ran over.
    pub corpus_fingerprint: u64,
}

/// Outcome of a DLQ replay.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ReplayReport {
    /// Quarantined items matched against the current corpus and re-run.
    pub attempted: u64,
    /// Items that extracted successfully and left the queue.
    pub recovered: u64,
    /// Items still quarantined after the replay.
    pub still_dead: u64,
    /// Quarantined paths that no longer exist in the corpus.
    pub missing: u64,
}

/// A cooperative cancellation handle for a running build.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates an un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; workers stop after their current file.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`Self::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// FNV-1a fingerprint of a corpus file list (paths and sizes, in walk
/// order).  Stage 1 walks deterministically, so equal corpora produce equal
/// fingerprints and stable file ids — the invariant resume depends on.
#[must_use]
pub fn corpus_fingerprint(items: &[WorkItem]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mix = |byte: u8, hash: &mut u64| {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(PRIME);
    };
    for item in items {
        for &b in item.path.as_str().as_bytes() {
            mix(b, &mut hash);
        }
        mix(0xff, &mut hash);
        for b in item.size.to_le_bytes() {
            mix(b, &mut hash);
        }
    }
    hash
}

/// Exponential backoff with deterministic jitter: attempt *n* waits
/// `base * 2^(n-1)` capped at `cap`, jittered into the upper half of that
/// window by an xorshift hash of `(file_id, attempts)` — deterministic for
/// tests, de-synchronised across items.
#[must_use]
pub fn backoff_delay(base: Duration, cap: Duration, attempts: u32, file_id: u32) -> Duration {
    let base_ns = u64::try_from(base.as_nanos()).unwrap_or(u64::MAX).max(1);
    let cap_ns = u64::try_from(cap.as_nanos()).unwrap_or(u64::MAX).max(1);
    let shift = attempts.saturating_sub(1).min(20);
    let exp = base_ns.saturating_mul(1u64 << shift).min(cap_ns);
    let mut x = (u64::from(file_id) << 32) ^ u64::from(attempts) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let half = exp / 2;
    Duration::from_nanos(half + x % (exp - half + 1))
}

type Attempt = (WorkItem, u32);

#[derive(Debug, Default)]
struct QueueInner {
    ready: VecDeque<Attempt>,
    delayed: Vec<(Instant, Attempt)>,
    leased: usize,
    closed: bool,
    /// Items whose lease holder died too many times; drained into the DLQ.
    fallen: Vec<Attempt>,
    reclaims: u64,
}

/// The pipeline's lease/retry queue.
///
/// Ready items are leased FIFO; retried items wait in a timer set until
/// their backoff expires (workers never sleep on a retry).  The queue drains
/// when ready, delayed and leased are all empty, and closes early on
/// cancellation or a fatal error.
#[derive(Debug)]
pub struct LeaseQueue {
    inner: StdMutex<QueueInner>,
    available: Condvar,
    max_attempts: u32,
}

impl LeaseQueue {
    /// Creates a queue over `items` with the given retry budget.
    #[must_use]
    pub fn new(items: Vec<WorkItem>, max_attempts: u32) -> Arc<Self> {
        let inner = QueueInner {
            ready: items.into_iter().map(|i| (i, 0)).collect(),
            ..QueueInner::default()
        };
        Arc::new(LeaseQueue {
            inner: StdMutex::new(inner),
            available: Condvar::new(),
            max_attempts: max_attempts.max(1),
        })
    }

    /// Locks the queue state, recovering from a poisoned mutex — a worker
    /// that died mid-operation must not wedge the survivors.
    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until an item is available, the queue drains, or it is closed.
    pub fn pop(self: &Arc<Self>) -> Option<PipelineLease> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            // Promote delayed items whose backoff has expired.
            let mut i = 0;
            while i < inner.delayed.len() {
                if inner.delayed[i].0 <= now {
                    let (_, item) = inner.delayed.swap_remove(i);
                    inner.ready.push_back(item);
                } else {
                    i += 1;
                }
            }
            if let Some(slot) = inner.ready.pop_front() {
                inner.leased += 1;
                return Some(PipelineLease { queue: Arc::clone(self), slot: Some(slot) });
            }
            if inner.delayed.is_empty() && inner.leased == 0 {
                return None;
            }
            if let Some(earliest) = inner.delayed.iter().map(|(at, _)| *at).min() {
                let wait = earliest.saturating_duration_since(now);
                inner = self
                    .available
                    .wait_timeout(inner, wait)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            } else {
                inner = self.available.wait(inner).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Closes the queue: blocked and future pops return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// `true` once the queue has been closed (early stop, cancel or error).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Leases reclaimed from dead holders so far.
    #[must_use]
    pub fn reclaims(&self) -> u64 {
        self.lock().reclaims
    }

    /// Drains the items whose holders died more than `max_attempts` times.
    fn take_fallen(&self) -> Vec<Attempt> {
        std::mem::take(&mut self.lock().fallen)
    }

    fn finish_lease(&self) {
        let mut inner = self.lock();
        inner.leased -= 1;
        drop(inner);
        self.available.notify_all();
    }

    fn schedule_retry(&self, item: WorkItem, attempts: u32, not_before: Instant) {
        let mut inner = self.lock();
        inner.leased -= 1;
        inner.delayed.push((not_before, (item, attempts)));
        drop(inner);
        self.available.notify_all();
    }

    fn release(&self, slot: Attempt) {
        let mut inner = self.lock();
        inner.leased -= 1;
        inner.ready.push_front(slot);
        drop(inner);
        self.available.notify_all();
    }

    fn reclaim(&self, item: WorkItem, attempts: u32) {
        let mut inner = self.lock();
        inner.leased -= 1;
        inner.reclaims += 1;
        if attempts + 1 >= self.max_attempts {
            inner.fallen.push((item, attempts + 1));
        } else {
            inner.ready.push_front((item, attempts + 1));
        }
        drop(inner);
        self.available.notify_all();
    }
}

/// RAII lease on one work item.  Dropping the lease without acknowledging it
/// (a panic, a dead worker) returns the item to the queue with one more
/// failed attempt on its record.
#[derive(Debug)]
pub struct PipelineLease {
    queue: Arc<LeaseQueue>,
    slot: Option<Attempt>,
}

impl PipelineLease {
    /// The leased work item.
    #[must_use]
    pub fn item(&self) -> &WorkItem {
        &self.slot.as_ref().expect("lease not yet resolved").0
    }

    /// Failed attempts already on this item's record.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.slot.as_ref().expect("lease not yet resolved").1
    }

    /// Acknowledges the item as done (or dead-lettered); it will not be
    /// handed out again.
    pub fn ack(mut self) -> WorkItem {
        let (item, _) = self.slot.take().expect("lease not yet resolved");
        self.queue.finish_lease();
        item
    }

    /// Reschedules the item after a transient failure; it becomes leasable
    /// again at `not_before`.
    pub fn retry_at(mut self, not_before: Instant) {
        let (item, attempts) = self.slot.take().expect("lease not yet resolved");
        self.queue.schedule_retry(item, attempts + 1, not_before);
    }

    /// Returns the item untouched (no attempt recorded) — used when a worker
    /// observes cancellation after leasing.
    pub fn release(mut self) {
        let slot = self.slot.take().expect("lease not yet resolved");
        self.queue.release(slot);
    }
}

impl Drop for PipelineLease {
    fn drop(&mut self) {
        if let Some((item, attempts)) = self.slot.take() {
            self.queue.reclaim(item, attempts);
        }
    }
}

/// Everything the workers write to: the partial index, the store, the
/// durable checkpoint and the DLQ, behind one lock.
struct SinkState {
    pending: InMemoryIndex,
    pending_ids: Vec<u32>,
    store: IndexStore,
    checkpoint: BuildCheckpoint,
    dlq: DeadLetterQueue,
    last_seal: Instant,
    ok_total: u64,
    bytes: u64,
}

struct Sink {
    state: parking_lot::Mutex<SinkState>,
    docs: DocTable,
    counters: Arc<BuildCounters>,
    checkpoint_every: Duration,
    stop_after: Option<u64>,
}

impl Sink {
    /// Records one successful extraction; seals a segment and checkpoints
    /// when the interval is due, and closes the queue at `stop_after`.
    fn complete(
        &self,
        item: &WorkItem,
        terms: crate::stage2::FileTerms,
        queue: &LeaseQueue,
    ) -> Result<(), PipelineError> {
        let mut s = self.state.lock();
        if terms.counts.is_empty() {
            s.pending.insert_file(terms.file_id, terms.terms);
        } else {
            s.pending.insert_file_counted(terms.file_id, terms.terms.into_iter().zip(terms.counts));
        }
        s.pending_ids.push(terms.file_id.as_u32());
        s.bytes += terms.bytes;
        s.ok_total += 1;
        self.counters.items_ok.fetch_add(1, Ordering::Relaxed);
        // A replayed item that recovers leaves the quarantine.
        let path = item.path.as_str();
        if s.dlq.contains(path) {
            s.dlq.entries.retain(|e| e.path != path);
            let root = s.store.root().to_path_buf();
            s.dlq.save(&root)?;
        }
        if self.checkpoint_every.is_zero() || s.last_seal.elapsed() >= self.checkpoint_every {
            self.seal_locked(&mut s)?;
        }
        if self.stop_after.is_some_and(|n| s.ok_total >= n) {
            queue.close();
        }
        Ok(())
    }

    /// Quarantines an item with its final error.
    fn dead(&self, item: &WorkItem, attempts: u32, error: String) -> Result<(), PipelineError> {
        self.counters.items_dead.fetch_add(1, Ordering::Relaxed);
        let mut s = self.state.lock();
        let path = item.path.as_str().to_owned();
        let file_id = item.file_id.as_u32();
        if let Some(existing) = s.dlq.entries.iter_mut().find(|e| e.path == path) {
            existing.attempts = existing.attempts.max(attempts);
            existing.error = error;
            existing.file_id = file_id;
        } else {
            s.dlq.entries.push(DeadLetter { path, file_id, attempts, error });
        }
        let root = s.store.root().to_path_buf();
        s.dlq.save(&root)?;
        Ok(())
    }

    /// Seals the pending partial index into a segment, then durably extends
    /// the checkpoint.  Ordering matters: the checkpoint is written only
    /// after its segment exists, so a crash between the two leaves an orphan
    /// segment that `reconcile` drops on resume — never a checkpoint that
    /// promises missing data.
    fn seal_locked(&self, s: &mut SinkState) -> Result<(), PipelineError> {
        if s.pending_ids.is_empty() {
            s.last_seal = Instant::now();
            return Ok(());
        }
        let index = std::mem::replace(&mut s.pending, InMemoryIndex::new());
        let ids = std::mem::take(&mut s.pending_ids);
        let (name, _info) = s.store.commit_named(&index, &self.docs)?;
        s.checkpoint.segments.push(name);
        s.checkpoint.completed.extend(ids);
        let root = s.store.root().to_path_buf();
        s.checkpoint.save(&root)?;
        self.counters.checkpoint_writes.fetch_add(1, Ordering::Relaxed);
        s.last_seal = Instant::now();
        Ok(())
    }
}

/// The checkpointed build pipeline.
#[derive(Debug, Clone)]
pub struct BuildPipeline {
    options: BuildOptions,
    cancel: CancelToken,
}

impl Default for BuildPipeline {
    fn default() -> Self {
        BuildPipeline::new(BuildOptions::default())
    }
}

impl BuildPipeline {
    /// Creates a pipeline with the given options.
    #[must_use]
    pub fn new(options: BuildOptions) -> Self {
        BuildPipeline { options, cancel: CancelToken::new() }
    }

    /// The pipeline's options.
    #[must_use]
    pub fn options(&self) -> &BuildOptions {
        &self.options
    }

    /// A handle that cancels a build running on another thread.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    fn extractor(&self) -> Extractor {
        if self.options.formats {
            Extractor::default().with_formats(FormatRegistry::with_builtins())
        } else {
            Extractor::default()
        }
    }

    /// Runs a checkpointed build of the tree under `root` into the store at
    /// `store_root`.
    ///
    /// A fresh build (the default) takes ownership of the store: previous
    /// segments, checkpoint and DLQ are cleared.  With
    /// [`BuildOptions::resume`] the build loads the existing checkpoint,
    /// refuses a changed corpus, reconciles orphan segments, and extracts
    /// only the files not yet sealed or quarantined.
    ///
    /// # Errors
    ///
    /// Fails on Stage 1 walk errors, persistence failures, or a rejected
    /// resume.  Per-file extraction failures do *not* fail the build — they
    /// retry and then dead-letter.
    pub fn build<F>(
        &self,
        fs: &F,
        root: &VPath,
        store_root: &Path,
    ) -> Result<BuildReport, PipelineError>
    where
        F: FileSystem + ?Sized,
    {
        let set = generate_filenames(fs, root)?;
        let fingerprint = corpus_fingerprint(&set.items);
        let mut store = IndexStore::open(store_root)?;
        let files = set.items.len() as u64;

        let (checkpoint, dlq, items, skipped) = if self.options.resume {
            match BuildCheckpoint::load(store.root())? {
                Some(mut existing) => {
                    if existing.corpus_fingerprint != fingerprint {
                        return Err(PipelineError::ResumeRejected(format!(
                            "corpus changed since the checkpoint was written \
                             (fingerprint {:#018x} != {fingerprint:#018x}); \
                             run a fresh build",
                            existing.corpus_fingerprint
                        )));
                    }
                    existing.reconcile(&mut store)?;
                    let dlq = DeadLetterQueue::load(store.root())?;
                    let done: HashSet<u32> = existing.completed.iter().copied().collect();
                    let total = set.items.len();
                    let items: Vec<WorkItem> = set
                        .items
                        .into_iter()
                        .filter(|i| {
                            !done.contains(&i.file_id.as_u32()) && !dlq.contains(i.path.as_str())
                        })
                        .collect();
                    let skipped = (total - items.len()) as u64;
                    existing.complete = false;
                    (existing, dlq, items, skipped)
                }
                // Resuming with no checkpoint on disk is a fresh build.
                None => self.fresh_state(&mut store, fingerprint, set.items)?,
            }
        } else {
            self.fresh_state(&mut store, fingerprint, set.items)?
        };

        self.run_items(fs, items, set.docs, store, checkpoint, dlq, files, skipped)
    }

    /// Re-runs the quarantined items of the store's DLQ through the
    /// pipeline.  Recovered items are sealed into a new segment, added to
    /// the checkpoint and removed from the queue; items that fail again stay
    /// quarantined with their latest error.
    ///
    /// # Errors
    ///
    /// Fails when the store has no checkpoint, the corpus changed since the
    /// checkpoint was written, or persistence fails.
    pub fn replay_dlq<F>(
        &self,
        fs: &F,
        root: &VPath,
        store_root: &Path,
    ) -> Result<ReplayReport, PipelineError>
    where
        F: FileSystem + ?Sized,
    {
        let set = generate_filenames(fs, root)?;
        let fingerprint = corpus_fingerprint(&set.items);
        let mut store = IndexStore::open(store_root)?;
        let Some(checkpoint) = BuildCheckpoint::load(store.root())? else {
            return Err(PipelineError::ResumeRejected(
                "no checkpoint in the store; run `dsearch build` first".to_owned(),
            ));
        };
        if checkpoint.corpus_fingerprint != fingerprint {
            return Err(PipelineError::ResumeRejected(
                "corpus changed since the checkpoint was written; run a fresh build".to_owned(),
            ));
        }
        checkpoint.reconcile(&mut store)?;
        let dlq = DeadLetterQueue::load(store.root())?;
        if dlq.is_empty() {
            return Ok(ReplayReport::default());
        }
        let quarantined = dlq.len() as u64;
        let items: Vec<WorkItem> =
            set.items.iter().filter(|i| dlq.contains(i.path.as_str())).cloned().collect();
        let missing = quarantined - items.len() as u64;
        let attempted = items.len() as u64;
        let files = attempted;

        let report = self.run_items(fs, items, set.docs, store, checkpoint, dlq, files, 0)?;
        Ok(ReplayReport {
            attempted,
            recovered: report.counters.items_ok,
            still_dead: report.dead_letters as u64,
            missing,
        })
    }

    /// Resets the store for a build that starts from scratch.
    fn fresh_state(
        &self,
        store: &mut IndexStore,
        fingerprint: u64,
        items: Vec<WorkItem>,
    ) -> Result<(BuildCheckpoint, DeadLetterQueue, Vec<WorkItem>, u64), PipelineError> {
        BuildCheckpoint::remove(store.root())?;
        store.clear_segments()?;
        let dlq = DeadLetterQueue::default();
        dlq.save(store.root())?;
        Ok((BuildCheckpoint::new(fingerprint), dlq, items, 0))
    }

    /// The worker pool over a prepared item list and sink state — shared by
    /// `build` and `replay_dlq`.
    #[allow(clippy::too_many_arguments)]
    fn run_items<F>(
        &self,
        fs: &F,
        items: Vec<WorkItem>,
        docs: DocTable,
        store: IndexStore,
        checkpoint: BuildCheckpoint,
        dlq: DeadLetterQueue,
        files: u64,
        skipped: u64,
    ) -> Result<BuildReport, PipelineError>
    where
        F: FileSystem + ?Sized,
    {
        if self.options.extractors == 0 {
            return Err(PipelineError::InvalidConfiguration(
                "a build needs at least one extractor".to_owned(),
            ));
        }
        let started = Instant::now();
        let counters = Arc::new(BuildCounters::default());
        let queue = LeaseQueue::new(items, self.options.max_retries);
        let sink = Sink {
            state: parking_lot::Mutex::new(SinkState {
                pending: InMemoryIndex::new(),
                pending_ids: Vec::new(),
                store,
                checkpoint,
                dlq,
                last_seal: Instant::now(),
                ok_total: 0,
                bytes: 0,
            }),
            docs,
            counters: Arc::clone(&counters),
            checkpoint_every: self.options.checkpoint_every,
            stop_after: self.options.stop_after,
        };
        let extractor = self.extractor();
        let first_error: StdMutex<Option<PipelineError>> = StdMutex::new(None);
        let fail = |e: PipelineError| {
            let mut slot = first_error.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(e);
            }
            queue.close();
        };

        std::thread::scope(|scope| {
            for _ in 0..self.options.extractors {
                scope.spawn(|| {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        self.worker_loop(fs, &extractor, &queue, &sink, &fail);
                    }));
                    if run.is_err() {
                        fail(PipelineError::WorkerPanicked("build"));
                    }
                });
            }
        });

        // Items whose lease holders died repeatedly never reached the normal
        // retry path; quarantine them now.
        for (item, attempts) in queue.take_fallen() {
            sink.dead(&item, attempts, "lease holder died during extraction".to_owned())?;
        }
        counters.lease_reclaims.store(queue.reclaims(), Ordering::Relaxed);

        if let Some(e) = first_error.lock().unwrap_or_else(PoisonError::into_inner).take() {
            return Err(e);
        }

        let interrupted = self.cancel.is_cancelled()
            || self.options.stop_after.is_some_and(|_| queue.is_closed());
        let mut s = sink.state.lock();
        if !interrupted {
            // Seal the tail and mark the build done.  An interrupted build
            // deliberately skips this: it must look exactly like a crash so
            // resume paths get exercised honestly.
            sink.seal_locked(&mut s)?;
            s.checkpoint.complete = true;
            let root = s.store.root().to_path_buf();
            s.checkpoint.save(&root)?;
        }
        Ok(BuildReport {
            files,
            skipped,
            bytes: s.bytes,
            counters: counters.snapshot(),
            segments: s.store.segment_count(),
            dead_letters: s.dlq.len(),
            complete: !interrupted,
            interrupted,
            elapsed_seconds: started.elapsed().as_secs_f64(),
            corpus_fingerprint: s.checkpoint.corpus_fingerprint,
        })
    }

    fn worker_loop<F>(
        &self,
        fs: &F,
        extractor: &Extractor,
        queue: &Arc<LeaseQueue>,
        sink: &Sink,
        fail: &dyn Fn(PipelineError),
    ) where
        F: FileSystem + ?Sized,
    {
        while let Some(lease) = queue.pop() {
            if self.cancel.is_cancelled() {
                queue.close();
                lease.release();
                return;
            }
            if !self.options.throttle.is_zero() {
                std::thread::sleep(self.options.throttle);
            }
            let outcome =
                catch_unwind(AssertUnwindSafe(|| extractor.extract_file(fs, lease.item())));
            match outcome {
                Ok(Ok(terms)) => {
                    let item = lease.ack();
                    if let Err(e) = sink.complete(&item, terms, queue) {
                        fail(e);
                        return;
                    }
                }
                Ok(Err(err)) => {
                    let permanent = is_permanent(&err);
                    if let Err(e) = self.handle_failure(lease, sink, permanent, err.to_string()) {
                        fail(e);
                        return;
                    }
                }
                Err(_) => {
                    let msg = format!("extraction panicked on {}", lease.item().path);
                    if let Err(e) = self.handle_failure(lease, sink, false, msg) {
                        fail(e);
                        return;
                    }
                }
            }
        }
    }

    /// Routes one failed attempt: retry with backoff while the budget and
    /// the error's nature allow, dead-letter otherwise.
    fn handle_failure(
        &self,
        lease: PipelineLease,
        sink: &Sink,
        permanent: bool,
        error: String,
    ) -> Result<(), PipelineError> {
        let attempts = lease.attempts() + 1;
        if permanent || attempts >= self.options.max_retries.max(1) {
            let item = lease.ack();
            sink.dead(&item, attempts, error)
        } else {
            sink.counters.items_retried.fetch_add(1, Ordering::Relaxed);
            let delay = backoff_delay(
                self.options.retry_base,
                self.options.retry_cap,
                attempts,
                lease.item().file_id.as_u32(),
            );
            lease.retry_at(Instant::now() + delay);
            Ok(())
        }
    }
}

/// Whether an extraction error can never succeed on retry.
fn is_permanent(error: &PipelineError) -> bool {
    match error {
        PipelineError::Read { source, .. } => matches!(
            source,
            VfsError::NotFound(_) | VfsError::NotAFile(_) | VfsError::NotADirectory(_)
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_vfs::{FlakyFs, MemFs};
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let mut path = std::env::temp_dir();
            let unique = format!(
                "dsearch-pipeline-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            );
            path.push(unique.replace(['(', ')', ' '], ""));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn corpus() -> MemFs {
        let fs = MemFs::new();
        fs.add_file(&VPath::new("d1/a.txt"), b"alpha beta alpha".to_vec()).unwrap();
        fs.add_file(&VPath::new("d1/b.txt"), b"beta gamma".to_vec()).unwrap();
        fs.add_file(&VPath::new("d2/c.txt"), b"gamma delta epsilon".to_vec()).unwrap();
        fs.add_file(&VPath::new("top.txt"), b"alpha".to_vec()).unwrap();
        fs
    }

    fn fast_options() -> BuildOptions {
        BuildOptions {
            extractors: 2,
            retry_base: Duration::from_micros(100),
            retry_cap: Duration::from_millis(2),
            checkpoint_every: Duration::ZERO,
            ..BuildOptions::default()
        }
    }

    #[test]
    fn fingerprint_tracks_paths_and_sizes() {
        let a = vec![WorkItem {
            file_id: dsearch_index::FileId(0),
            path: VPath::new("a.txt"),
            size: 5,
        }];
        let mut b = a.clone();
        assert_eq!(corpus_fingerprint(&a), corpus_fingerprint(&b));
        b[0].size = 6;
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&b));
        b[0].size = 5;
        b[0].path = VPath::new("b.txt");
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&b));
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&[]));
    }

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let d1 = backoff_delay(base, cap, 1, 42);
        assert_eq!(d1, backoff_delay(base, cap, 1, 42), "deterministic");
        assert!(d1 >= base / 2 && d1 <= base, "{d1:?} within the first window");
        let d9 = backoff_delay(base, cap, 9, 42);
        assert!(d9 <= cap, "{d9:?} capped");
        assert!(d9 >= cap / 2, "{d9:?} saturates near the cap");
        assert_ne!(
            backoff_delay(base, cap, 1, 1),
            backoff_delay(base, cap, 1, 2),
            "jitter separates items"
        );
    }

    #[test]
    fn build_then_query_matches_batch_pipeline() {
        let fs = corpus();
        let dir = TempDir::new("basic");
        let report = BuildPipeline::new(fast_options()).build(&fs, &VPath::root(), &dir.0).unwrap();
        assert!(report.complete);
        assert!(!report.interrupted);
        assert_eq!(report.counters.items_ok, 4);
        assert_eq!(report.counters.items_dead, 0);
        assert_eq!(report.dead_letters, 0);
        assert!(report.segments >= 1);

        let store = IndexStore::open(&dir.0).unwrap();
        let (index, docs) = store.load_joined().unwrap();
        let batch =
            crate::runner::IndexGenerator::default().run_sequential(&fs, &VPath::root()).unwrap();
        assert_eq!(index, batch.index);
        assert_eq!(docs.len(), batch.docs.len());
        let ckpt = BuildCheckpoint::load(&dir.0).unwrap().unwrap();
        assert!(ckpt.complete);
        assert_eq!(ckpt.completed.len(), 4);
    }

    #[test]
    fn transient_failures_retry_to_success() {
        let fs = FlakyFs::new(corpus());
        fs.fail_reads("d1/a.txt", 1);
        let dir = TempDir::new("transient");
        let report = BuildPipeline::new(fast_options()).build(&fs, &VPath::root(), &dir.0).unwrap();
        assert!(report.complete);
        assert_eq!(report.counters.items_ok, 4);
        assert_eq!(report.counters.items_retried, 1);
        assert_eq!(report.counters.items_dead, 0);
        assert_eq!(fs.read_attempts("d1/a.txt"), 2);
    }

    #[test]
    fn persistent_failure_lands_in_the_dlq_with_its_error() {
        let fs = FlakyFs::new(corpus());
        fs.always_fail("d1/b.txt");
        let dir = TempDir::new("dead");
        let report = BuildPipeline::new(fast_options()).build(&fs, &VPath::root(), &dir.0).unwrap();
        assert!(report.complete, "a poison file must not fail the build");
        assert_eq!(report.counters.items_ok, 3);
        assert_eq!(report.counters.items_dead, 1);
        assert_eq!(report.dead_letters, 1);

        let dlq = DeadLetterQueue::load(&dir.0).unwrap();
        assert_eq!(dlq.len(), 1);
        assert_eq!(dlq.entries[0].path, "d1/b.txt");
        assert_eq!(dlq.entries[0].attempts, 3);
        assert!(dlq.entries[0].error.contains("injected"), "{}", dlq.entries[0].error);
    }

    #[test]
    fn replay_recovers_healed_items() {
        let fs = FlakyFs::new(corpus());
        fs.always_fail("d1/b.txt");
        let dir = TempDir::new("replay");
        let pipeline = BuildPipeline::new(fast_options());
        pipeline.build(&fs, &VPath::root(), &dir.0).unwrap();
        assert_eq!(DeadLetterQueue::load(&dir.0).unwrap().len(), 1);

        fs.heal("d1/b.txt");
        let replay = pipeline.replay_dlq(&fs, &VPath::root(), &dir.0).unwrap();
        assert_eq!(replay.attempted, 1);
        assert_eq!(replay.recovered, 1);
        assert_eq!(replay.still_dead, 0);
        assert_eq!(replay.missing, 0);
        assert!(DeadLetterQueue::load(&dir.0).unwrap().is_empty());

        let store = IndexStore::open(&dir.0).unwrap();
        let (index, _) = store.load_joined().unwrap();
        let batch =
            crate::runner::IndexGenerator::default().run_sequential(&fs, &VPath::root()).unwrap();
        assert_eq!(index, batch.index, "replayed store matches a clean batch build");

        // Replaying an empty queue is a no-op.
        let replay = pipeline.replay_dlq(&fs, &VPath::root(), &dir.0).unwrap();
        assert_eq!(replay.attempted, 0);
    }

    #[test]
    fn interrupted_build_resumes_without_rework() {
        let fs = corpus();
        let dir = TempDir::new("resume");
        let mut options = fast_options();
        options.stop_after = Some(2);
        let report = BuildPipeline::new(options).build(&fs, &VPath::root(), &dir.0).unwrap();
        assert!(report.interrupted);
        assert!(!report.complete);
        let done_first = report.counters.items_ok;
        assert!(done_first >= 2, "stopped after at least two items");

        let mut options = fast_options();
        options.resume = true;
        let report = BuildPipeline::new(options).build(&fs, &VPath::root(), &dir.0).unwrap();
        assert!(report.complete);
        let ckpt = BuildCheckpoint::load(&dir.0).unwrap().unwrap();
        assert!(ckpt.complete);
        assert_eq!(ckpt.completed.len(), 4);
        // Checkpointed items were genuinely skipped, not re-extracted.
        assert_eq!(report.skipped + report.counters.items_ok, 4);
        assert!(report.skipped >= 2);

        let store = IndexStore::open(&dir.0).unwrap();
        let (index, _) = store.load_joined().unwrap();
        let batch =
            crate::runner::IndexGenerator::default().run_sequential(&fs, &VPath::root()).unwrap();
        assert_eq!(index, batch.index, "resumed store equals a batch build");
    }

    #[test]
    fn resume_refuses_a_changed_corpus() {
        let fs = corpus();
        let dir = TempDir::new("changed");
        let mut options = fast_options();
        options.stop_after = Some(1);
        BuildPipeline::new(options).build(&fs, &VPath::root(), &dir.0).unwrap();

        fs.add_file(&VPath::new("new.txt"), b"zeta".to_vec()).unwrap();
        let mut options = fast_options();
        options.resume = true;
        let err = BuildPipeline::new(options).build(&fs, &VPath::root(), &dir.0).unwrap_err();
        assert!(matches!(err, PipelineError::ResumeRejected(_)), "{err}");
        assert!(err.to_string().contains("corpus changed"));
    }

    #[test]
    fn cancel_token_stops_the_build_like_a_crash() {
        let fs = corpus();
        let dir = TempDir::new("cancel");
        let mut options = fast_options();
        options.extractors = 1;
        let pipeline = BuildPipeline::new(options);
        pipeline.cancel_token().cancel();
        let report = pipeline.build(&fs, &VPath::root(), &dir.0).unwrap();
        assert!(report.interrupted);
        assert_eq!(report.counters.items_ok, 0);
        assert!(BuildCheckpoint::load(&dir.0).unwrap().is_none(), "no checkpoint written");
    }

    #[test]
    fn panicking_read_retries_like_a_transient_failure() {
        let fs = FlakyFs::new(corpus());
        fs.panic_reads("top.txt", 1);
        let dir = TempDir::new("panic");
        let report = BuildPipeline::new(fast_options()).build(&fs, &VPath::root(), &dir.0).unwrap();
        assert!(report.complete);
        assert_eq!(report.counters.items_ok, 4);
        assert_eq!(report.counters.items_retried, 1);
        assert_eq!(report.counters.items_dead, 0);
    }

    #[test]
    fn zero_extractors_is_rejected() {
        let fs = corpus();
        let dir = TempDir::new("zero");
        let mut options = fast_options();
        options.extractors = 0;
        let err = BuildPipeline::new(options).build(&fs, &VPath::root(), &dir.0).unwrap_err();
        assert!(matches!(err, PipelineError::InvalidConfiguration(_)));
    }
}
