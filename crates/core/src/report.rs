//! Run results and reports.
//!
//! A sequential run produces [`SequentialRun`] with the four per-stage times
//! of the paper's Table 1; a parallel run produces [`ParallelRun`] whose
//! timings, configuration and implementation are the raw material of
//! Tables 2–4.  [`RunReport`] is the serialisable summary (no index payload)
//! used by the benchmark harness and EXPERIMENTS.md generation.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use dsearch_index::{DocTable, InMemoryIndex, IndexSet, IndexStats, PostingList};
use dsearch_text::Term;

use crate::config::{Configuration, Implementation};
use crate::stage1::Stage1Stats;
use crate::stage2::Stage2Stats;
use crate::timing::StageTimings;

/// Timings of the sequential baseline, matching Table 1's columns.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequentialTimings {
    /// Filename generation (Stage 1).
    pub filename_generation: Duration,
    /// Reading every file without extracting terms (the "empty scanner").
    pub read_files: Duration,
    /// Reading every file and extracting terms.
    pub read_and_extract: Duration,
    /// Inserting the extracted word lists into the index.
    pub index_update: Duration,
}

impl SequentialTimings {
    /// Total time of a sequential index generation: Stage 1 + read-and-extract
    /// + index update (the read-only pass is a measurement aid, not part of a
    ///   production run).
    #[must_use]
    pub fn total(&self) -> Duration {
        self.filename_generation + self.read_and_extract + self.index_update
    }
}

/// Result of the sequential baseline run.
#[derive(Debug)]
pub struct SequentialRun {
    /// Per-stage timings (Table 1).
    pub timings: SequentialTimings,
    /// Stage 1 statistics.
    pub stage1: Stage1Stats,
    /// Stage 2 statistics (from the read-and-extract pass).
    pub stage2: Stage2Stats,
    /// The index that was built.
    pub index: InMemoryIndex,
    /// The document table.
    pub docs: DocTable,
}

impl SequentialRun {
    /// Index statistics.
    #[must_use]
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }
}

/// What a parallel run produced: one joined/shared index, or the un-joined
/// replica set of Implementation 3.
#[derive(Debug)]
pub enum IndexOutcome {
    /// A single index (Implementations 1 and 2).
    Single {
        /// The index.
        index: InMemoryIndex,
        /// The document table.
        docs: DocTable,
    },
    /// Un-joined replicas (Implementation 3).
    Replicas {
        /// The replica set.
        set: IndexSet,
        /// The document table.
        docs: DocTable,
    },
}

impl IndexOutcome {
    /// The document table of the run.
    #[must_use]
    pub fn docs(&self) -> &DocTable {
        match self {
            IndexOutcome::Single { docs, .. } | IndexOutcome::Replicas { docs, .. } => docs,
        }
    }

    /// Number of files indexed.
    #[must_use]
    pub fn file_count(&self) -> u64 {
        match self {
            IndexOutcome::Single { index, .. } => index.file_count(),
            IndexOutcome::Replicas { set, .. } => set.file_count(),
        }
    }

    /// The posting list for `term`, unified across replicas when necessary.
    #[must_use]
    pub fn postings(&self, term: &Term) -> PostingList {
        match self {
            IndexOutcome::Single { index, .. } => index.postings(term).cloned().unwrap_or_default(),
            IndexOutcome::Replicas { set, .. } => set.postings(term),
        }
    }

    /// Collapses the outcome into a single index (joining replicas if needed)
    /// plus the document table.
    #[must_use]
    pub fn into_single_index(self) -> (InMemoryIndex, DocTable) {
        match self {
            IndexOutcome::Single { index, docs } => (index, docs),
            IndexOutcome::Replicas { set, docs } => (set.join(), docs),
        }
    }

    /// Number of replicas (1 for a single index).
    #[must_use]
    pub fn replica_count(&self) -> usize {
        match self {
            IndexOutcome::Single { .. } => 1,
            IndexOutcome::Replicas { set, .. } => set.replica_count(),
        }
    }

    /// Aggregate index statistics.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        match self {
            IndexOutcome::Single { index, .. } => index.stats(),
            IndexOutcome::Replicas { set, .. } => set.stats(),
        }
    }
}

/// Result of one parallel run.
#[derive(Debug)]
pub struct ParallelRun {
    /// Which implementation ran.
    pub implementation: Implementation,
    /// The thread-allocation tuple.
    pub configuration: Configuration,
    /// Wall-clock stage timings.
    pub timings: StageTimings,
    /// Stage 1 statistics.
    pub stage1: Stage1Stats,
    /// Combined Stage 2 statistics across extractor threads.
    pub stage2: Stage2Stats,
    /// The index (or replica set) that was built.
    pub outcome: IndexOutcome,
}

impl ParallelRun {
    /// Builds the serialisable report for this run.
    #[must_use]
    pub fn report(&self) -> RunReport {
        RunReport {
            implementation: self.implementation,
            configuration: self.configuration,
            total_seconds: self.timings.total.as_secs_f64(),
            filename_generation_seconds: self.timings.filename_generation.as_secs_f64(),
            extraction_seconds: self.timings.extraction.as_secs_f64(),
            join_seconds: self.timings.join.as_secs_f64(),
            files: self.stage2.files,
            bytes: self.stage2.bytes,
            term_occurrences: self.stage2.occurrences,
            index_stats: self.outcome.stats(),
            replicas: self.outcome.replica_count(),
        }
    }
}

/// A flat, serialisable summary of a run (what the benchmark harness stores).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Which implementation ran.
    pub implementation: Implementation,
    /// The thread-allocation tuple.
    pub configuration: Configuration,
    /// End-to-end wall-clock seconds.
    pub total_seconds: f64,
    /// Stage 1 seconds.
    pub filename_generation_seconds: f64,
    /// Extraction + update seconds.
    pub extraction_seconds: f64,
    /// Join seconds (Implementation 2 only).
    pub join_seconds: f64,
    /// Files processed.
    pub files: u64,
    /// Bytes read.
    pub bytes: u64,
    /// Term occurrences scanned.
    pub term_occurrences: u64,
    /// Statistics of the resulting index.
    pub index_stats: IndexStats,
    /// Number of replica indices in the outcome.
    pub replicas: usize,
}

impl RunReport {
    /// Speed-up relative to a sequential total time.
    #[must_use]
    pub fn speedup_vs_seconds(&self, sequential_seconds: f64) -> f64 {
        if self.total_seconds == 0.0 {
            0.0
        } else {
            sequential_seconds / self.total_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_index::FileId;

    fn sample_outcome_single() -> IndexOutcome {
        let mut docs = DocTable::new();
        let a = docs.insert("a.txt");
        let b = docs.insert("b.txt");
        let mut index = InMemoryIndex::new();
        index.insert_file(a, [Term::from("x"), Term::from("y")]);
        index.insert_file(b, [Term::from("y")]);
        IndexOutcome::Single { index, docs }
    }

    fn sample_outcome_replicas() -> IndexOutcome {
        let mut docs = DocTable::new();
        let a = docs.insert("a.txt");
        let b = docs.insert("b.txt");
        let mut r0 = InMemoryIndex::new();
        r0.insert_file(a, [Term::from("x"), Term::from("y")]);
        let mut r1 = InMemoryIndex::new();
        r1.insert_file(b, [Term::from("y")]);
        IndexOutcome::Replicas { set: IndexSet::new(vec![r0, r1]), docs }
    }

    #[test]
    fn sequential_timings_total() {
        let t = SequentialTimings {
            filename_generation: Duration::from_secs(5),
            read_files: Duration::from_secs(77),
            read_and_extract: Duration::from_secs(88),
            index_update: Duration::from_secs(22),
        };
        // Total skips the read-only measurement pass: 5 + 88 + 22.
        assert_eq!(t.total(), Duration::from_secs(115));
    }

    #[test]
    fn outcome_single_accessors() {
        let outcome = sample_outcome_single();
        assert_eq!(outcome.file_count(), 2);
        assert_eq!(outcome.replica_count(), 1);
        assert_eq!(outcome.docs().len(), 2);
        assert_eq!(outcome.postings(&Term::from("y")).len(), 2);
        assert!(outcome.postings(&Term::from("zzz")).is_empty());
        let (index, docs) = outcome.into_single_index();
        assert_eq!(index.file_count(), 2);
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn outcome_replicas_accessors() {
        let outcome = sample_outcome_replicas();
        assert_eq!(outcome.file_count(), 2);
        assert_eq!(outcome.replica_count(), 2);
        assert_eq!(outcome.postings(&Term::from("y")).len(), 2);
        let stats = outcome.stats();
        assert_eq!(stats.files, 2);
        let (joined, _) = outcome.into_single_index();
        assert_eq!(joined.postings(&Term::from("y")).unwrap().doc_ids(), &[FileId(0), FileId(1)]);
    }

    #[test]
    fn report_serialises_and_computes_speedup() {
        let run = ParallelRun {
            implementation: Implementation::ReplicateNoJoin,
            configuration: Configuration::new(9, 4, 0),
            timings: StageTimings { total: Duration::from_secs_f64(25.7), ..Default::default() },
            stage1: Stage1Stats::default(),
            stage2: Stage2Stats {
                files: 51_000,
                bytes: 869_000_000,
                occurrences: 1,
                terms_emitted: 1,
            },
            outcome: sample_outcome_replicas(),
        };
        let report = run.report();
        assert_eq!(report.configuration.to_string(), "(9, 4, 0)");
        assert_eq!(report.replicas, 2);
        let speedup = report.speedup_vs_seconds(90.0);
        assert!((speedup - 3.5).abs() < 0.01, "speedup {speedup}");
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(RunReport { total_seconds: 0.0, ..report }.speedup_vs_seconds(90.0), 0.0);
    }
}
