//! The pipeline orchestrator.
//!
//! [`IndexGenerator`] wires the three stages together for any combination of
//! [`Implementation`] and [`Configuration`], using real operating-system
//! threads (scoped threads for the workers, a bounded crossbeam channel for
//! the extractor → updater buffer).  It also provides the instrumented
//! sequential baseline ([`IndexGenerator::run_sequential`]) whose per-stage
//! times are the paper's Table 1.

use crossbeam::channel::{bounded, Receiver, Sender};

use dsearch_index::{join_all, parallel_join, InMemoryIndex, IndexSet, SharedIndex};
use dsearch_text::tokenizer::Tokenizer;
use dsearch_vfs::{FileSystem, VPath};

use crate::config::{Configuration, FormatMode, GeneratorOptions, Implementation, Stage1Mode};
use crate::distribute::{
    partition, stealing_pool, DistributionStrategy, StealWorker, WorkItem, WorkQueue,
};
use crate::error::PipelineError;
use crate::report::{IndexOutcome, ParallelRun, SequentialRun, SequentialTimings};
use crate::stage1::generate_filenames;
use crate::stage2::{Extractor, FileTerms, Stage2Stats};
use crate::stage3::{ReplicaSink, SharedSink, UpdateSink};
use crate::timing::{StageTimings, Stopwatch};

/// The configurable index generator.
///
/// The default instance uses the paper's reference choices
/// ([`GeneratorOptions::paper_defaults`]): round-robin distribution, per-file
/// condensed word lists, en-bloc insertion and an up-front Stage 1.
#[derive(Debug, Clone)]
pub struct IndexGenerator {
    options: GeneratorOptions,
}

impl Default for IndexGenerator {
    fn default() -> Self {
        IndexGenerator { options: GeneratorOptions::paper_defaults() }
    }
}

/// Where an extractor thread obtains its work.
enum WorkSource {
    /// A private, statically assigned vector (no synchronisation).
    Static(Vec<WorkItem>),
    /// The shared dynamic queue (one lock operation per file).
    Queue(WorkQueue),
    /// A private deque with work stealing from the other extractors.
    Stealing(StealWorker),
    /// A channel fed by the concurrent Stage 1 producer.
    Channel(Receiver<WorkItem>),
}

impl IndexGenerator {
    /// Creates a generator with explicit options.
    #[must_use]
    pub fn new(options: GeneratorOptions) -> Self {
        IndexGenerator { options }
    }

    /// The options this generator runs with.
    #[must_use]
    pub fn options(&self) -> &GeneratorOptions {
        &self.options
    }

    fn extractor(&self) -> Extractor {
        let extractor =
            Extractor::new(Tokenizer::new(self.options.tokenizer.clone()), self.options.dedup);
        match self.options.formats {
            FormatMode::PlainTextOnly => extractor,
            FormatMode::DetectAndExtract => {
                extractor.with_formats(dsearch_formats::FormatRegistry::with_builtins())
            }
        }
    }

    /// Runs the fully sequential, instrumented baseline.
    ///
    /// Four passes are timed separately, matching Table 1 of the paper:
    /// filename generation, a read-only pass over every file (the "empty
    /// scanner"), the read-and-extract pass, and the index update.
    ///
    /// # Errors
    ///
    /// Fails when the directory tree cannot be walked or a file cannot be
    /// read.
    pub fn run_sequential<F: FileSystem + ?Sized>(
        &self,
        fs: &F,
        root: &VPath,
    ) -> Result<SequentialRun, PipelineError> {
        let extractor = self.extractor();

        let sw = Stopwatch::start();
        let set = generate_filenames(fs, root)?;
        let filename_generation = sw.elapsed();

        let sw = Stopwatch::start();
        extractor.scan_only(fs, &set.items)?;
        let read_files = sw.elapsed();

        let sw = Stopwatch::start();
        let mut collected: Vec<FileTerms> = Vec::with_capacity(set.items.len());
        let stage2 = extractor.extract_all(fs, &set.items, |ft| collected.push(ft))?;
        let read_and_extract = sw.elapsed();

        let sw = Stopwatch::start();
        let mut sink = ReplicaSink::new(self.options.granularity);
        for ft in collected {
            sink.apply(ft);
        }
        let index_update = sw.elapsed();

        Ok(SequentialRun {
            timings: SequentialTimings {
                filename_generation,
                read_files,
                read_and_extract,
                index_update,
            },
            stage1: set.stats,
            stage2,
            index: sink.into_index(),
            docs: set.docs,
        })
    }

    /// Runs the parallel generator with the given implementation and
    /// `(x, y, z)` configuration.
    ///
    /// # Errors
    ///
    /// Fails when the configuration is invalid for the implementation, the
    /// tree cannot be walked, a file cannot be read, or a worker thread
    /// panics.
    pub fn run<F: FileSystem + ?Sized>(
        &self,
        fs: &F,
        root: &VPath,
        implementation: Implementation,
        configuration: Configuration,
    ) -> Result<ParallelRun, PipelineError> {
        configuration.validate(implementation).map_err(PipelineError::InvalidConfiguration)?;

        let total_sw = Stopwatch::start();

        // ---- Stage 1: filename generation -------------------------------
        let sw = Stopwatch::start();
        let set = generate_filenames(fs, root)?;
        let filename_generation = sw.elapsed();
        let stage1_stats = set.stats;
        let docs = set.docs;
        let items = set.items;

        // ---- Stages 2+3: extraction and index update ---------------------
        let sw = Stopwatch::start();
        let x = configuration.extraction_threads;
        let y = configuration.update_threads;

        // Build the per-extractor work sources.
        let mut queue_handle: Option<WorkQueue> = None;
        let sources: Vec<WorkSource> = match (self.options.stage1, self.options.distribution) {
            (Stage1Mode::Concurrent, _) => {
                // The producer re-sends the already generated filenames one by
                // one through a rendezvous-sized channel, modelling the
                // per-filename hand-off the paper found inefficient.
                let (tx, rx) = bounded::<WorkItem>(1);
                let producer_items = items.clone();
                std::thread::spawn(move || {
                    for item in producer_items {
                        if tx.send(item).is_err() {
                            break;
                        }
                    }
                });
                (0..x).map(|_| WorkSource::Channel(rx.clone())).collect()
            }
            (Stage1Mode::UpFront, DistributionStrategy::WorkQueue) => {
                let queue = WorkQueue::new(items.clone());
                queue_handle = Some(queue.clone());
                (0..x).map(|_| WorkSource::Queue(queue.clone())).collect()
            }
            (Stage1Mode::UpFront, DistributionStrategy::WorkStealing) => {
                stealing_pool(items.clone(), x).into_iter().map(WorkSource::Stealing).collect()
            }
            (Stage1Mode::UpFront, strategy) => {
                partition(items.clone(), x, strategy).into_iter().map(WorkSource::Static).collect()
            }
        };

        let shared_index =
            if implementation.uses_shared_index() { Some(SharedIndex::new()) } else { None };

        let extractor_template = self.extractor();
        let granularity = self.options.granularity;
        let queue_capacity = self.options.queue_capacity();

        // Channel between extractors and dedicated updaters (when y > 0).
        let update_channel: Option<(Sender<FileTerms>, Receiver<FileTerms>)> =
            (y > 0).then(|| bounded(queue_capacity));

        let mut extract_results: Vec<Result<Stage2Stats, PipelineError>> = Vec::new();
        let mut replicas: Vec<InMemoryIndex> = Vec::new();
        let mut worker_panic: Option<&'static str> = None;

        std::thread::scope(|scope| {
            // Spawn updater threads (if any).
            let updater_handles: Vec<_> = match &update_channel {
                Some((_, rx)) => (0..y)
                    .map(|_| {
                        let rx = rx.clone();
                        let shared = shared_index.clone();
                        scope.spawn(move || {
                            let mut shared_sink = shared.map(|s| SharedSink::new(s, granularity));
                            let mut replica_sink = if shared_sink.is_none() {
                                Some(ReplicaSink::new(granularity))
                            } else {
                                None
                            };
                            for file_terms in rx.iter() {
                                if let Some(sink) = shared_sink.as_mut() {
                                    sink.apply(file_terms);
                                } else if let Some(sink) = replica_sink.as_mut() {
                                    sink.apply(file_terms);
                                }
                            }
                            replica_sink.map(ReplicaSink::into_index)
                        })
                    })
                    .collect(),
                None => Vec::new(),
            };

            // Spawn extractor threads.
            let extractor_handles: Vec<_> = sources
                .into_iter()
                .map(|source| {
                    let extractor = extractor_template.clone();
                    let shared = shared_index.clone();
                    let sender = update_channel.as_ref().map(|(tx, _)| tx.clone());
                    scope.spawn(
                        move || -> (Result<Stage2Stats, PipelineError>, Option<InMemoryIndex>) {
                            // When there are no dedicated updaters the extractor
                            // owns its own sink.
                            let mut shared_sink = if sender.is_none() {
                                shared.map(|s| SharedSink::new(s, granularity))
                            } else {
                                None
                            };
                            let mut replica_sink = if sender.is_none() && shared_sink.is_none() {
                                Some(ReplicaSink::new(granularity))
                            } else {
                                None
                            };

                            let mut stats = Stage2Stats::default();
                            let mut handle_file = |ft: FileTerms| {
                                stats.files += 1;
                                stats.bytes += ft.bytes;
                                stats.occurrences += ft.occurrences;
                                stats.terms_emitted += ft.terms.len() as u64;
                                if let Some(tx) = &sender {
                                    // The updaters exit when every sender is
                                    // dropped; a send error can only happen if
                                    // they already exited, which means we are
                                    // shutting down.
                                    let _ = tx.send(ft);
                                } else if let Some(sink) = shared_sink.as_mut() {
                                    sink.apply(ft);
                                } else if let Some(sink) = replica_sink.as_mut() {
                                    sink.apply(ft);
                                }
                            };

                            let result: Result<(), PipelineError> = (|| {
                                match source {
                                    WorkSource::Static(work) => {
                                        for item in &work {
                                            let ft = extractor.extract_file(fs, item)?;
                                            handle_file(ft);
                                        }
                                    }
                                    WorkSource::Queue(queue) => {
                                        // Lease/ack instead of pop: a panic
                                        // unwinding out of the extractor
                                        // reclaims the item for another
                                        // worker instead of silently
                                        // dropping the file.
                                        while let Some(lease) = queue.lease() {
                                            let extracted = std::panic::catch_unwind(
                                                std::panic::AssertUnwindSafe(|| {
                                                    extractor.extract_file(fs, lease.item())
                                                }),
                                            );
                                            match extracted {
                                                Ok(Ok(ft)) => {
                                                    handle_file(ft);
                                                    lease.ack();
                                                }
                                                Ok(Err(e)) => {
                                                    lease.ack();
                                                    return Err(e);
                                                }
                                                Err(_) => drop(lease),
                                            }
                                        }
                                    }
                                    WorkSource::Stealing(worker) => {
                                        while let Some(item) = worker.pop() {
                                            let ft = extractor.extract_file(fs, &item)?;
                                            handle_file(ft);
                                        }
                                    }
                                    WorkSource::Channel(rx) => {
                                        for item in rx.iter() {
                                            let ft = extractor.extract_file(fs, &item)?;
                                            handle_file(ft);
                                        }
                                    }
                                }
                                Ok(())
                            })(
                            );

                            let replica = replica_sink.map(ReplicaSink::into_index);
                            (result.map(|()| stats), replica)
                        },
                    )
                })
                .collect();

            // Collect extractors.
            for handle in extractor_handles {
                match handle.join() {
                    Ok((result, replica)) => {
                        extract_results.push(result);
                        if let Some(r) = replica {
                            replicas.push(r);
                        }
                    }
                    Err(_) => worker_panic = Some("extraction"),
                }
            }

            // All extractors are done: drop the senders so updaters drain and
            // exit, then collect their replicas.
            drop(update_channel);
            for handle in updater_handles {
                match handle.join() {
                    Ok(Some(replica)) => replicas.push(replica),
                    Ok(None) => {}
                    Err(_) => worker_panic = Some("index update"),
                }
            }
        });

        // An item every lease holder panicked on is permanently lost work —
        // surface it as the panic it is instead of an index missing a file.
        if worker_panic.is_none() && queue_handle.as_ref().is_some_and(|q| !q.poisoned().is_empty())
        {
            worker_panic = Some("extraction");
        }
        if let Some(stage) = worker_panic {
            return Err(PipelineError::WorkerPanicked(stage));
        }
        let mut stage2 = Stage2Stats::default();
        for result in extract_results {
            stage2.merge(&result?);
        }
        let extraction = sw.elapsed();

        // ---- Join stage (Implementation 2 only) --------------------------
        let sw = Stopwatch::start();
        let outcome = match implementation {
            Implementation::SharedLocked => {
                let index =
                    shared_index.expect("shared index exists for Implementation 1").into_inner();
                IndexOutcome::Single { index, docs }
            }
            Implementation::ReplicateJoin => {
                let joined = if configuration.join_threads <= 1 {
                    join_all(replicas)
                } else {
                    parallel_join(replicas, configuration.join_threads)
                };
                IndexOutcome::Single { index: joined, docs }
            }
            Implementation::ReplicateNoJoin => {
                IndexOutcome::Replicas { set: IndexSet::new(replicas), docs }
            }
        };
        let join = sw.elapsed();

        let total = total_sw.elapsed();
        Ok(ParallelRun {
            implementation,
            configuration,
            timings: StageTimings {
                filename_generation,
                extraction,
                index_update: std::time::Duration::ZERO,
                join,
                total,
            },
            stage1: stage1_stats,
            stage2,
            outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DedupMode, InsertGranularity};
    use dsearch_corpus::{materialize_to_memfs, CorpusSpec};
    use dsearch_text::Term;
    use dsearch_vfs::{FlakyFs, MemFs};

    fn corpus() -> MemFs {
        let (fs, _) = materialize_to_memfs(&CorpusSpec::tiny(), 11);
        fs
    }

    fn hand_built() -> MemFs {
        let fs = MemFs::new();
        fs.add_file(&VPath::new("d1/a.txt"), b"alpha beta alpha".to_vec()).unwrap();
        fs.add_file(&VPath::new("d1/b.txt"), b"beta gamma".to_vec()).unwrap();
        fs.add_file(&VPath::new("d2/c.txt"), b"gamma delta epsilon".to_vec()).unwrap();
        fs.add_file(&VPath::new("top.txt"), b"alpha".to_vec()).unwrap();
        fs
    }

    #[test]
    fn sequential_run_measures_all_four_columns() {
        let fs = hand_built();
        let run = IndexGenerator::default().run_sequential(&fs, &VPath::root()).unwrap();
        assert_eq!(run.stage1.files, 4);
        assert_eq!(run.stage2.files, 4);
        assert_eq!(run.index.file_count(), 4);
        assert_eq!(run.docs.len(), 4);
        assert_eq!(run.index.postings(&Term::from("alpha")).unwrap().len(), 2);
        assert_eq!(run.index_stats().files, 4);
        // All four timings were measured (may be tiny but not negative; total
        // is the production-run subset).
        assert!(run.timings.total() >= run.timings.filename_generation);
    }

    #[test]
    fn all_implementations_build_the_same_index() {
        let fs = corpus();
        let generator = IndexGenerator::default();
        let sequential = generator.run_sequential(&fs, &VPath::root()).unwrap();

        for implementation in Implementation::ALL {
            for config in [
                Configuration::new(1, 0, 0),
                Configuration::new(3, 0, 0),
                Configuration::new(2, 2, if implementation.joins() { 1 } else { 0 }),
                Configuration::new(3, 1, if implementation.joins() { 2 } else { 0 }),
            ] {
                let run = generator.run(&fs, &VPath::root(), implementation, config).unwrap();
                assert_eq!(run.implementation, implementation);
                assert_eq!(run.stage2.files, sequential.stage2.files);
                assert_eq!(run.outcome.file_count(), sequential.index.file_count());
                let (index, docs) = run.outcome.into_single_index();
                assert_eq!(index, sequential.index, "{implementation} {config}");
                assert_eq!(docs, sequential.docs);
            }
        }
    }

    #[test]
    fn replicate_no_join_keeps_replicas() {
        let fs = corpus();
        let generator = IndexGenerator::default();
        let run = generator
            .run(&fs, &VPath::root(), Implementation::ReplicateNoJoin, Configuration::new(3, 0, 0))
            .unwrap();
        assert_eq!(run.outcome.replica_count(), 3);
        // Postings unify across replicas.
        let sequential = generator.run_sequential(&fs, &VPath::root()).unwrap();
        for (term, list) in sequential.index.iter().take(25) {
            assert_eq!(run.outcome.postings(term).doc_ids(), list.doc_ids());
        }
    }

    #[test]
    fn dedicated_updaters_produce_replica_per_updater() {
        let fs = corpus();
        let generator = IndexGenerator::default();
        let run = generator
            .run(&fs, &VPath::root(), Implementation::ReplicateNoJoin, Configuration::new(2, 3, 0))
            .unwrap();
        assert_eq!(run.outcome.replica_count(), 3);
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let fs = hand_built();
        let generator = IndexGenerator::default();
        let err = generator
            .run(&fs, &VPath::root(), Implementation::SharedLocked, Configuration::new(0, 0, 0))
            .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidConfiguration(_)));
        let err = generator
            .run(&fs, &VPath::root(), Implementation::ReplicateNoJoin, Configuration::new(1, 0, 2))
            .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidConfiguration(_)));
    }

    #[test]
    fn missing_root_propagates_walk_error() {
        let fs = MemFs::new();
        let generator = IndexGenerator::default();
        let err = generator
            .run(
                &fs,
                &VPath::new("missing"),
                Implementation::SharedLocked,
                Configuration::new(1, 0, 0),
            )
            .unwrap_err();
        assert!(matches!(err, PipelineError::Walk(_)));
        assert!(generator.run_sequential(&fs, &VPath::new("missing")).is_err());
    }

    #[test]
    fn alternative_options_still_produce_identical_indices() {
        let fs = corpus();
        let reference = IndexGenerator::default().run_sequential(&fs, &VPath::root()).unwrap();

        let mut variations = Vec::new();
        for distribution in DistributionStrategy::ALL {
            let mut options = GeneratorOptions::paper_defaults();
            options.distribution = distribution;
            variations.push(options);
        }
        let mut per_occurrence = GeneratorOptions::paper_defaults();
        per_occurrence.dedup = DedupMode::InsertEveryOccurrence;
        per_occurrence.granularity = InsertGranularity::PerTerm;
        variations.push(per_occurrence);
        let mut concurrent = GeneratorOptions::paper_defaults();
        concurrent.stage1 = Stage1Mode::Concurrent;
        variations.push(concurrent);

        for options in variations {
            let generator = IndexGenerator::new(options.clone());
            assert_eq!(generator.options().distribution, options.distribution);
            let run = generator
                .run(
                    &fs,
                    &VPath::root(),
                    Implementation::ReplicateJoin,
                    Configuration::new(2, 0, 0),
                )
                .unwrap();
            let (index, _) = run.outcome.into_single_index();
            assert_eq!(index, reference.index, "options {options:?}");
        }
    }

    #[test]
    fn work_queue_survives_a_panicking_extractor_read() {
        // Regression test for the lease/ack queue: a read that panics once
        // must not lose its work item.  The dropped lease returns the file to
        // the queue, another pop retries it, and the final index is complete.
        let flaky = FlakyFs::new(hand_built());
        flaky.panic_reads("d1/a.txt", 1);

        let mut options = GeneratorOptions::paper_defaults();
        options.distribution = DistributionStrategy::WorkQueue;
        let generator = IndexGenerator::new(options);
        let run = generator
            .run(&flaky, &VPath::root(), Implementation::ReplicateJoin, Configuration::new(3, 0, 0))
            .unwrap();

        assert_eq!(run.stage2.files, 4, "all four files extracted despite the panic");
        assert_eq!(flaky.read_attempts("d1/a.txt"), 2, "panicked once, retried once");
        let reference =
            IndexGenerator::default().run_sequential(&hand_built(), &VPath::root()).unwrap();
        let (index, docs) = run.outcome.into_single_index();
        assert_eq!(index, reference.index);
        assert_eq!(docs, reference.docs);
    }

    #[test]
    fn work_queue_poisons_an_item_that_always_panics() {
        // A file whose extraction panics on every attempt must not wedge the
        // run: after MAX_LEASE_ATTEMPTS the queue quarantines it and the run
        // reports the extraction-stage failure instead of hanging or silently
        // dropping the file.
        let flaky = FlakyFs::new(hand_built());
        flaky.panic_reads("d1/a.txt", u32::MAX);

        let mut options = GeneratorOptions::paper_defaults();
        options.distribution = DistributionStrategy::WorkQueue;
        let generator = IndexGenerator::new(options);
        let err = generator
            .run(&flaky, &VPath::root(), Implementation::ReplicateJoin, Configuration::new(2, 0, 0))
            .unwrap_err();
        assert!(matches!(err, PipelineError::WorkerPanicked("extraction")), "{err}");
        assert_eq!(flaky.read_attempts("d1/a.txt"), crate::distribute::MAX_LEASE_ATTEMPTS);
    }

    #[test]
    fn format_mode_indexes_markup_files_by_their_text() {
        let fs = MemFs::new();
        fs.add_file(
            &VPath::new("docs/readme.md"),
            b"# Quickstart\n\nRun the *generator* on your corpus\n".to_vec(),
        )
        .unwrap();
        fs.add_file(
            &VPath::new("docs/page.html"),
            b"<html><body>inverted index</body></html>".to_vec(),
        )
        .unwrap();
        fs.add_file(&VPath::new("bin/tool.exe"), vec![0u8, 1, 2, 3, 4]).unwrap();

        let mut options = GeneratorOptions::paper_defaults();
        options.formats = crate::config::FormatMode::DetectAndExtract;
        let generator = IndexGenerator::new(options);
        let run = generator
            .run(&fs, &VPath::root(), Implementation::ReplicateJoin, Configuration::new(2, 0, 0))
            .unwrap();
        let (index, _) = run.outcome.into_single_index();
        assert!(index.contains_term(&Term::from("quickstart")));
        assert!(index.contains_term(&Term::from("generator")));
        assert!(index.contains_term(&Term::from("inverted")));
        assert!(!index.contains_term(&Term::from("body")), "markup tags are not terms");
        // The binary file was read but produced no postings.
        assert_eq!(run.stage2.files, 3);
    }

    #[test]
    fn report_reflects_run_shape() {
        let fs = corpus();
        let run = IndexGenerator::default()
            .run(&fs, &VPath::root(), Implementation::ReplicateJoin, Configuration::new(2, 1, 1))
            .unwrap();
        let report = run.report();
        assert_eq!(report.implementation, Implementation::ReplicateJoin);
        assert_eq!(report.configuration, Configuration::new(2, 1, 1));
        assert!(report.total_seconds > 0.0);
        assert_eq!(report.files, run.stage2.files);
        assert_eq!(report.replicas, 1);
    }
}
