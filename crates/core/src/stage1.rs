//! Stage 1: filename generation.
//!
//! A single thread traverses the directory hierarchy and produces the complete
//! list of files to index, together with the [`DocTable`] that assigns each
//! file its compact id.  The paper measured this stage at 5 seconds out of a
//! 90–220 second run (2–5 %), which is why it stays sequential; running it
//! concurrently with the extractors costs a pair of lock operations per
//! filename and was "highly inefficient" (that variant is available through
//! [`crate::config::Stage1Mode::Concurrent`] for the ablation benchmark).

use serde::{Deserialize, Serialize};

use dsearch_index::DocTable;
use dsearch_vfs::{FileSystem, VPath, WalkStats, Walker};

use crate::distribute::WorkItem;
use crate::error::PipelineError;

/// Output of Stage 1.
#[derive(Debug, Clone)]
pub struct FilenameSet {
    /// One work item per discovered file, in walk order.
    pub items: Vec<WorkItem>,
    /// The id → path table shared by the rest of the pipeline.
    pub docs: DocTable,
    /// Traversal statistics.
    pub stats: Stage1Stats,
}

/// Statistics of the filename-generation stage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage1Stats {
    /// Directories visited.
    pub directories: u64,
    /// Files discovered.
    pub files: u64,
    /// Total bytes across the discovered files.
    pub total_bytes: u64,
    /// Maximum directory depth.
    pub max_depth: usize,
}

impl From<WalkStats> for Stage1Stats {
    fn from(w: WalkStats) -> Self {
        Stage1Stats {
            directories: w.directories,
            files: w.files,
            total_bytes: w.total_bytes,
            max_depth: w.max_depth,
        }
    }
}

/// Generates the complete filename set for the tree under `root`.
///
/// # Errors
///
/// Fails when the root does not exist or a directory cannot be listed.
pub fn generate_filenames<F: FileSystem + ?Sized>(
    fs: &F,
    root: &VPath,
) -> Result<FilenameSet, PipelineError> {
    let (found, walk_stats) = Walker::new().walk(fs, root).map_err(PipelineError::Walk)?;
    let mut docs = DocTable::with_capacity(found.len());
    let mut items = Vec::with_capacity(found.len());
    for file in found {
        let id = docs.insert(file.path.as_str());
        items.push(WorkItem { file_id: id, path: file.path, size: file.size });
    }
    Ok(FilenameSet { items, docs, stats: walk_stats.into() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_vfs::MemFs;

    fn fixture() -> MemFs {
        let fs = MemFs::new();
        fs.add_file(&VPath::new("a/one.txt"), vec![0; 10]).unwrap();
        fs.add_file(&VPath::new("a/b/two.txt"), vec![0; 20]).unwrap();
        fs.add_file(&VPath::new("three.txt"), vec![0; 30]).unwrap();
        fs
    }

    #[test]
    fn assigns_sequential_ids_matching_doc_table() {
        let fs = fixture();
        let set = generate_filenames(&fs, &VPath::root()).unwrap();
        assert_eq!(set.items.len(), 3);
        assert_eq!(set.docs.len(), 3);
        for item in &set.items {
            assert_eq!(set.docs.path(item.file_id), Some(item.path.as_str()));
        }
        // Ids are dense 0..n.
        let mut ids: Vec<u32> = set.items.iter().map(|i| i.file_id.as_u32()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn stats_match_walk() {
        let fs = fixture();
        let set = generate_filenames(&fs, &VPath::root()).unwrap();
        assert_eq!(set.stats.files, 3);
        assert_eq!(set.stats.total_bytes, 60);
        assert_eq!(set.stats.directories, 3); // root, a, a/b
        assert_eq!(set.stats.max_depth, 2);
    }

    #[test]
    fn sizes_are_captured() {
        let fs = fixture();
        let set = generate_filenames(&fs, &VPath::root()).unwrap();
        let total: u64 = set.items.iter().map(|i| i.size).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn missing_root_errors() {
        let fs = MemFs::new();
        let err = generate_filenames(&fs, &VPath::new("missing")).unwrap_err();
        assert!(matches!(err, PipelineError::Walk(_)));
    }

    #[test]
    fn empty_tree_yields_empty_set() {
        let fs = MemFs::new();
        let set = generate_filenames(&fs, &VPath::root()).unwrap();
        assert!(set.items.is_empty());
        assert!(set.docs.is_empty());
        assert_eq!(set.stats.files, 0);
    }
}
