//! Stage 2: term extraction.
//!
//! An extractor reads each file assigned to it, scans the bytes for terms and
//! produces a [`FileTerms`] record per file.  With the paper's configuration
//! the record holds the *condensed word list* (duplicates removed inside the
//! file); the ablation mode keeps every occurrence so the index has to do the
//! duplicate handling instead.

use serde::{Deserialize, Serialize};

use dsearch_formats::FormatRegistry;
use dsearch_index::FileId;
use dsearch_text::tokenizer::{Term, Tokenizer};
use dsearch_text::wordlist::WordListBuilder;
use dsearch_vfs::FileSystem;

use crate::config::DedupMode;
use crate::distribute::WorkItem;
use crate::error::PipelineError;

/// The extracted terms of one file, ready for the index-update stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileTerms {
    /// The file the terms came from.
    pub file_id: FileId,
    /// The terms to insert (de-duplicated when
    /// [`DedupMode::PerFileWordList`] is active).
    pub terms: Vec<Term>,
    /// Per-term occurrence counts, parallel to `terms`. Empty means "each
    /// term occurred once" (the ablation mode emits raw occurrences, so the
    /// counts carry no extra information there).
    pub counts: Vec<u32>,
    /// Raw term occurrences seen in the file (before de-duplication).
    pub occurrences: u64,
    /// Bytes read from the file.
    pub bytes: u64,
}

/// Counters of one extractor's work.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage2Stats {
    /// Files scanned.
    pub files: u64,
    /// Bytes read.
    pub bytes: u64,
    /// Term occurrences seen.
    pub occurrences: u64,
    /// Terms emitted to the update stage (distinct per file under the
    /// condensed-word-list mode).
    pub terms_emitted: u64,
}

impl Stage2Stats {
    /// Merges another extractor's counters into this one.
    pub fn merge(&mut self, other: &Stage2Stats) {
        self.files += other.files;
        self.bytes += other.bytes;
        self.occurrences += other.occurrences;
        self.terms_emitted += other.terms_emitted;
    }
}

/// A term extractor bound to a tokenizer and duplicate-handling mode.
#[derive(Debug, Clone, Default)]
pub struct Extractor {
    tokenizer: Tokenizer,
    dedup: DedupMode,
    formats: Option<FormatRegistry>,
}

impl Extractor {
    /// Creates an extractor.
    #[must_use]
    pub fn new(tokenizer: Tokenizer, dedup: DedupMode) -> Self {
        Extractor { tokenizer, dedup, formats: None }
    }

    /// Makes the extractor format-aware: each file's format is detected and
    /// its plain text extracted through `registry` before tokenisation, and
    /// binary files yield no terms.
    #[must_use]
    pub fn with_formats(mut self, registry: FormatRegistry) -> Self {
        self.formats = Some(registry);
        self
    }

    /// Whether this extractor performs format detection and extraction.
    #[must_use]
    pub fn is_format_aware(&self) -> bool {
        self.formats.is_some()
    }

    /// Scans a single file and produces its [`FileTerms`].
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be read.
    pub fn extract_file<F: FileSystem + ?Sized>(
        &self,
        fs: &F,
        item: &WorkItem,
    ) -> Result<FileTerms, PipelineError> {
        let data = fs.read(&item.path).map_err(|source| PipelineError::Read {
            path: item.path.as_str().to_owned(),
            source,
        })?;
        let bytes = data.len() as u64;
        let extracted =
            self.formats.as_ref().map(|registry| registry.extract(item.path.as_str(), &data));
        let text: &[u8] = match &extracted {
            Some(e) => e.text_bytes(),
            None => &data,
        };
        let (raw_terms, stats) = self.tokenizer.tokenize(text);
        let occurrences = stats.terms_emitted;
        let (terms, counts) = match self.dedup {
            DedupMode::PerFileWordList => {
                let mut builder = WordListBuilder::with_capacity(raw_terms.len() / 2 + 1);
                for t in raw_terms {
                    builder.push(t);
                }
                let list = builder.finish();
                let counts = list.counts().to_vec();
                (list.into_terms(), counts)
            }
            DedupMode::InsertEveryOccurrence => (raw_terms, Vec::new()),
        };
        Ok(FileTerms { file_id: item.file_id, terms, counts, occurrences, bytes })
    }

    /// Scans every item in `work`, calling `sink` for each file's terms.
    ///
    /// This is the body of one extractor thread.
    ///
    /// # Errors
    ///
    /// Stops at the first unreadable file.
    pub fn extract_all<F, S>(
        &self,
        fs: &F,
        work: &[WorkItem],
        mut sink: S,
    ) -> Result<Stage2Stats, PipelineError>
    where
        F: FileSystem + ?Sized,
        S: FnMut(FileTerms),
    {
        let mut stats = Stage2Stats::default();
        for item in work {
            let file_terms = self.extract_file(fs, item)?;
            stats.files += 1;
            stats.bytes += file_terms.bytes;
            stats.occurrences += file_terms.occurrences;
            stats.terms_emitted += file_terms.terms.len() as u64;
            sink(file_terms);
        }
        Ok(stats)
    }

    /// Reads every item without extracting terms — the paper's "empty
    /// scanner" used to measure pure read time (Table 1's "read files"
    /// column).
    ///
    /// # Errors
    ///
    /// Stops at the first unreadable file.
    pub fn scan_only<F: FileSystem + ?Sized>(
        &self,
        fs: &F,
        work: &[WorkItem],
    ) -> Result<Stage2Stats, PipelineError> {
        let mut stats = Stage2Stats::default();
        for item in work {
            let data = fs.read(&item.path).map_err(|source| PipelineError::Read {
                path: item.path.as_str().to_owned(),
                source,
            })?;
            stats.files += 1;
            stats.bytes += self.tokenizer.scan_only(&data);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_vfs::{MemFs, VPath};

    fn fixture() -> (MemFs, Vec<WorkItem>) {
        let fs = MemFs::new();
        fs.add_file(&VPath::new("a.txt"), b"apple banana apple cherry".to_vec()).unwrap();
        fs.add_file(&VPath::new("b.txt"), b"banana date".to_vec()).unwrap();
        let items = vec![
            WorkItem { file_id: FileId(0), path: VPath::new("a.txt"), size: 25 },
            WorkItem { file_id: FileId(1), path: VPath::new("b.txt"), size: 11 },
        ];
        (fs, items)
    }

    #[test]
    fn extract_file_deduplicates_per_file() {
        let (fs, items) = fixture();
        let ex = Extractor::default();
        let ft = ex.extract_file(&fs, &items[0]).unwrap();
        assert_eq!(ft.file_id, FileId(0));
        assert_eq!(ft.occurrences, 4);
        let words: Vec<&str> = ft.terms.iter().map(|t| t.as_str()).collect();
        assert_eq!(words, ["apple", "banana", "cherry"]);
        assert_eq!(ft.bytes, 25);
    }

    #[test]
    fn insert_every_occurrence_keeps_duplicates() {
        let (fs, items) = fixture();
        let ex = Extractor::new(Tokenizer::default(), DedupMode::InsertEveryOccurrence);
        let ft = ex.extract_file(&fs, &items[0]).unwrap();
        assert_eq!(ft.terms.len(), 4);
        assert_eq!(ft.occurrences, 4);
    }

    #[test]
    fn extract_all_accumulates_stats_and_calls_sink() {
        let (fs, items) = fixture();
        let ex = Extractor::default();
        let mut collected = Vec::new();
        let stats = ex.extract_all(&fs, &items, |ft| collected.push(ft)).unwrap();
        assert_eq!(stats.files, 2);
        assert_eq!(stats.bytes, 36);
        assert_eq!(stats.occurrences, 6);
        assert_eq!(stats.terms_emitted, 5);
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[1].file_id, FileId(1));
    }

    #[test]
    fn scan_only_reads_without_terms() {
        let (fs, items) = fixture();
        let ex = Extractor::default();
        let stats = ex.scan_only(&fs, &items).unwrap();
        assert_eq!(stats.files, 2);
        assert_eq!(stats.bytes, 36);
        assert_eq!(stats.terms_emitted, 0);
        assert_eq!(stats.occurrences, 0);
    }

    #[test]
    fn missing_file_reports_path() {
        let (fs, _) = fixture();
        let ex = Extractor::default();
        let bad = WorkItem { file_id: FileId(9), path: VPath::new("missing.txt"), size: 0 };
        let err = ex.extract_file(&fs, &bad).unwrap_err();
        assert!(err.to_string().contains("missing.txt"));
        let err = ex.scan_only(&fs, std::slice::from_ref(&bad)).unwrap_err();
        assert!(matches!(err, PipelineError::Read { .. }));
        let err = ex.extract_all(&fs, &[bad], |_| {}).unwrap_err();
        assert!(matches!(err, PipelineError::Read { .. }));
    }

    #[test]
    fn format_aware_extractor_handles_markup_and_binary() {
        let fs = MemFs::new();
        fs.add_file(
            &VPath::new("page.html"),
            b"<html><body><p>parallel &amp; fast</p><script>skip_me()</script></body></html>"
                .to_vec(),
        )
        .unwrap();
        fs.add_file(&VPath::new("blob.bin"), vec![0, 159, 146, 150]).unwrap();
        let items = [
            WorkItem { file_id: FileId(0), path: VPath::new("page.html"), size: 0 },
            WorkItem { file_id: FileId(1), path: VPath::new("blob.bin"), size: 4 },
        ];

        let plain = Extractor::default();
        assert!(!plain.is_format_aware());
        let ft = plain.extract_file(&fs, &items[0]).unwrap();
        let words: Vec<&str> = ft.terms.iter().map(|t| t.as_str()).collect();
        assert!(words.contains(&"html"), "raw mode indexes the markup itself");

        let aware = Extractor::default().with_formats(FormatRegistry::with_builtins());
        assert!(aware.is_format_aware());
        let ft = aware.extract_file(&fs, &items[0]).unwrap();
        let words: Vec<&str> = ft.terms.iter().map(|t| t.as_str()).collect();
        assert!(words.contains(&"parallel"));
        assert!(words.contains(&"fast"));
        assert!(!words.contains(&"html"));
        assert!(!words.iter().any(|w| w.contains("skip")));

        let ft = aware.extract_file(&fs, &items[1]).unwrap();
        assert!(ft.terms.is_empty(), "binary files produce no terms");
        assert_eq!(ft.bytes, 4, "bytes read still counts the raw file size");
    }

    #[test]
    fn stats_merge() {
        let mut a = Stage2Stats { files: 1, bytes: 2, occurrences: 3, terms_emitted: 4 };
        let b = Stage2Stats { files: 10, bytes: 20, occurrences: 30, terms_emitted: 40 };
        a.merge(&b);
        assert_eq!(a, Stage2Stats { files: 11, bytes: 22, occurrences: 33, terms_emitted: 44 });
    }
}
