//! Stage 3: index update.
//!
//! The update stage receives [`FileTerms`] records and applies them to the
//! index.  Which index it applies them to is the crux of the paper's three
//! implementations:
//!
//! * [`SharedSink`] inserts into the single locked [`SharedIndex`]
//!   (Implementation 1);
//! * [`ReplicaSink`] inserts into a thread-private [`InMemoryIndex`]
//!   (Implementations 2 and 3).
//!
//! Both sinks honour the configured [`InsertGranularity`]: en-bloc insertion
//! (one call — and for the shared index one lock acquisition — per file) or
//! per-term insertion (the ablation that floods the lock).

use serde::{Deserialize, Serialize};

use dsearch_index::{InMemoryIndex, SharedIndex};

use crate::config::InsertGranularity;
use crate::stage2::FileTerms;

/// Counters of applied updates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage3Stats {
    /// Files applied to the index.
    pub files: u64,
    /// Terms passed to the index (after any per-file de-duplication).
    pub terms: u64,
}

impl Stage3Stats {
    /// Merges another updater's counters into this one.
    pub fn merge(&mut self, other: &Stage3Stats) {
        self.files += other.files;
        self.terms += other.terms;
    }
}

/// Something that can absorb one file's terms.
pub trait UpdateSink {
    /// Applies one file's terms to the index.
    fn apply(&mut self, file: FileTerms);

    /// Counters accumulated so far.
    fn stats(&self) -> Stage3Stats;
}

/// Updates the single shared, locked index (Implementation 1).
#[derive(Debug, Clone)]
pub struct SharedSink {
    index: SharedIndex,
    granularity: InsertGranularity,
    stats: Stage3Stats,
}

impl SharedSink {
    /// Creates a sink inserting into `index`.
    #[must_use]
    pub fn new(index: SharedIndex, granularity: InsertGranularity) -> Self {
        SharedSink { index, granularity, stats: Stage3Stats::default() }
    }

    /// The shared index handle.
    #[must_use]
    pub fn index(&self) -> &SharedIndex {
        &self.index
    }
}

impl UpdateSink for SharedSink {
    fn apply(&mut self, file: FileTerms) {
        self.stats.files += 1;
        self.stats.terms += file.terms.len() as u64;
        match self.granularity {
            InsertGranularity::EnBloc => {
                if file.counts.is_empty() {
                    self.index.insert_file(file.file_id, file.terms);
                } else {
                    self.index
                        .insert_file_counted(file.file_id, file.terms.into_iter().zip(file.counts));
                }
            }
            InsertGranularity::PerTerm => {
                for term in file.terms {
                    self.index.insert_occurrence(file.file_id, term);
                }
                self.index.note_file_done();
            }
        }
    }

    fn stats(&self) -> Stage3Stats {
        self.stats
    }
}

/// Updates a thread-private replica index (Implementations 2 and 3).
#[derive(Debug, Default)]
pub struct ReplicaSink {
    index: InMemoryIndex,
    granularity: InsertGranularity,
    stats: Stage3Stats,
}

impl ReplicaSink {
    /// Creates an empty replica sink.
    #[must_use]
    pub fn new(granularity: InsertGranularity) -> Self {
        ReplicaSink { index: InMemoryIndex::new(), granularity, stats: Stage3Stats::default() }
    }

    /// Finishes the sink, returning the replica index it built.
    #[must_use]
    pub fn into_index(self) -> InMemoryIndex {
        self.index
    }

    /// Borrows the replica built so far.
    #[must_use]
    pub fn index(&self) -> &InMemoryIndex {
        &self.index
    }
}

impl UpdateSink for ReplicaSink {
    fn apply(&mut self, file: FileTerms) {
        self.stats.files += 1;
        self.stats.terms += file.terms.len() as u64;
        match self.granularity {
            InsertGranularity::EnBloc => {
                if file.counts.is_empty() {
                    self.index.insert_file(file.file_id, file.terms);
                } else {
                    self.index
                        .insert_file_counted(file.file_id, file.terms.into_iter().zip(file.counts));
                }
            }
            InsertGranularity::PerTerm => {
                for term in file.terms {
                    self.index.insert_occurrence(file.file_id, term);
                }
                self.index.note_file_done();
            }
        }
    }

    fn stats(&self) -> Stage3Stats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_index::FileId;
    use dsearch_text::Term;

    fn file_terms(id: u32, words: &[&str]) -> FileTerms {
        FileTerms {
            file_id: FileId(id),
            terms: words.iter().map(|w| Term::from(*w)).collect(),
            counts: Vec::new(),
            occurrences: words.len() as u64,
            bytes: 100,
        }
    }

    #[test]
    fn shared_sink_en_bloc_and_per_term_agree() {
        let en_bloc = SharedIndex::new();
        let mut sink = SharedSink::new(en_bloc.clone(), InsertGranularity::EnBloc);
        sink.apply(file_terms(0, &["a", "b"]));
        sink.apply(file_terms(1, &["b", "c"]));

        let per_term = SharedIndex::new();
        let mut sink2 = SharedSink::new(per_term.clone(), InsertGranularity::PerTerm);
        sink2.apply(file_terms(0, &["a", "b"]));
        sink2.apply(file_terms(1, &["b", "c"]));

        assert_eq!(en_bloc.snapshot(), per_term.snapshot());
        assert_eq!(en_bloc.snapshot().file_count(), 2);
        assert_eq!(sink.stats(), sink2.stats());
        assert_eq!(sink.stats().files, 2);
        assert_eq!(sink.stats().terms, 4);
        assert_eq!(sink.index().stats().files, 2);
    }

    #[test]
    fn replica_sink_builds_private_index() {
        let mut sink = ReplicaSink::new(InsertGranularity::EnBloc);
        sink.apply(file_terms(0, &["x", "y"]));
        sink.apply(file_terms(1, &["y"]));
        assert_eq!(sink.stats().files, 2);
        assert_eq!(sink.stats().terms, 3);
        assert_eq!(sink.index().term_count(), 2);
        let index = sink.into_index();
        assert_eq!(index.postings(&Term::from("y")).unwrap().len(), 2);
        assert_eq!(index.file_count(), 2);
    }

    #[test]
    fn replica_sink_per_term_matches_en_bloc() {
        let mut a = ReplicaSink::new(InsertGranularity::EnBloc);
        let mut b = ReplicaSink::new(InsertGranularity::PerTerm);
        for i in 0..10u32 {
            a.apply(file_terms(i, &["common", "other"]));
            b.apply(file_terms(i, &["common", "other"]));
        }
        assert_eq!(a.into_index(), b.into_index());
    }

    #[test]
    fn default_replica_sink_is_empty() {
        let sink = ReplicaSink::default();
        assert_eq!(sink.stats(), Stage3Stats::default());
        assert!(sink.into_index().is_empty());
    }

    #[test]
    fn stats_merge() {
        let mut a = Stage3Stats { files: 1, terms: 2 };
        a.merge(&Stage3Stats { files: 3, terms: 4 });
        assert_eq!(a, Stage3Stats { files: 4, terms: 6 });
    }
}
