//! Stage timing instrumentation.
//!
//! Table 1 of the paper reports per-stage execution times of the sequential
//! generator; Tables 2–4 report end-to-end times of the parallel
//! configurations.  [`StageTimings`] is the record both kinds of run produce,
//! and [`Stopwatch`] is the tiny helper used to fill it.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Wall-clock durations of each pipeline stage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Stage 1: filename generation.
    pub filename_generation: Duration,
    /// Stage 2 + 3 for parallel runs (extraction and update overlap); for the
    /// sequential baseline this is the read-and-extract pass only.
    pub extraction: Duration,
    /// Stage 3 measured separately (sequential baseline only; zero when the
    /// update overlaps extraction).
    pub index_update: Duration,
    /// Join stage (Implementation 2 only; zero otherwise).
    pub join: Duration,
    /// Whole run, from before Stage 1 to after the join.
    pub total: Duration,
}

impl StageTimings {
    /// Sum of the individually measured stages (excludes `total`).
    #[must_use]
    pub fn stage_sum(&self) -> Duration {
        self.filename_generation + self.extraction + self.index_update + self.join
    }

    /// Speed-up of this run relative to `baseline` (total time ratio).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &StageTimings) -> f64 {
        let own = self.total.as_secs_f64();
        if own == 0.0 {
            return 0.0;
        }
        baseline.total.as_secs_f64() / own
    }
}

/// Ready-made latency summary: the percentiles a serving system reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples summarised.
    pub samples: usize,
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// 99.9th-percentile latency.
    pub p999: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarises a sample set (need not be sorted; empty yields zeros).
    #[must_use]
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        LatencySummary {
            samples: sorted.len(),
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
            p999: percentile(&sorted, 99.9),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50 {:.3?}  p95 {:.3?}  p99 {:.3?}  p99.9 {:.3?}  max {:.3?} ({} samples)",
            self.p50, self.p95, self.p99, self.p999, self.max, self.samples
        )
    }
}

/// The `q`-th percentile (0–100) of an **ascending-sorted** sample set, using
/// the nearest-rank method.  Empty input yields zero.
///
/// This is the shared implementation behind server statistics, the load
/// generator and the benches, so every report agrees on what "p99" means.
#[must_use]
pub fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let q = q.clamp(0.0, 100.0);
    // Nearest-rank: smallest sample with at least q% of the data at or below
    // it.  ceil(q/100 * n) with 1-based ranks.
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Measures one duration at a time.
#[derive(Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch { started: Instant::now() }
    }

    /// Elapsed time since start.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Returns the elapsed time and restarts the stopwatch.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let elapsed = now - self.started;
        self.started = now;
        elapsed
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_sum_adds_components() {
        let t = StageTimings {
            filename_generation: Duration::from_millis(5),
            extraction: Duration::from_millis(80),
            index_update: Duration::from_millis(20),
            join: Duration::from_millis(3),
            total: Duration::from_millis(110),
        };
        assert_eq!(t.stage_sum(), Duration::from_millis(108));
    }

    #[test]
    fn speedup_is_ratio_of_totals() {
        let seq = StageTimings { total: Duration::from_secs(220), ..Default::default() };
        let par = StageTimings { total: Duration::from_millis(46_700), ..Default::default() };
        let s = par.speedup_vs(&seq);
        assert!((s - 4.71).abs() < 0.02, "speedup {s}");
        let zero = StageTimings::default();
        assert_eq!(zero.speedup_vs(&seq), 0.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&sorted, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&sorted, 95.0), Duration::from_millis(95));
        assert_eq!(percentile(&sorted, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&sorted, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&sorted, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        // Single sample: every percentile is that sample.
        let one = [Duration::from_micros(7)];
        assert_eq!(percentile(&one, 1.0), one[0]);
        assert_eq!(percentile(&one, 99.0), one[0]);
    }

    #[test]
    fn latency_summary_from_unsorted_samples() {
        let samples: Vec<Duration> = (1..=200).rev().map(Duration::from_micros).collect();
        let summary = LatencySummary::from_samples(&samples);
        assert_eq!(summary.samples, 200);
        assert_eq!(summary.p50, Duration::from_micros(100));
        assert_eq!(summary.p95, Duration::from_micros(190));
        assert_eq!(summary.p99, Duration::from_micros(198));
        assert_eq!(summary.p999, Duration::from_micros(200));
        assert_eq!(summary.max, Duration::from_micros(200));
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
        let text = summary.to_string();
        assert!(text.contains("p99") && text.contains("200 samples"));
    }

    #[test]
    fn empty_window_summary_is_all_zeros() {
        let summary = LatencySummary::from_samples(&[]);
        assert_eq!(summary.samples, 0);
        assert_eq!(summary.p50, Duration::ZERO);
        assert_eq!(summary.p95, Duration::ZERO);
        assert_eq!(summary.p99, Duration::ZERO);
        assert_eq!(summary.p999, Duration::ZERO);
        assert_eq!(summary.max, Duration::ZERO);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let sample = Duration::from_micros(37);
        let summary = LatencySummary::from_samples(&[sample]);
        assert_eq!(summary.samples, 1);
        assert_eq!(summary.p50, sample);
        assert_eq!(summary.p95, sample);
        assert_eq!(summary.p99, sample);
        assert_eq!(summary.p999, sample);
        assert_eq!(summary.max, sample);
    }

    #[test]
    fn saturating_durations_do_not_panic() {
        // Duration::MAX alongside ordinary samples: the summary must not
        // overflow or panic, and MAX must surface as the worst percentiles.
        let samples = [Duration::from_nanos(1), Duration::MAX, Duration::MAX];
        let summary = LatencySummary::from_samples(&samples);
        assert_eq!(summary.samples, 3);
        assert_eq!(summary.p50, Duration::MAX);
        assert_eq!(summary.max, Duration::MAX);
        // Out-of-range percentile queries clamp rather than index out of
        // bounds.
        let sorted = [Duration::from_micros(1), Duration::from_micros(2)];
        assert_eq!(percentile(&sorted, -5.0), sorted[0]);
        assert_eq!(percentile(&sorted, 250.0), sorted[1]);
    }

    mod percentile_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn percentiles_are_monotone(raw in proptest::collection::vec(0u64..=1_000_000, 0..64)) {
                let samples: Vec<Duration> =
                    raw.iter().copied().map(Duration::from_nanos).collect();
                let s = LatencySummary::from_samples(&samples);
                prop_assert!(s.p50 <= s.p95);
                prop_assert!(s.p95 <= s.p99);
                prop_assert!(s.p99 <= s.p999);
                prop_assert!(s.p999 <= s.max);
                if !samples.is_empty() {
                    prop_assert_eq!(s.max, samples.iter().copied().max().unwrap());
                }
            }
        }
    }

    #[test]
    fn stopwatch_measures_monotonically() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(1));
        let second = sw.elapsed();
        assert!(second < first + Duration::from_secs(1));
        let _ = Stopwatch::default();
    }
}
