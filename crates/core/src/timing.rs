//! Stage timing instrumentation.
//!
//! Table 1 of the paper reports per-stage execution times of the sequential
//! generator; Tables 2–4 report end-to-end times of the parallel
//! configurations.  [`StageTimings`] is the record both kinds of run produce,
//! and [`Stopwatch`] is the tiny helper used to fill it.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Wall-clock durations of each pipeline stage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Stage 1: filename generation.
    pub filename_generation: Duration,
    /// Stage 2 + 3 for parallel runs (extraction and update overlap); for the
    /// sequential baseline this is the read-and-extract pass only.
    pub extraction: Duration,
    /// Stage 3 measured separately (sequential baseline only; zero when the
    /// update overlaps extraction).
    pub index_update: Duration,
    /// Join stage (Implementation 2 only; zero otherwise).
    pub join: Duration,
    /// Whole run, from before Stage 1 to after the join.
    pub total: Duration,
}

impl StageTimings {
    /// Sum of the individually measured stages (excludes `total`).
    #[must_use]
    pub fn stage_sum(&self) -> Duration {
        self.filename_generation + self.extraction + self.index_update + self.join
    }

    /// Speed-up of this run relative to `baseline` (total time ratio).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &StageTimings) -> f64 {
        let own = self.total.as_secs_f64();
        if own == 0.0 {
            return 0.0;
        }
        baseline.total.as_secs_f64() / own
    }
}

/// Measures one duration at a time.
#[derive(Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch { started: Instant::now() }
    }

    /// Elapsed time since start.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Returns the elapsed time and restarts the stopwatch.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let elapsed = now - self.started;
        self.started = now;
        elapsed
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_sum_adds_components() {
        let t = StageTimings {
            filename_generation: Duration::from_millis(5),
            extraction: Duration::from_millis(80),
            index_update: Duration::from_millis(20),
            join: Duration::from_millis(3),
            total: Duration::from_millis(110),
        };
        assert_eq!(t.stage_sum(), Duration::from_millis(108));
    }

    #[test]
    fn speedup_is_ratio_of_totals() {
        let seq = StageTimings { total: Duration::from_secs(220), ..Default::default() };
        let par = StageTimings { total: Duration::from_millis(46_700), ..Default::default() };
        let s = par.speedup_vs(&seq);
        assert!((s - 4.71).abs() < 0.02, "speedup {s}");
        let zero = StageTimings::default();
        assert_eq!(zero.speedup_vs(&seq), 0.0);
    }

    #[test]
    fn stopwatch_measures_monotonically() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(1));
        let second = sw.elapsed();
        assert!(second < first + Duration::from_secs(1));
        let _ = Stopwatch::default();
    }
}
