//! Property test: a checkpointed build that is interrupted at an arbitrary
//! point and then resumed produces a store that is query-equivalent to an
//! uninterrupted batch build of the same corpus.
//!
//! This is the contract that makes `--resume` safe to recommend: no matter
//! where the "crash" lands relative to checkpoint boundaries (every-item
//! checkpoints or coarse intervals, one extractor or several), the resumed
//! store's joined index equals the index the paper's in-memory pipeline
//! builds in one go.

use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;

use dsearch_core::pipeline::{BuildOptions, BuildPipeline};
use dsearch_core::runner::IndexGenerator;
use dsearch_persist::{BuildCheckpoint, IndexStore};
use dsearch_vfs::{MemFs, VPath};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        let unique = format!(
            "dsearch-resume-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        );
        path.push(unique.replace(['(', ')', ' '], ""));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic synthetic corpus: `files` documents with word counts and
/// vocabulary driven by `seed` via a splitmix-style generator.
fn build_corpus(files: usize, seed: u64) -> MemFs {
    const WORDS: [&str; 12] = [
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "index", "parallel", "desktop",
        "search", "thread", "segment",
    ];
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let fs = MemFs::new();
    for i in 0..files {
        let words = 1 + (next() % 24) as usize;
        let mut body = String::new();
        for _ in 0..words {
            body.push_str(WORDS[(next() % WORDS.len() as u64) as usize]);
            body.push(' ');
        }
        let dir = ["a", "b", "c"][(next() % 3) as usize];
        fs.add_file(&VPath::new(format!("{dir}/doc{i:03}.txt")), body.into_bytes()).unwrap();
    }
    fs
}

fn options(extractors: usize, checkpoint_every: Duration) -> BuildOptions {
    BuildOptions {
        extractors,
        checkpoint_every,
        retry_base: Duration::from_micros(100),
        retry_cap: Duration::from_millis(2),
        ..BuildOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Interrupt anywhere, resume, compare against the uninterrupted batch
    /// build.  `checkpoint_every` toggles between per-item checkpoints
    /// (every interruption lands exactly on a boundary) and a coarse
    /// interval (the unsealed tail must be re-extracted on resume).
    #[test]
    fn interrupted_and_resumed_build_equals_batch(
        files in 2usize..14,
        seed in any::<u64>(),
        stop_pct in 0u64..100,
        extractors in 1usize..4,
        per_item_checkpoints in any::<bool>(),
    ) {
        let fs = build_corpus(files, seed);
        let dir = TempDir::new("prop");
        let interval = if per_item_checkpoints {
            Duration::ZERO
        } else {
            Duration::from_millis(5)
        };
        let stop_after = 1 + stop_pct * (files as u64 - 1) / 100;

        let mut first = options(extractors, interval);
        first.stop_after = Some(stop_after);
        let report = BuildPipeline::new(first).build(&fs, &VPath::root(), &dir.0).unwrap();
        prop_assert!(report.interrupted);
        prop_assert!(report.counters.items_ok >= stop_after.min(files as u64));

        let mut second = options(extractors, interval);
        second.resume = true;
        let report = BuildPipeline::new(second).build(&fs, &VPath::root(), &dir.0).unwrap();
        prop_assert!(report.complete);
        prop_assert_eq!(report.counters.items_dead, 0);
        prop_assert_eq!(report.skipped + report.counters.items_ok, files as u64);

        let checkpoint = BuildCheckpoint::load(&dir.0).unwrap().unwrap();
        prop_assert!(checkpoint.complete);
        prop_assert_eq!(checkpoint.completed.len(), files);

        let store = IndexStore::open(&dir.0).unwrap();
        let (resumed_index, resumed_docs) = store.load_joined().unwrap();
        let batch = IndexGenerator::default().run_sequential(&fs, &VPath::root()).unwrap();
        prop_assert_eq!(&resumed_index, &batch.index);
        prop_assert_eq!(resumed_docs.len(), batch.docs.len());
        for (term, list) in batch.index.iter().take(40) {
            prop_assert_eq!(
                resumed_index.postings(term).map(|p| p.doc_ids()),
                Some(list.doc_ids()),
                "postings diverge for {:?}", term
            );
        }
    }

    /// Resuming an already-complete build is a no-op that changes nothing.
    #[test]
    fn resume_of_a_complete_build_is_idempotent(
        files in 1usize..8,
        seed in any::<u64>(),
    ) {
        let fs = build_corpus(files, seed);
        let dir = TempDir::new("idem");
        let pipeline = BuildPipeline::new(options(2, Duration::ZERO));
        let report = pipeline.build(&fs, &VPath::root(), &dir.0).unwrap();
        prop_assert!(report.complete);
        let store = IndexStore::open(&dir.0).unwrap();
        let (index_before, _) = store.load_joined().unwrap();
        let segments_before = store.segment_count();

        let mut again = options(2, Duration::ZERO);
        again.resume = true;
        let report = BuildPipeline::new(again).build(&fs, &VPath::root(), &dir.0).unwrap();
        prop_assert!(report.complete);
        prop_assert_eq!(report.counters.items_ok, 0, "nothing re-extracted");
        prop_assert_eq!(report.skipped, files as u64);

        let store = IndexStore::open(&dir.0).unwrap();
        prop_assert_eq!(store.segment_count(), segments_before);
        let (index_after, _) = store.load_joined().unwrap();
        prop_assert_eq!(index_after, index_before);
    }
}
