//! Document text generation.
//!
//! Generates pseudo-natural-language plain text: words drawn from a
//! [`Vocabulary`] under a Zipf distribution, assembled into sentences and
//! paragraphs until a target byte size is reached.  The Zipf skew is what
//! gives files realistic *duplicate-term ratios*, which is the quantity the
//! paper's "condensed word list" optimisation exploits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

use crate::spec::CorpusSpec;
use crate::vocab::Vocabulary;

/// Generates document text for a corpus.
#[derive(Debug, Clone)]
pub struct DocumentGenerator {
    vocab: Vocabulary,
    zipf: Zipf<f64>,
    words_per_sentence: (usize, usize),
    sentences_per_paragraph: (usize, usize),
}

impl DocumentGenerator {
    /// Creates a generator for the given spec, building the vocabulary from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec's vocabulary size is zero or the Zipf exponent is
    /// not positive (call [`CorpusSpec::validate`] first to get a friendly
    /// error instead).
    #[must_use]
    pub fn new(spec: &CorpusSpec, seed: u64) -> Self {
        let vocab = Vocabulary::generate(spec.vocabulary_size, seed);
        let zipf = Zipf::new(spec.vocabulary_size as u64, spec.zipf_exponent)
            .expect("valid zipf parameters");
        DocumentGenerator {
            vocab,
            zipf,
            words_per_sentence: (5, 18),
            sentences_per_paragraph: (3, 8),
        }
    }

    /// The vocabulary this generator draws from.
    #[must_use]
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Samples one word rank from the Zipf distribution.
    fn sample_rank<R: Rng>(&self, rng: &mut R) -> usize {
        // Zipf samples in 1..=N; rank 1 is the most frequent.
        (self.zipf.sample(rng) as usize - 1).min(self.vocab.len() - 1)
    }

    /// Generates a document of at least `target_bytes` bytes (and not much
    /// more: generation stops at the first paragraph boundary past the
    /// target).
    ///
    /// The same `(doc_seed)` always produces the same text.
    #[must_use]
    pub fn generate(&self, target_bytes: u64, doc_seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(doc_seed);
        let mut out = Vec::with_capacity(target_bytes as usize + 256);
        while (out.len() as u64) < target_bytes {
            let sentences =
                rng.gen_range(self.sentences_per_paragraph.0..=self.sentences_per_paragraph.1);
            for _ in 0..sentences {
                let words = rng.gen_range(self.words_per_sentence.0..=self.words_per_sentence.1);
                for i in 0..words {
                    let rank = self.sample_rank(&mut rng);
                    let word = self.vocab.word(rank);
                    if i == 0 {
                        // Capitalise sentence starts like real text.
                        let mut chars = word.chars();
                        if let Some(first) = chars.next() {
                            out.extend(first.to_ascii_uppercase().to_string().as_bytes());
                            out.extend(chars.as_str().as_bytes());
                        }
                    } else {
                        out.extend(word.as_bytes());
                    }
                    if i + 1 < words {
                        out.push(b' ');
                    }
                }
                out.extend(b". ");
            }
            out.extend(b"\n\n");
        }
        out
    }

    /// Expected number of term occurrences in a document of `bytes` bytes.
    ///
    /// Used by the simulator's cost model.
    #[must_use]
    pub fn expected_terms_for_bytes(&self, bytes: u64) -> u64 {
        // Every word is followed by roughly one separator byte plus sentence
        // punctuation overhead (~15 %).
        let per_word = self.vocab.mean_word_len() + 1.35;
        (bytes as f64 / per_word).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_text::tokenizer::Tokenizer;
    use dsearch_text::wordlist::WordList;

    fn generator() -> DocumentGenerator {
        DocumentGenerator::new(&CorpusSpec::tiny(), 7)
    }

    #[test]
    fn generates_at_least_target_bytes() {
        let g = generator();
        for target in [0u64, 100, 1_000, 10_000] {
            let doc = g.generate(target, 1);
            assert!(doc.len() as u64 >= target, "target {target}, got {}", doc.len());
            // ...but not wildly more (at most one paragraph of slack; a
            // paragraph is bounded by 8 sentences of 18 long words).
            assert!((doc.len() as u64) < target + 6_000);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generator();
        assert_eq!(g.generate(2_000, 5), g.generate(2_000, 5));
        assert_ne!(g.generate(2_000, 5), g.generate(2_000, 6));
    }

    #[test]
    fn text_is_ascii_and_tokenizable() {
        let g = generator();
        let doc = g.generate(5_000, 3);
        assert!(doc.is_ascii());
        let tok = Tokenizer::default();
        let (terms, stats) = tok.tokenize(&doc);
        assert!(stats.terms_emitted > 100);
        // Every token is a vocabulary word (lowercased).
        let vocab: std::collections::HashSet<&str> =
            g.vocabulary().words().iter().map(String::as_str).collect();
        for t in &terms {
            assert!(vocab.contains(t.as_str()), "token {t} not in vocabulary");
        }
    }

    #[test]
    fn zipf_skew_produces_duplicates_within_a_document() {
        let g = generator();
        let doc = g.generate(20_000, 11);
        let tok = Tokenizer::default();
        let (terms, _) = tok.tokenize(&doc);
        let list = WordList::from_terms(terms.iter().cloned());
        // With a Zipfian distribution the distinct/occurrence ratio must be
        // well below 1 for a 20 kB document.
        let ratio = list.len() as f64 / terms.len() as f64;
        assert!(ratio < 0.65, "expected heavy duplication, distinct ratio {ratio}");
    }

    #[test]
    fn expected_terms_estimate_is_close() {
        let g = generator();
        let doc = g.generate(30_000, 13);
        let tok = Tokenizer::default();
        let (_, stats) = tok.tokenize(&doc);
        let estimate = g.expected_terms_for_bytes(doc.len() as u64);
        let ratio = estimate as f64 / stats.terms_emitted as f64;
        assert!((0.6..1.4).contains(&ratio), "estimate {estimate}, actual {}", stats.terms_emitted);
    }
}
