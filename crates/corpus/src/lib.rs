//! Synthetic corpus generator for the desktop-search benchmark.
//!
//! The paper's benchmark is a directory of ≈51 000 plain-text files (many
//! small files plus five large ones) totalling ≈869 MB, produced by converting
//! word-processor documents to plain text.  That data set is not
//! redistributable, so this crate generates a synthetic corpus with the same
//! statistical shape:
//!
//! * a configurable number of **small files** whose sizes follow a log-normal
//!   distribution (most desktop documents are a few kB, with a long tail),
//! * a handful of **large files** (the paper has five),
//! * natural-language-like text drawn from a synthetic vocabulary with a
//!   **Zipfian** term distribution, so per-file duplicate ratios and index
//!   growth behave like real text.
//!
//! The [`spec::CorpusSpec`] describes a corpus; [`spec::CorpusSpec::paper`]
//! reproduces the paper's benchmark at full scale and
//! [`spec::CorpusSpec::paper_scaled`] produces a laptop-friendly scaled
//! version with identical shape.  [`materialize`] writes the corpus into any
//! file-system sink (in-memory or on disk) and returns a manifest.
//!
//! # Example
//!
//! ```
//! use dsearch_corpus::{CorpusSpec, materialize_to_memfs};
//!
//! let spec = CorpusSpec::tiny();
//! let (fs, manifest) = materialize_to_memfs(&spec, 42);
//! assert_eq!(manifest.file_count() as usize, fs.file_count());
//! assert!(manifest.total_bytes() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod docgen;
pub mod materialize;
pub mod spec;
pub mod vocab;

pub use docgen::DocumentGenerator;
pub use materialize::{
    materialize, materialize_to_memfs, CorpusManifest, CorpusSink, ManifestEntry,
};
pub use spec::CorpusSpec;
pub use vocab::Vocabulary;
