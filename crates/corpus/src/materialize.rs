//! Corpus materialisation.
//!
//! Turns a [`CorpusSpec`] into actual files in a file-system sink and returns
//! a [`CorpusManifest`] describing what was written.  Two sinks are provided:
//! the in-memory [`MemFs`] (used by tests, benchmarks and the simulator) and
//! any writable host directory (via [`DirSink`]) for experiments against a
//! real disk.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use dsearch_vfs::{MemFs, VPath};

use crate::docgen::DocumentGenerator;
use crate::spec::CorpusSpec;

/// Where generated files are written.
pub trait CorpusSink {
    /// Creates `path` with the given contents.
    ///
    /// # Errors
    ///
    /// Returns a description of the failure; materialisation stops at the
    /// first error.
    fn write_file(&mut self, path: &VPath, contents: &[u8]) -> Result<(), String>;
}

impl CorpusSink for MemFs {
    fn write_file(&mut self, path: &VPath, contents: &[u8]) -> Result<(), String> {
        self.add_file(path, contents.to_vec()).map_err(|e| e.to_string())
    }
}

/// A sink that writes below a host directory.
#[derive(Debug)]
pub struct DirSink {
    root: std::path::PathBuf,
}

impl DirSink {
    /// Creates a sink rooted at `root` (created if missing).
    ///
    /// # Errors
    ///
    /// Fails when the root directory cannot be created.
    pub fn new(root: impl Into<std::path::PathBuf>) -> Result<Self, String> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| e.to_string())?;
        Ok(DirSink { root })
    }
}

impl CorpusSink for DirSink {
    fn write_file(&mut self, path: &VPath, contents: &[u8]) -> Result<(), String> {
        let host = path.to_os_path(&self.root);
        if let Some(parent) = host.parent() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        std::fs::write(&host, contents).map_err(|e| e.to_string())
    }
}

/// One generated file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Path of the file.
    pub path: VPath,
    /// Size in bytes.
    pub size: u64,
    /// `true` for one of the corpus's large files.
    pub is_large: bool,
}

/// Description of a materialised corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusManifest {
    entries: Vec<ManifestEntry>,
}

impl CorpusManifest {
    /// All generated files.
    #[must_use]
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Number of files generated.
    #[must_use]
    pub fn file_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Total bytes generated.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }

    /// Number of large files generated.
    #[must_use]
    pub fn large_file_count(&self) -> u64 {
        self.entries.iter().filter(|e| e.is_large).count() as u64
    }

    /// Paths of every file, in generation order.
    #[must_use]
    pub fn paths(&self) -> Vec<VPath> {
        self.entries.iter().map(|e| e.path.clone()).collect()
    }
}

fn directory_for(spec: &CorpusSpec, rng: &mut StdRng, dir_cache: &mut Vec<VPath>) -> VPath {
    if dir_cache.len() < spec.directories {
        // Create a fresh directory, nested under a random existing one to get
        // an unbalanced tree (the paper notes directory trees are unbalanced).
        let parent = if dir_cache.is_empty() || rng.gen_bool(0.35) {
            VPath::root()
        } else {
            dir_cache[rng.gen_range(0..dir_cache.len())].clone()
        };
        let name = format!("dir{:05}", dir_cache.len());
        let dir = if parent.depth() >= spec.max_depth {
            VPath::root().join(&name)
        } else {
            parent.join(&name)
        };
        dir_cache.push(dir.clone());
        dir
    } else {
        dir_cache[rng.gen_range(0..dir_cache.len())].clone()
    }
}

/// Generates the corpus described by `spec` into `sink`.
///
/// Generation is fully deterministic in `(spec, seed)`.
///
/// # Errors
///
/// Returns the spec-validation error or the first sink write error.
pub fn materialize<S: CorpusSink>(
    spec: &CorpusSpec,
    seed: u64,
    sink: &mut S,
) -> Result<CorpusManifest, String> {
    spec.validate()?;
    let gen = DocumentGenerator::new(spec, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let sigma = if spec.small_file_sigma == 0.0 { 1e-9 } else { spec.small_file_sigma };
    let size_dist = LogNormal::new((spec.small_file_median_bytes as f64).ln(), sigma)
        .map_err(|e| format!("invalid log-normal parameters: {e}"))?;

    let mut dir_cache: Vec<VPath> = Vec::with_capacity(spec.directories);
    let mut entries = Vec::with_capacity(spec.file_count());

    for i in 0..spec.small_files {
        let dir = directory_for(spec, &mut rng, &mut dir_cache);
        let size = size_dist.sample(&mut rng).clamp(32.0, 4.0e7) as u64;
        let path = dir.join(format!("doc{i:06}.txt"));
        let contents = gen.generate(size, seed ^ (i as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
        sink.write_file(&path, &contents)?;
        entries.push(ManifestEntry { path, size: contents.len() as u64, is_large: false });
    }

    for i in 0..spec.large_files {
        let path = VPath::new(format!("large/large{i:02}.txt"));
        let contents = gen.generate(
            spec.large_file_bytes,
            seed ^ 0xdead_beef ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        sink.write_file(&path, &contents)?;
        entries.push(ManifestEntry { path, size: contents.len() as u64, is_large: true });
    }

    Ok(CorpusManifest { entries })
}

/// Convenience: materialises `spec` into a fresh [`MemFs`].
///
/// # Panics
///
/// Panics if the spec fails validation (use [`materialize`] directly to handle
/// the error).
#[must_use]
pub fn materialize_to_memfs(spec: &CorpusSpec, seed: u64) -> (MemFs, CorpusManifest) {
    let mut fs = MemFs::new();
    let manifest = materialize(spec, seed, &mut fs).expect("valid corpus spec");
    (fs, manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_vfs::{FileSystem, Walker};

    #[test]
    fn tiny_corpus_materialises_into_memfs() {
        let spec = CorpusSpec::tiny();
        let (fs, manifest) = materialize_to_memfs(&spec, 1);
        assert_eq!(manifest.file_count() as usize, spec.file_count());
        assert_eq!(fs.file_count(), spec.file_count());
        assert_eq!(manifest.large_file_count() as usize, spec.large_files);
        assert_eq!(manifest.total_bytes(), fs.total_bytes());
        assert!(manifest.total_bytes() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec::tiny();
        let (_, m1) = materialize_to_memfs(&spec, 42);
        let (_, m2) = materialize_to_memfs(&spec, 42);
        assert_eq!(m1, m2);
        let (_, m3) = materialize_to_memfs(&spec, 43);
        assert_ne!(m1, m3);
    }

    #[test]
    fn every_manifest_entry_is_readable_with_matching_size() {
        let spec = CorpusSpec::tiny();
        let (fs, manifest) = materialize_to_memfs(&spec, 5);
        for entry in manifest.entries() {
            let data = fs.read(&entry.path).unwrap();
            assert_eq!(data.len() as u64, entry.size);
        }
    }

    #[test]
    fn walker_and_manifest_agree() {
        let spec = CorpusSpec::tiny();
        let (fs, manifest) = materialize_to_memfs(&spec, 9);
        let (files, stats) = Walker::new().walk(&fs, &VPath::root()).unwrap();
        assert_eq!(files.len() as u64, manifest.file_count());
        assert_eq!(stats.total_bytes, manifest.total_bytes());
    }

    #[test]
    fn small_files_dominate_count_and_large_files_dominate_max_size() {
        let spec = CorpusSpec::tiny();
        let (_, manifest) = materialize_to_memfs(&spec, 2);
        let max_small =
            manifest.entries().iter().filter(|e| !e.is_large).map(|e| e.size).max().unwrap();
        let min_large =
            manifest.entries().iter().filter(|e| e.is_large).map(|e| e.size).min().unwrap();
        assert!(min_large >= spec.large_file_bytes);
        assert!(min_large > max_small / 2, "large files should be large relative to small ones");
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let mut spec = CorpusSpec::tiny();
        spec.vocabulary_size = 0;
        let mut fs = MemFs::new();
        assert!(materialize(&spec, 1, &mut fs).is_err());
    }

    #[test]
    fn dir_sink_writes_to_disk() {
        let root = std::env::temp_dir().join(format!("dsearch-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut sink = DirSink::new(&root).unwrap();
        let mut spec = CorpusSpec::tiny();
        spec.small_files = 5;
        spec.large_files = 1;
        spec.large_file_bytes = 4096;
        let manifest = materialize(&spec, 3, &mut sink).unwrap();
        assert_eq!(manifest.file_count(), 6);
        for entry in manifest.entries() {
            let host = entry.path.to_os_path(&root);
            let meta = std::fs::metadata(&host).unwrap();
            assert_eq!(meta.len(), entry.size);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn directory_tree_respects_configured_spread() {
        let mut spec = CorpusSpec::tiny();
        spec.small_files = 60;
        spec.directories = 8;
        let (_, manifest) = materialize_to_memfs(&spec, 4);
        let dirs: std::collections::HashSet<String> = manifest
            .entries()
            .iter()
            .filter(|e| !e.is_large)
            .filter_map(|e| e.path.parent().map(|p| p.into_string()))
            .collect();
        assert!(dirs.len() <= spec.directories + 1);
        assert!(dirs.len() >= 2, "files should be spread over several directories");
    }

    #[test]
    fn manifest_paths_accessor() {
        let spec = CorpusSpec::tiny();
        let (_, manifest) = materialize_to_memfs(&spec, 8);
        assert_eq!(manifest.paths().len() as u64, manifest.file_count());
    }
}
