//! Corpus specifications.
//!
//! A [`CorpusSpec`] fully describes a synthetic benchmark corpus.  The
//! constants in [`CorpusSpec::paper`] encode the paper's benchmark: about
//! 51 000 ASCII files — many small files plus five large ones — totalling
//! roughly 869 MB of plain text.

use serde::{Deserialize, Serialize};

/// Parameters of a synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Number of small files.
    pub small_files: usize,
    /// Median size of a small file, in bytes.
    pub small_file_median_bytes: u64,
    /// Log-normal shape parameter (sigma) of small-file sizes.
    pub small_file_sigma: f64,
    /// Number of large files (the paper's corpus has five).
    pub large_files: usize,
    /// Size of each large file, in bytes.
    pub large_file_bytes: u64,
    /// Vocabulary size (distinct terms available to the generator).
    pub vocabulary_size: usize,
    /// Zipf exponent of the term distribution (≈1.0 for natural language).
    pub zipf_exponent: f64,
    /// Number of directories the small files are spread across.
    pub directories: usize,
    /// Maximum nesting depth of the directory tree.
    pub max_depth: usize,
}

impl CorpusSpec {
    /// The paper's benchmark at full scale: ≈51 000 files, ≈869 MB.
    ///
    /// With five large files at 32 MiB each (≈160 MiB total) the remaining
    /// ≈709 MB is spread over 50 995 small files, giving a mean small-file
    /// size of ≈14 kB, which matches "many small files".
    #[must_use]
    pub fn paper() -> Self {
        CorpusSpec {
            small_files: 50_995,
            small_file_median_bytes: 9_000,
            small_file_sigma: 0.9,
            large_files: 5,
            large_file_bytes: 32 * 1024 * 1024,
            vocabulary_size: 200_000,
            zipf_exponent: 1.05,
            directories: 1_200,
            max_depth: 6,
        }
    }

    /// The paper's benchmark scaled by `scale` (0 < scale ≤ 1) while keeping
    /// its shape: the file-count and byte totals shrink proportionally, the
    /// size *distribution* and the small/large mix stay the same.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    #[must_use]
    pub fn paper_scaled(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1], got {scale}");
        let paper = Self::paper();
        let small_files = ((paper.small_files as f64 * scale).round() as usize).max(8);
        let large_files = if scale >= 0.01 { paper.large_files } else { 2 };
        let large_file_bytes =
            ((paper.large_file_bytes as f64 * scale).round() as u64).max(16 * 1024);
        let vocabulary_size =
            ((paper.vocabulary_size as f64 * scale.sqrt()).round() as usize).max(2_000);
        let directories = ((paper.directories as f64 * scale).round() as usize).max(4);
        CorpusSpec {
            small_files,
            large_files,
            large_file_bytes,
            vocabulary_size,
            directories,
            ..paper
        }
    }

    /// A tiny corpus for unit tests (a few dozen files, tens of kB).
    #[must_use]
    pub fn tiny() -> Self {
        CorpusSpec {
            small_files: 30,
            small_file_median_bytes: 400,
            small_file_sigma: 0.7,
            large_files: 2,
            large_file_bytes: 8 * 1024,
            vocabulary_size: 2_000,
            zipf_exponent: 1.05,
            directories: 5,
            max_depth: 3,
        }
    }

    /// Total number of files the corpus will contain.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.small_files + self.large_files
    }

    /// Expected total corpus size in bytes.
    ///
    /// The log-normal mean is `median * exp(sigma²/2)`.
    #[must_use]
    pub fn expected_bytes(&self) -> u64 {
        let mean_small =
            self.small_file_median_bytes as f64 * (self.small_file_sigma.powi(2) / 2.0).exp();
        (self.small_files as f64 * mean_small) as u64
            + self.large_files as u64 * self.large_file_bytes
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.small_files == 0 && self.large_files == 0 {
            return Err("corpus must contain at least one file".into());
        }
        if self.small_files > 0 && self.small_file_median_bytes == 0 {
            return Err("small_file_median_bytes must be positive".into());
        }
        if self.large_files > 0 && self.large_file_bytes == 0 {
            return Err("large_file_bytes must be positive".into());
        }
        if self.vocabulary_size == 0 {
            return Err("vocabulary_size must be positive".into());
        }
        if !(self.zipf_exponent.is_finite()) || self.zipf_exponent <= 0.0 {
            return Err(format!("zipf_exponent must be positive, got {}", self.zipf_exponent));
        }
        if !(self.small_file_sigma.is_finite()) || self.small_file_sigma < 0.0 {
            return Err(format!(
                "small_file_sigma must be non-negative, got {}",
                self.small_file_sigma
            ));
        }
        if self.directories == 0 {
            return Err("directories must be positive".into());
        }
        if self.max_depth == 0 {
            return Err("max_depth must be positive".into());
        }
        Ok(())
    }
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self::paper_scaled(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_headline_numbers() {
        let spec = CorpusSpec::paper();
        assert_eq!(spec.file_count(), 51_000);
        let bytes = spec.expected_bytes();
        // ≈869 MB (decimal). Allow ±12 %.
        let target = 869_000_000f64;
        let ratio = bytes as f64 / target;
        assert!((0.88..1.12).contains(&ratio), "expected ≈869 MB, got {bytes} ({ratio:.2}×)");
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn scaled_spec_shrinks_proportionally() {
        let full = CorpusSpec::paper();
        let tenth = CorpusSpec::paper_scaled(0.1);
        assert!(tenth.small_files < full.small_files);
        assert!(tenth.expected_bytes() < full.expected_bytes());
        // Roughly 10 % of the byte volume (large files scale too).
        let ratio = tenth.expected_bytes() as f64 / full.expected_bytes() as f64;
        assert!((0.05..0.2).contains(&ratio), "ratio {ratio}");
        assert!(tenth.validate().is_ok());
    }

    #[test]
    fn full_scale_is_identity() {
        assert_eq!(CorpusSpec::paper_scaled(1.0).small_files, CorpusSpec::paper().small_files);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        let _ = CorpusSpec::paper_scaled(0.0);
    }

    #[test]
    fn tiny_spec_is_valid() {
        let spec = CorpusSpec::tiny();
        assert!(spec.validate().is_ok());
        assert!(spec.file_count() < 100);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut spec = CorpusSpec::tiny();
        spec.small_files = 0;
        spec.large_files = 0;
        assert!(spec.validate().is_err());

        let mut spec = CorpusSpec::tiny();
        spec.vocabulary_size = 0;
        assert!(spec.validate().is_err());

        let mut spec = CorpusSpec::tiny();
        spec.zipf_exponent = -1.0;
        assert!(spec.validate().is_err());

        let mut spec = CorpusSpec::tiny();
        spec.directories = 0;
        assert!(spec.validate().is_err());

        let mut spec = CorpusSpec::tiny();
        spec.small_file_median_bytes = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn default_is_a_valid_scaled_paper_spec() {
        let spec = CorpusSpec::default();
        assert!(spec.validate().is_ok());
        assert!(spec.file_count() >= 100);
    }

    #[test]
    fn serde_roundtrip() {
        let spec = CorpusSpec::tiny();
        let json = serde_json::to_string(&spec).unwrap();
        let back: CorpusSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
