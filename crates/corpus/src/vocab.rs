//! Synthetic vocabulary generation.
//!
//! Documents are built from a fixed vocabulary of pseudo-English words.  Words
//! are generated deterministically from a seed by gluing syllables together,
//! so two corpora generated with the same spec and seed are byte-identical —
//! a requirement for reproducible experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Syllables used to build pseudo-words.
const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p",
    "pl", "pr", "qu", "r", "s", "sc", "sh", "sl", "sp", "st", "str", "t", "th", "tr", "v", "w",
    "z",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "ou"];
const CODAS: &[&str] = &[
    "", "b", "ck", "d", "g", "l", "ll", "m", "n", "nd", "ng", "nt", "p", "r", "rd", "rk", "rm",
    "s", "ss", "st", "t", "tch", "x",
];

/// A deterministic synthetic vocabulary.
///
/// Rank 0 is the most frequent word under the Zipf distribution used by the
/// document generator.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
}

impl Vocabulary {
    /// Generates `size` distinct pseudo-words from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn generate(size: usize, seed: u64) -> Self {
        assert!(size > 0, "vocabulary size must be positive");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_u64);
        let mut words = Vec::with_capacity(size);
        let mut seen = std::collections::HashSet::with_capacity(size * 2);
        while words.len() < size {
            let syllables = rng.gen_range(1..=4);
            let mut w = String::new();
            for _ in 0..syllables {
                w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
                w.push_str(NUCLEI[rng.gen_range(0..NUCLEI.len())]);
                w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
            }
            if w.len() >= 2 && seen.insert(w.clone()) {
                words.push(w);
            }
        }
        Vocabulary { words }
    }

    /// Number of words in the vocabulary.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` when the vocabulary is empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at frequency rank `rank` (0 = most frequent).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()`.
    #[must_use]
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank]
    }

    /// All words, by rank.
    #[must_use]
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Average word length in bytes (used by the cost model to convert bytes
    /// to expected term counts).
    #[must_use]
    pub fn mean_word_len(&self) -> f64 {
        if self.words.is_empty() {
            return 0.0;
        }
        self.words.iter().map(|w| w.len() as f64).sum::<f64>() / self.words.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_of_distinct_words() {
        let v = Vocabulary::generate(1000, 7);
        assert_eq!(v.len(), 1000);
        let distinct: std::collections::HashSet<&str> =
            v.words().iter().map(String::as_str).collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Vocabulary::generate(500, 99);
        let b = Vocabulary::generate(500, 99);
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Vocabulary::generate(500, 1);
        let b = Vocabulary::generate(500, 2);
        assert_ne!(a.words(), b.words());
    }

    #[test]
    fn words_are_lowercase_ascii_terms() {
        let v = Vocabulary::generate(2000, 3);
        for w in v.words() {
            assert!(w.len() >= 2);
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()), "bad word {w:?}");
        }
    }

    #[test]
    fn mean_word_len_is_reasonable() {
        let v = Vocabulary::generate(1000, 11);
        let mean = v.mean_word_len();
        assert!(mean > 2.0 && mean < 20.0, "mean word length {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = Vocabulary::generate(0, 1);
    }
}
