//! `dsearch` — a reproduction of Meder & Tichy, *"Parallelizing an Index
//! Generator for Desktop Search"* (Karlsruhe Reports in Informatics 2010-9).
//!
//! This facade crate re-exports the whole system so applications can depend on
//! a single crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`text`] | `dsearch-text` | FNV hashing, hash containers, tokenizer, word lists |
//! | [`vfs`] | `dsearch-vfs` | file-system abstraction (memory, OS, counting) and the directory walker |
//! | [`corpus`] | `dsearch-corpus` | synthetic benchmark corpus generator (the paper's 51 000-file / 869 MB workload) |
//! | [`index`] | `dsearch-index` | inverted index: shared/locked, replicated, joined, sharded |
//! | [`core`] | `dsearch-core` | the three-stage parallel index generator and its three implementations |
//! | [`query`] | `dsearch-query` | boolean search over single or replicated indices |
//! | [`obs`] | `dsearch-obs` | observability: metrics registry, query tracing, slow-query log |
//! | [`server`] | `dsearch-server` | concurrent query serving: snapshots, worker pool, cache, load generator |
//! | [`sim`] | `dsearch-sim` | calibrated models of the paper's 4-, 8- and 32-core platforms |
//! | [`autotune`] | `dsearch-autotune` | configuration auto-tuner (exhaustive, hill-climbing, random) |
//!
//! # Quick start
//!
//! ```
//! use dsearch::corpus::{materialize_to_memfs, CorpusSpec};
//! use dsearch::core::{Configuration, Implementation, IndexGenerator};
//! use dsearch::query::{Query, SearchBackend, SingleIndexSearcher};
//! use dsearch::vfs::VPath;
//!
//! // 1. Create (or point at) a corpus.
//! let (fs, _manifest) = materialize_to_memfs(&CorpusSpec::tiny(), 42);
//!
//! // 2. Generate the index with one of the paper's parallel implementations.
//! let run = IndexGenerator::default()
//!     .run(&fs, &VPath::root(), Implementation::ReplicateJoin, Configuration::new(2, 0, 0))
//!     .expect("index generation succeeds");
//! let (index, docs) = run.outcome.into_single_index();
//!
//! // 3. Search it.
//! let searcher = SingleIndexSearcher::new(&index, &docs);
//! let results = searcher.search(&Query::parse("the").unwrap_or_else(|_| Query::parse("a").unwrap()));
//! let _ = results.len();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Text substrate: FNV hashing, hash containers, tokenizer, word lists.
pub mod text {
    pub use dsearch_text::*;
}

/// File-system substrate: virtual paths, in-memory/OS/counting file systems,
/// directory walker.
pub mod vfs {
    pub use dsearch_vfs::*;
}

/// Synthetic corpus generation matching the paper's benchmark workload.
pub mod corpus {
    pub use dsearch_corpus::*;
}

/// File-format detection and plain-text extraction (the paper's "more file
/// formats" future-work item).
pub mod formats {
    pub use dsearch_formats::*;
}

/// The inverted index and its shared / replicated / joined variants.
pub mod index {
    pub use dsearch_index::*;
}

/// On-disk index persistence and incremental re-indexing.
pub mod persist {
    pub use dsearch_persist::*;
}

/// The parallel index generator (stages, distribution strategies, the three
/// implementations, run reports).
pub mod core {
    pub use dsearch_core::*;
}

/// Boolean search over single or replicated indices.
pub mod query {
    pub use dsearch_query::*;
}

/// Observability: the process-wide metrics registry behind `!metrics`,
/// per-query stage traces, and the slow-query log behind `!trace`/`!slow`.
pub mod obs {
    pub use dsearch_obs::*;
}

/// Concurrent query serving: snapshots with atomic reload, the worker-pool
/// query engine, the sharded result cache and the load generator.
pub mod server {
    pub use dsearch_server::*;
}

/// Calibrated platform models of the paper's three Intel testbeds.
pub mod sim {
    pub use dsearch_sim::*;
}

/// Configuration auto-tuner.
pub mod autotune {
    pub use dsearch_autotune::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_are_wired() {
        // One symbol from each sub-crate proves the re-exports resolve.
        let _ = crate::text::fnv1a_64(b"smoke");
        let _ = crate::vfs::VPath::new("a/b");
        let _ = crate::corpus::CorpusSpec::tiny();
        let _ = crate::formats::FormatRegistry::with_builtins();
        let _ = crate::index::InMemoryIndex::new();
        let _ = crate::persist::FileSignature::from_bytes(b"smoke");
        let _ = crate::core::Configuration::new(1, 0, 0);
        let _ = crate::query::Query::parse("smoke").unwrap();
        let _ = crate::obs::Stage::Parse.as_str();
        let _ = crate::server::EngineConfig::default();
        let _ = crate::sim::PlatformModel::four_core();
        let _ = crate::autotune::ConfigSpace::for_cores(4);
    }
}
