//! CSV / TSV text extraction.
//!
//! Spreadsheet-style exports are a large share of real desktop corpora.  The
//! extractor unwraps quoted fields (including escaped quotes), replaces field
//! separators with spaces so cell contents stay separate terms, and keeps the
//! header row — column names are things users search for.

/// Extracts the searchable text of a CSV document.
///
/// `separator` is usually `,` but `\t` handles TSV files.
///
/// # Example
///
/// ```
/// use dsearch_formats::csv::extract_text;
///
/// let csv = "name,note\nreport,\"quarterly, final\"\n";
/// let text = extract_text(csv, b',');
/// assert!(text.contains("quarterly, final"));
/// assert!(text.contains("report"));
/// ```
#[must_use]
pub fn extract_text(csv: &str, separator: u8) -> String {
    let mut out = String::with_capacity(csv.len());
    let mut in_quotes = false;
    let bytes = csv.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'"' => {
                if in_quotes && i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                    // Escaped quote inside a quoted field.
                    out.push('"');
                    i += 2;
                    continue;
                }
                in_quotes = !in_quotes;
                i += 1;
            }
            _ if b == separator && !in_quotes => {
                out.push(' ');
                i += 1;
            }
            b'\r' => {
                i += 1;
            }
            _ => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

/// Extracts text from a CSV document, guessing the separator.
///
/// Tab-separated files are recognised by a tab in the first line; everything
/// else is treated as comma-separated.
#[must_use]
pub fn extract_text_auto(csv: &str) -> String {
    let first_line = csv.lines().next().unwrap_or("");
    let separator = if first_line.contains('\t') { b'\t' } else { b',' };
    extract_text(csv, separator)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separators_become_spaces() {
        let text = extract_text("a,b,c\n1,2,3\n", b',');
        assert_eq!(text, "a b c\n1 2 3\n");
    }

    #[test]
    fn quoted_fields_are_unwrapped() {
        let text = extract_text("id,comment\n1,\"hello, world\"\n", b',');
        assert!(text.contains("hello, world"));
        assert!(!text.contains('"'));
    }

    #[test]
    fn escaped_quotes_are_preserved() {
        let text = extract_text("say,\"he said \"\"hi\"\" loudly\"\n", b',');
        assert!(text.contains("he said \"hi\" loudly"));
    }

    #[test]
    fn newlines_inside_quotes_are_kept() {
        let text = extract_text("note\n\"line one\nline two\"\n", b',');
        assert!(text.contains("line one\nline two"));
    }

    #[test]
    fn carriage_returns_are_dropped() {
        let text = extract_text("a,b\r\nc,d\r\n", b',');
        assert_eq!(text, "a b\nc d\n");
    }

    #[test]
    fn auto_detects_tsv() {
        let text = extract_text_auto("col1\tcol2\nval1\tval2\n");
        assert_eq!(text, "col1 col2\nval1 val2\n");
        // Commas in a TSV stay literal.
        let text = extract_text_auto("a\tb,c\n");
        assert_eq!(text, "a b,c\n");
    }

    #[test]
    fn auto_defaults_to_comma() {
        assert_eq!(extract_text_auto("a,b\n"), "a b\n");
        assert_eq!(extract_text_auto(""), "");
    }
}
