//! Byte decoding and ASCII transliteration.
//!
//! The paper's tokenizer (and ours, in `dsearch-text`) only treats ASCII
//! letters and digits as term characters, so accented characters in real
//! desktop documents would silently split terms ("café" → "caf").  The
//! transliteration pass here maps the common Latin-1 / Latin Extended-A
//! letters onto their base ASCII letters before tokenisation, both for
//! ISO-8859-1 bytes and for their UTF-8 encodings, so the resulting index
//! terms match what a user would type into a search box.

/// Statistics of one decode pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DecodeStats {
    /// Bytes examined.
    pub bytes_in: u64,
    /// Bytes produced.
    pub bytes_out: u64,
    /// Non-ASCII characters transliterated to ASCII letters.
    pub transliterated: u64,
    /// Non-ASCII characters with no mapping (replaced by a space).
    pub dropped: u64,
}

/// Maps one Unicode scalar to its ASCII transliteration, if any.
///
/// Covers the Latin-1 Supplement letters and a handful of common Latin
/// Extended-A letters (œ, ß, ligatures are expanded to two letters).
fn transliterate_char(c: char) -> Option<&'static str> {
    let out = match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'ā' | 'ă' => "a",
        'À' | 'Á' | 'Â' | 'Ã' | 'Ä' | 'Å' | 'Ā' => "A",
        'è' | 'é' | 'ê' | 'ë' | 'ē' | 'ĕ' | 'ė' | 'ę' => "e",
        'È' | 'É' | 'Ê' | 'Ë' | 'Ē' => "E",
        'ì' | 'í' | 'î' | 'ï' | 'ī' => "i",
        'Ì' | 'Í' | 'Î' | 'Ï' => "I",
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' | 'ō' => "o",
        'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ö' | 'Ø' => "O",
        'ù' | 'ú' | 'û' | 'ü' | 'ū' => "u",
        'Ù' | 'Ú' | 'Û' | 'Ü' => "U",
        'ý' | 'ÿ' => "y",
        'Ý' => "Y",
        'ñ' | 'ń' => "n",
        'Ñ' => "N",
        'ç' | 'ć' | 'č' => "c",
        'Ç' | 'Č' => "C",
        'š' | 'ś' => "s",
        'Š' => "S",
        'ž' | 'ź' | 'ż' => "z",
        'Ž' => "Z",
        'ß' => "ss",
        'œ' => "oe",
        'Œ' => "OE",
        'æ' => "ae",
        'Æ' => "AE",
        'ð' => "d",
        'þ' => "th",
        'ł' => "l",
        'đ' => "d",
        _ => return None,
    };
    Some(out)
}

/// Decodes a byte buffer into ASCII text.
///
/// The buffer is treated as UTF-8 when it decodes cleanly and as ISO-8859-1
/// (Latin-1) otherwise.  ASCII bytes pass through untouched; everything else
/// is transliterated via the accent table or replaced by a single space so
/// term boundaries are preserved.
///
/// # Example
///
/// ```
/// use dsearch_formats::transliterate_to_ascii;
///
/// let (text, stats) = transliterate_to_ascii("Café Zürich".as_bytes());
/// assert_eq!(text, "Cafe Zurich");
/// assert_eq!(stats.transliterated, 2);
/// ```
#[must_use]
pub fn transliterate_to_ascii(bytes: &[u8]) -> (String, DecodeStats) {
    let mut stats = DecodeStats { bytes_in: bytes.len() as u64, ..DecodeStats::default() };
    if bytes.is_ascii() {
        stats.bytes_out = bytes.len() as u64;
        return (String::from_utf8_lossy(bytes).into_owned(), stats);
    }
    let decoded: String = match std::str::from_utf8(bytes) {
        Ok(s) => s.to_owned(),
        // Latin-1: every byte maps to the code point of the same value.
        Err(_) => bytes.iter().map(|&b| b as char).collect(),
    };
    let mut out = String::with_capacity(decoded.len());
    for c in decoded.chars() {
        if c.is_ascii() {
            out.push(c);
        } else if let Some(mapped) = transliterate_char(c) {
            out.push_str(mapped);
            stats.transliterated += 1;
        } else {
            out.push(' ');
            stats.dropped += 1;
        }
    }
    stats.bytes_out = out.len() as u64;
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_passes_through_unchanged() {
        let (text, stats) = transliterate_to_ascii(b"plain ascii text 123");
        assert_eq!(text, "plain ascii text 123");
        assert_eq!(stats.transliterated, 0);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.bytes_in, stats.bytes_out);
    }

    #[test]
    fn utf8_accents_are_transliterated() {
        let (text, stats) = transliterate_to_ascii("résumé naïve São Paulo".as_bytes());
        assert_eq!(text, "resume naive Sao Paulo");
        assert_eq!(stats.transliterated, 4);
    }

    #[test]
    fn latin1_bytes_are_transliterated() {
        // "Müller" in ISO-8859-1: 0xFC is ü.
        let latin1 = [b'M', 0xFC, b'l', b'l', b'e', b'r'];
        let (text, stats) = transliterate_to_ascii(&latin1);
        assert_eq!(text, "Muller");
        assert_eq!(stats.transliterated, 1);
    }

    #[test]
    fn ligatures_expand_to_multiple_letters() {
        let (text, _) = transliterate_to_ascii("straße cœur Æsir".as_bytes());
        assert_eq!(text, "strasse coeur AEsir");
    }

    #[test]
    fn unmapped_characters_become_spaces() {
        let (text, stats) = transliterate_to_ascii("data → index 漢字".as_bytes());
        assert_eq!(text, "data   index   ");
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.transliterated, 0);
    }

    #[test]
    fn term_boundaries_are_preserved_for_tokenisation() {
        // The replacement must never glue two words together.
        let (text, _) = transliterate_to_ascii("alpha→beta".as_bytes());
        assert_eq!(text, "alpha beta");
    }
}
