//! Format detection.
//!
//! Detection is a two-step process, mirroring what desktop indexers do in
//! practice:
//!
//! 1. the file extension is consulted first (cheap and usually right);
//! 2. when the extension is missing or unknown, the first few kilobytes of
//!    content are sniffed ([`sniff_content`]).
//!
//! The result records which of the two signals decided the outcome so callers
//! (and the format statistics in the run report) can tell how often sniffing
//! had to be used.

use crate::format::DocumentFormat;

/// How many leading bytes content sniffing examines.
const SNIFF_WINDOW: usize = 4096;

/// Which signal produced a detection result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatHint {
    /// The file extension determined the format.
    Extension,
    /// The leading bytes of the content determined the format.
    Content,
    /// Neither signal matched; the default (plain text) was assumed.
    Default,
}

/// Extracts the lowercase extension of a path-like string, if any.
fn extension_of(path: &str) -> Option<String> {
    let name = path.rsplit(['/', '\\']).next().unwrap_or(path);
    let (stem, ext) = name.rsplit_once('.')?;
    if stem.is_empty() || ext.is_empty() {
        return None;
    }
    Some(ext.to_ascii_lowercase())
}

/// Sniffs a document's format from its leading bytes.
///
/// The checks, in order:
///
/// * a NUL byte or a very high proportion of non-ASCII control bytes →
///   [`DocumentFormat::Binary`];
/// * a `<?xml`, `<!DOCTYPE html`, `<html` or `<wpx` prefix → HTML or WPX;
/// * a leading Markdown heading (`# `) or horizontal rule → Markdown;
/// * several comma-separated rows of equal field count → CSV.
///
/// Anything else is reported as plain text.
#[must_use]
pub fn sniff_content(bytes: &[u8]) -> DocumentFormat {
    let window = &bytes[..bytes.len().min(SNIFF_WINDOW)];
    if window.is_empty() {
        return DocumentFormat::PlainText;
    }
    if looks_binary(window) {
        return DocumentFormat::Binary;
    }
    let text: String = window.iter().map(|&b| b as char).collect();
    let trimmed = text.trim_start();
    let lower = trimmed.to_ascii_lowercase();
    if lower.starts_with("<wpx") {
        return DocumentFormat::Wpx;
    }
    if lower.starts_with("<?xml")
        || lower.starts_with("<!doctype html")
        || lower.starts_with("<html")
        || lower.starts_with("<head")
        || lower.starts_with("<body")
    {
        return DocumentFormat::Html;
    }
    if looks_markdown(trimmed) {
        return DocumentFormat::Markdown;
    }
    if looks_csv(trimmed) {
        return DocumentFormat::Csv;
    }
    DocumentFormat::PlainText
}

fn looks_binary(window: &[u8]) -> bool {
    if window.contains(&0) {
        return true;
    }
    let suspicious =
        window.iter().filter(|&&b| b < 0x09 || (b > 0x0d && b < 0x20) || b == 0x7f).count();
    // More than 5 % control characters is not text.
    suspicious * 20 > window.len()
}

fn looks_markdown(text: &str) -> bool {
    let mut heading_lines = 0usize;
    let mut list_lines = 0usize;
    let mut lines = 0usize;
    for line in text.lines().take(40) {
        let line = line.trim_start();
        if line.is_empty() {
            continue;
        }
        lines += 1;
        if line.starts_with('#') && line.chars().take_while(|&c| c == '#').count() <= 6 {
            heading_lines += 1;
        }
        if line.starts_with("- ") || line.starts_with("* ") || line.starts_with("```") {
            list_lines += 1;
        }
    }
    lines > 0 && (heading_lines + list_lines) * 3 >= lines
}

fn looks_csv(text: &str) -> bool {
    let mut field_counts = Vec::new();
    for line in text.lines().take(8) {
        if line.trim().is_empty() {
            continue;
        }
        let fields = line.matches(',').count() + 1;
        field_counts.push(fields);
    }
    field_counts.len() >= 3
        && field_counts[0] >= 2
        && field_counts.iter().all(|&c| c == field_counts[0])
}

/// Detects the format of a document from its path and contents.
///
/// Returns the detected format together with the [`FormatHint`] that decided
/// it.
///
/// # Example
///
/// ```
/// use dsearch_formats::{detect_format, DocumentFormat, FormatHint};
///
/// let (format, hint) = detect_format("notes.md", b"# heading\nbody");
/// assert_eq!(format, DocumentFormat::Markdown);
/// assert_eq!(hint, FormatHint::Extension);
///
/// let (format, hint) = detect_format("no_extension", b"<html><body>x</body></html>");
/// assert_eq!(format, DocumentFormat::Html);
/// assert_eq!(hint, FormatHint::Content);
/// ```
#[must_use]
pub fn detect_format(path: &str, bytes: &[u8]) -> (DocumentFormat, FormatHint) {
    if let Some(ext) = extension_of(path) {
        if let Some(format) = DocumentFormat::from_extension(&ext) {
            return (format, FormatHint::Extension);
        }
    }
    let sniffed = sniff_content(bytes);
    if sniffed == DocumentFormat::PlainText {
        (DocumentFormat::PlainText, FormatHint::Default)
    } else {
        (sniffed, FormatHint::Content)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_extraction_handles_paths_and_dots() {
        assert_eq!(extension_of("a/b/c/report.TXT").as_deref(), Some("txt"));
        assert_eq!(extension_of("archive.tar.gz").as_deref(), Some("gz"));
        assert_eq!(extension_of("noext"), None);
        assert_eq!(extension_of(".hidden"), None);
        assert_eq!(extension_of("trailingdot."), None);
        assert_eq!(extension_of("win\\path\\doc.md").as_deref(), Some("md"));
    }

    #[test]
    fn extension_wins_over_content() {
        let (format, hint) = detect_format("data.csv", b"<html>not really</html>");
        assert_eq!(format, DocumentFormat::Csv);
        assert_eq!(hint, FormatHint::Extension);
    }

    #[test]
    fn binary_content_is_detected() {
        let mut data = b"text with a hole ".to_vec();
        data.push(0);
        data.extend_from_slice(b" more");
        assert_eq!(sniff_content(&data), DocumentFormat::Binary);
        let (format, hint) = detect_format("mystery", &data);
        assert_eq!(format, DocumentFormat::Binary);
        assert_eq!(hint, FormatHint::Content);
    }

    #[test]
    fn control_character_density_marks_binary() {
        let data: Vec<u8> = (0..200).map(|i| if i % 3 == 0 { 0x01 } else { b'a' }).collect();
        assert_eq!(sniff_content(&data), DocumentFormat::Binary);
    }

    #[test]
    fn html_and_wpx_prefixes_are_sniffed() {
        assert_eq!(sniff_content(b"  <!DOCTYPE html><html>"), DocumentFormat::Html);
        assert_eq!(sniff_content(b"<?xml version=\"1.0\"?><doc/>"), DocumentFormat::Html);
        assert_eq!(sniff_content(b"<wpx version=\"1\"><para>x</para></wpx>"), DocumentFormat::Wpx);
    }

    #[test]
    fn markdown_heuristic_needs_markup_density() {
        let md = "# Title\n\n- item one\n- item two\n\n## Section\nbody text\n";
        assert_eq!(sniff_content(md.as_bytes()), DocumentFormat::Markdown);
        let prose = "This is a perfectly ordinary paragraph of text\nwith several lines\nand no markup at all\n";
        assert_eq!(sniff_content(prose.as_bytes()), DocumentFormat::PlainText);
    }

    #[test]
    fn csv_heuristic_requires_consistent_field_counts() {
        let csv = "name,size,kind\na.txt,10,text\nb.txt,20,text\nc.txt,30,text\n";
        assert_eq!(sniff_content(csv.as_bytes()), DocumentFormat::Csv);
        let ragged = "name,size\nonly one field here\nanother,2,3\nrow,4\n";
        assert_eq!(sniff_content(ragged.as_bytes()), DocumentFormat::PlainText);
    }

    #[test]
    fn empty_and_unknown_default_to_plain_text() {
        let (format, hint) = detect_format("unknown.zzz", b"just words here");
        assert_eq!(format, DocumentFormat::PlainText);
        assert_eq!(hint, FormatHint::Default);
        assert_eq!(sniff_content(b""), DocumentFormat::PlainText);
    }

    #[test]
    fn sniffing_only_looks_at_the_window() {
        // A NUL byte far past the sniff window must not flip the decision.
        let mut data = vec![b'a'; SNIFF_WINDOW + 10];
        data.push(0);
        assert_eq!(sniff_content(&data), DocumentFormat::PlainText);
    }
}
