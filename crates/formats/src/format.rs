//! The set of document formats the extractor understands.

use serde::{Deserialize, Serialize};

/// A document format recognised by the format-aware term extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DocumentFormat {
    /// Plain ASCII / UTF-8 text (the paper's benchmark format).
    #[default]
    PlainText,
    /// Markdown markup.
    Markdown,
    /// HTML or XHTML markup.
    Html,
    /// Comma-separated values.
    Csv,
    /// The `dsearch` word-processor container format (a stand-in for the
    /// proprietary word-processor documents the paper's corpus was converted
    /// from).
    Wpx,
    /// Program source code (identifiers are split into their component words).
    SourceCode,
    /// Binary data; no text is extracted.
    Binary,
}

impl DocumentFormat {
    /// Every recognised format, in a stable order.
    pub const ALL: [DocumentFormat; 7] = [
        DocumentFormat::PlainText,
        DocumentFormat::Markdown,
        DocumentFormat::Html,
        DocumentFormat::Csv,
        DocumentFormat::Wpx,
        DocumentFormat::SourceCode,
        DocumentFormat::Binary,
    ];

    /// The canonical file extension for the format (without the dot).
    #[must_use]
    pub fn canonical_extension(self) -> &'static str {
        match self {
            DocumentFormat::PlainText => "txt",
            DocumentFormat::Markdown => "md",
            DocumentFormat::Html => "html",
            DocumentFormat::Csv => "csv",
            DocumentFormat::Wpx => "wpx",
            DocumentFormat::SourceCode => "rs",
            DocumentFormat::Binary => "bin",
        }
    }

    /// Maps a file extension (lowercase, without the dot) to a format.
    ///
    /// Returns `None` for extensions this crate has no special handling for;
    /// callers usually fall back to content sniffing and finally to
    /// [`DocumentFormat::PlainText`].
    #[must_use]
    pub fn from_extension(ext: &str) -> Option<DocumentFormat> {
        let format = match ext {
            "txt" | "text" | "log" | "readme" => DocumentFormat::PlainText,
            "md" | "markdown" | "mdown" => DocumentFormat::Markdown,
            "html" | "htm" | "xhtml" | "xml" => DocumentFormat::Html,
            "csv" | "tsv" => DocumentFormat::Csv,
            "wpx" => DocumentFormat::Wpx,
            "rs" | "c" | "h" | "cpp" | "hpp" | "cc" | "java" | "cs" | "py" | "js" | "ts" | "go"
            | "rb" | "sh" => DocumentFormat::SourceCode,
            "bin" | "exe" | "dll" | "so" | "o" | "a" | "png" | "jpg" | "jpeg" | "gif" | "zip"
            | "gz" | "pdf" => DocumentFormat::Binary,
            _ => return None,
        };
        Some(format)
    }

    /// Whether any text at all can be extracted from the format.
    #[must_use]
    pub fn is_indexable(self) -> bool {
        !matches!(self, DocumentFormat::Binary)
    }

    /// Whether the format needs a conversion pass before tokenisation
    /// (everything except plain text and binary).
    #[must_use]
    pub fn needs_extraction(self) -> bool {
        !matches!(self, DocumentFormat::PlainText | DocumentFormat::Binary)
    }
}

impl std::fmt::Display for DocumentFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DocumentFormat::PlainText => "plain text",
            DocumentFormat::Markdown => "markdown",
            DocumentFormat::Html => "html",
            DocumentFormat::Csv => "csv",
            DocumentFormat::Wpx => "wpx",
            DocumentFormat::SourceCode => "source code",
            DocumentFormat::Binary => "binary",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_round_trips_for_canonical_extensions() {
        for format in DocumentFormat::ALL {
            assert_eq!(
                DocumentFormat::from_extension(format.canonical_extension()),
                Some(format),
                "canonical extension of {format} should map back to it"
            );
        }
    }

    #[test]
    fn common_aliases_are_recognised() {
        assert_eq!(DocumentFormat::from_extension("htm"), Some(DocumentFormat::Html));
        assert_eq!(DocumentFormat::from_extension("markdown"), Some(DocumentFormat::Markdown));
        assert_eq!(DocumentFormat::from_extension("tsv"), Some(DocumentFormat::Csv));
        assert_eq!(DocumentFormat::from_extension("cpp"), Some(DocumentFormat::SourceCode));
        assert_eq!(DocumentFormat::from_extension("pdf"), Some(DocumentFormat::Binary));
        assert_eq!(DocumentFormat::from_extension("docx"), None);
    }

    #[test]
    fn indexability_and_extraction_flags() {
        assert!(DocumentFormat::PlainText.is_indexable());
        assert!(!DocumentFormat::PlainText.needs_extraction());
        assert!(DocumentFormat::Html.needs_extraction());
        assert!(!DocumentFormat::Binary.is_indexable());
        assert!(!DocumentFormat::Binary.needs_extraction());
    }

    #[test]
    fn display_names_are_lowercase() {
        for format in DocumentFormat::ALL {
            let name = format.to_string();
            assert_eq!(name, name.to_lowercase());
            assert!(!name.is_empty());
        }
    }

    #[test]
    fn serde_round_trip() {
        for format in DocumentFormat::ALL {
            let json = serde_json::to_string(&format).unwrap();
            let back: DocumentFormat = serde_json::from_str(&json).unwrap();
            assert_eq!(back, format);
        }
    }
}
