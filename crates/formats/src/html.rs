//! HTML / XML text extraction.
//!
//! A single-pass tag stripper: element markup is removed, the bodies of
//! `<script>` and `<style>` elements are dropped entirely, comments are
//! skipped and the common character entities are decoded.  The goal is not a
//! conforming HTML parser but the text a desktop-search user would expect to
//! find terms from — exactly the trade-off real desktop indexers make.

/// Decodes a character entity body (the part between `&` and `;`).
fn decode_entity(entity: &str) -> Option<String> {
    let named = match entity {
        "amp" => "&",
        "lt" => "<",
        "gt" => ">",
        "quot" => "\"",
        "apos" => "'",
        "nbsp" => " ",
        "mdash" | "ndash" => "-",
        "hellip" => "...",
        _ => "",
    };
    if !named.is_empty() {
        return Some(named.to_owned());
    }
    if let Some(num) = entity.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        return char::from_u32(code).map(|c| c.to_string());
    }
    None
}

/// Extracts the visible text of an HTML or XML document.
///
/// # Example
///
/// ```
/// use dsearch_formats::html::extract_text;
///
/// let html = "<p>Tom &amp; Jerry<script>var x = 1;</script></p>";
/// assert_eq!(extract_text(html).trim(), "Tom & Jerry");
/// ```
#[must_use]
pub fn extract_text(html: &str) -> String {
    let mut out = String::with_capacity(html.len() / 2);
    let bytes = html.as_bytes();
    let mut i = 0usize;
    let mut skip_until_close: Option<&'static str> = None;

    while i < bytes.len() {
        let rest = &html[i..];
        if let Some(close_tag) = skip_until_close {
            // Inside <script> or <style>: drop everything until its close tag.
            if let Some(pos) = rest.to_ascii_lowercase().find(close_tag) {
                i += pos + close_tag.len();
                skip_until_close = None;
            } else {
                break;
            }
            continue;
        }
        match bytes[i] {
            b'<' => {
                if rest.starts_with("<!--") {
                    match rest.find("-->") {
                        Some(pos) => i += pos + 3,
                        None => break,
                    }
                    continue;
                }
                let lower = rest.to_ascii_lowercase();
                if lower.starts_with("<script") {
                    skip_until_close = Some("</script>");
                } else if lower.starts_with("<style") {
                    skip_until_close = Some("</style>");
                }
                match rest.find('>') {
                    Some(pos) => {
                        // Block-level markup should not glue adjacent words.
                        out.push(' ');
                        i += pos + 1;
                    }
                    None => break,
                }
            }
            b'&' => {
                if let Some(end) = rest[1..].find(';') {
                    if end <= 10 {
                        if let Some(decoded) = decode_entity(&rest[1..=end]) {
                            out.push_str(&decoded);
                            i += end + 2;
                            continue;
                        }
                    }
                }
                out.push('&');
                i += 1;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stripped_and_text_kept() {
        let html = "<html><body><h1>Title</h1><p>Body <b>bold</b> text.</p></body></html>";
        let text = extract_text(html);
        for word in ["Title", "Body", "bold", "text"] {
            assert!(text.contains(word), "missing {word} in {text:?}");
        }
        assert!(!text.contains('<'));
    }

    #[test]
    fn adjacent_elements_do_not_merge_words() {
        let text = extract_text("<td>alpha</td><td>beta</td>");
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(!text.contains("alphabeta"));
    }

    #[test]
    fn script_and_style_bodies_are_dropped() {
        let html = "before<script type=\"text/javascript\">var secret = 42;</script>\
                    <style>.cls { color: red; }</style>after";
        let text = extract_text(html);
        assert!(text.contains("before"));
        assert!(text.contains("after"));
        assert!(!text.contains("secret"));
        assert!(!text.contains("color"));
    }

    #[test]
    fn script_close_tag_case_insensitive() {
        let text = extract_text("a<SCRIPT>hidden()</ScRiPt>b");
        assert!(text.contains('a') && text.contains('b'));
        assert!(!text.contains("hidden"));
    }

    #[test]
    fn comments_are_skipped() {
        let text = extract_text("keep <!-- drop this completely --> this");
        assert!(text.contains("keep"));
        assert!(text.contains("this"));
        assert!(!text.contains("drop"));
    }

    #[test]
    fn entities_are_decoded() {
        assert_eq!(extract_text("a &amp; b").trim(), "a & b");
        assert_eq!(extract_text("x &lt; y &gt; z").trim(), "x < y > z");
        assert_eq!(extract_text("&quot;quoted&quot;").trim(), "\"quoted\"");
        assert_eq!(extract_text("caf&#233;").trim(), "café");
        assert_eq!(extract_text("caf&#xE9;").trim(), "café");
    }

    #[test]
    fn malformed_entities_are_left_alone() {
        assert_eq!(extract_text("AT&T works").trim(), "AT&T works");
        assert_eq!(extract_text("&notarealentityname;x").trim(), "&notarealentityname;x");
        assert_eq!(extract_text("dangling &").trim(), "dangling &");
    }

    #[test]
    fn unterminated_tag_or_script_truncates_gracefully() {
        assert_eq!(extract_text("text <unterminated").trim(), "text");
        assert_eq!(extract_text("text <script>never closed").trim(), "text");
        assert_eq!(extract_text("text <!-- never closed").trim(), "text");
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert_eq!(extract_text(""), "");
    }
}
