//! File-format handling for the `dsearch` index generator.
//!
//! The paper deliberately restricted its benchmark to plain ASCII text
//! ("handling complex word processor formats directly in the term extractor
//! would have been too distracting at the time, even though it would be an
//! interesting extension now") and lists *more file formats* as future work.
//! This crate is that extension: it detects a file's format and converts the
//! raw bytes into plain text that the unchanged ASCII tokenizer can scan, so
//! the three-stage pipeline stays exactly as the paper describes while the
//! term extractor becomes format-aware.
//!
//! Supported formats:
//!
//! * [`DocumentFormat::PlainText`] — passed through unchanged;
//! * [`DocumentFormat::Markdown`] — heading/emphasis/link syntax stripped,
//!   link and image text kept;
//! * [`DocumentFormat::Html`] — tags removed, `<script>`/`<style>` bodies
//!   dropped, character entities decoded;
//! * [`DocumentFormat::Csv`] — quoted fields unwrapped, separators replaced by
//!   spaces;
//! * [`DocumentFormat::Wpx`] — a small tagged word-processor container (the
//!   stand-in for the proprietary formats the paper's corpus was converted
//!   from); body text kept, style runs and embedded metadata dropped;
//! * [`DocumentFormat::SourceCode`] — comments and string literals kept,
//!   `camelCase` / `snake_case` identifiers split into their component words;
//! * [`DocumentFormat::Binary`] — skipped entirely (no terms).
//!
//! Non-ASCII bytes are transliterated to their closest ASCII letters by
//! [`decode`] so accented Latin-1/UTF-8 text still produces searchable terms.
//!
//! # Example
//!
//! ```
//! use dsearch_formats::{DocumentFormat, FormatRegistry};
//!
//! let registry = FormatRegistry::with_builtins();
//! let html = b"<html><body><h1>Quarterly report</h1><p>Revenue &amp; costs</p></body></html>";
//! let extracted = registry.extract("report.html", html);
//! assert_eq!(extracted.format, DocumentFormat::Html);
//! let text = extracted.text_str();
//! assert!(text.contains("Quarterly report"));
//! assert!(text.contains("Revenue & costs"));
//! assert!(!text.contains("<h1>"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod decode;
pub mod detect;
pub mod format;
pub mod html;
pub mod markdown;
pub mod registry;
pub mod source;
pub mod wpx;

pub use decode::{transliterate_to_ascii, DecodeStats};
pub use detect::{detect_format, sniff_content, FormatHint};
pub use format::DocumentFormat;
pub use registry::{ExtractedText, FormatRegistry, TextExtractor};
pub use wpx::{WpxDocument, WpxWriter};
