//! Markdown text extraction.
//!
//! Strips the structural syntax (heading markers, emphasis, list bullets,
//! block quotes, code fences, tables) while keeping the prose, the link text
//! and the contents of inline and fenced code — code in documentation is
//! something people search for.

/// Extracts the searchable text of a Markdown document.
///
/// # Example
///
/// ```
/// use dsearch_formats::markdown::extract_text;
///
/// let md = "# Heading\n\nSome *emphasised* text with a [link](https://example.com).\n";
/// let text = extract_text(md);
/// assert!(text.contains("Heading"));
/// assert!(text.contains("emphasised"));
/// assert!(text.contains("link"));
/// assert!(!text.contains("https://example.com"));
/// ```
#[must_use]
pub fn extract_text(markdown: &str) -> String {
    let mut out = String::with_capacity(markdown.len());
    let mut in_code_fence = false;
    for line in markdown.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_code_fence = !in_code_fence;
            // The info string ("```rust") names a language worth indexing.
            let info = trimmed.trim_start_matches(['`', '~']).trim();
            if !info.is_empty() {
                out.push_str(info);
                out.push('\n');
            }
            continue;
        }
        if in_code_fence {
            // Keep fenced code verbatim; identifiers in examples are useful terms.
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let stripped = strip_line(trimmed);
        out.push_str(&stripped);
        out.push('\n');
    }
    out
}

/// Strips inline Markdown syntax from one line.
fn strip_line(line: &str) -> String {
    // Leading block syntax: headings, quotes, list bullets, numbered lists.
    let mut rest = line;
    rest = rest.trim_start_matches('#').trim_start();
    rest = rest.trim_start_matches('>').trim_start();
    if let Some(r) = rest
        .strip_prefix("- ")
        .or_else(|| rest.strip_prefix("* "))
        .or_else(|| rest.strip_prefix("+ "))
    {
        rest = r;
    } else {
        // Numbered list: "12. item".
        let digits = rest.chars().take_while(char::is_ascii_digit).count();
        if digits > 0 {
            if let Some(r) = rest[digits..].strip_prefix(". ") {
                rest = r;
            }
        }
    }
    // Table rows and horizontal rules.
    if rest.chars().all(|c| matches!(c, '-' | '=' | '|' | ':' | ' ' | '*' | '_')) {
        return String::new();
    }

    let mut out = String::with_capacity(rest.len());
    let bytes = rest.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            // Emphasis / inline-code markers are dropped, their content kept.
            b'*' | b'`' | b'|' => i += 1,
            // Underscore emphasis only counts at word boundaries; an interior
            // underscore (`inline_code`) is part of an identifier and kept.
            b'_' => {
                let at_start = i == 0 || bytes[i - 1].is_ascii_whitespace();
                let at_end = i + 1 >= bytes.len() || bytes[i + 1].is_ascii_whitespace();
                if !(at_start || at_end) {
                    out.push('_');
                }
                i += 1;
            }
            b'!' if rest[i..].starts_with("![") => i += 1,
            b'[' => {
                // [text](url) — keep text, drop url.
                if let Some(close) = rest[i..].find(']') {
                    out.push_str(&rest[i + 1..i + close]);
                    i += close + 1;
                    if rest[i..].starts_with('(') {
                        if let Some(end) = rest[i..].find(')') {
                            i += end + 1;
                        } else {
                            i = bytes.len();
                        }
                    }
                } else {
                    out.push('[');
                    i += 1;
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headings_keep_their_text() {
        let text = extract_text("# Top level\n## Second level\nbody\n");
        assert!(text.contains("Top level"));
        assert!(text.contains("Second level"));
        assert!(!text.contains('#'));
    }

    #[test]
    fn emphasis_and_inline_code_markers_are_removed() {
        let text = extract_text("Some *bold* and _italic_ and `inline_code` here\n");
        assert!(text.contains("bold"));
        assert!(text.contains("italic"));
        assert!(text.contains("inline_code"));
        assert!(!text.contains('*'));
        assert!(!text.contains('`'));
    }

    #[test]
    fn links_keep_text_and_drop_urls() {
        let text = extract_text("See [the docs](https://docs.example.com/page) for details\n");
        assert!(text.contains("the docs"));
        assert!(text.contains("details"));
        assert!(!text.contains("https"));
    }

    #[test]
    fn images_keep_alt_text() {
        let text = extract_text("![speedup chart](img/speedup.png)\n");
        assert!(text.contains("speedup chart"));
        assert!(!text.contains("img/speedup.png"));
    }

    #[test]
    fn list_bullets_and_numbers_are_stripped() {
        let text = extract_text("- first item\n* second item\n+ third item\n12. twelfth item\n");
        for needle in ["first item", "second item", "third item", "twelfth item"] {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert!(!text.contains("12."));
    }

    #[test]
    fn fenced_code_content_is_kept_language_included() {
        let md = "```rust\nfn index_generator() {}\n```\nprose\n";
        let text = extract_text(md);
        assert!(text.contains("rust"));
        assert!(text.contains("index_generator"));
        assert!(text.contains("prose"));
        assert!(!text.contains("```"));
    }

    #[test]
    fn tables_and_rules_do_not_leave_markup() {
        let md = "| col a | col b |\n|---|---|\n| one | two |\n\n---\n";
        let text = extract_text(md);
        assert!(text.contains("col a"));
        assert!(text.contains("one"));
        assert!(!text.contains('|'));
        assert!(!text.contains("---"));
    }

    #[test]
    fn block_quotes_keep_content() {
        let text = extract_text("> quoted wisdom\n");
        assert!(text.contains("quoted wisdom"));
        assert!(!text.contains('>'));
    }

    #[test]
    fn unclosed_link_bracket_is_kept_literally() {
        let text = extract_text("array[index out of range\n");
        assert!(text.contains("array[index out of range"));
    }
}
