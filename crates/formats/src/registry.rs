//! The format registry: one entry point mapping raw file bytes to plain text.
//!
//! [`FormatRegistry::extract`] is what a format-aware term extractor calls per
//! file: it detects the format, runs the matching [`TextExtractor`], applies
//! the ASCII transliteration pass and returns an [`ExtractedText`] ready for
//! the tokenizer.  Custom extractors can be registered to override or extend
//! the built-ins.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::decode::{transliterate_to_ascii, DecodeStats};
use crate::detect::{detect_format, FormatHint};
use crate::format::DocumentFormat;
use crate::{csv, html, markdown, source, wpx};

/// Converts one document format's raw text into plain searchable text.
pub trait TextExtractor: Send + Sync {
    /// Extracts plain text from the (already character-decoded) document.
    fn extract(&self, text: &str) -> String;

    /// A short name for diagnostics.
    fn name(&self) -> &'static str {
        "custom"
    }
}

impl<F> TextExtractor for F
where
    F: Fn(&str) -> String + Send + Sync,
{
    fn extract(&self, text: &str) -> String {
        self(text)
    }
}

/// The result of extracting one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedText {
    /// Detected document format.
    pub format: DocumentFormat,
    /// Which signal (extension / content / default) decided the format.
    pub hint: FormatHint,
    /// The plain text to tokenize (empty for binary files).
    pub text: String,
    /// Character-decoding statistics.
    pub decode: DecodeStats,
}

impl ExtractedText {
    /// The extracted text as a string slice.
    #[must_use]
    pub fn text_str(&self) -> &str {
        &self.text
    }

    /// The extracted text as bytes, ready for the ASCII tokenizer.
    #[must_use]
    pub fn text_bytes(&self) -> &[u8] {
        self.text.as_bytes()
    }

    /// Whether any text was produced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

struct PassThrough;

impl TextExtractor for PassThrough {
    fn extract(&self, text: &str) -> String {
        text.to_owned()
    }

    fn name(&self) -> &'static str {
        "plain-text"
    }
}

struct HtmlExtractor;

impl TextExtractor for HtmlExtractor {
    fn extract(&self, text: &str) -> String {
        html::extract_text(text)
    }

    fn name(&self) -> &'static str {
        "html"
    }
}

struct MarkdownExtractor;

impl TextExtractor for MarkdownExtractor {
    fn extract(&self, text: &str) -> String {
        markdown::extract_text(text)
    }

    fn name(&self) -> &'static str {
        "markdown"
    }
}

struct CsvExtractor;

impl TextExtractor for CsvExtractor {
    fn extract(&self, text: &str) -> String {
        csv::extract_text_auto(text)
    }

    fn name(&self) -> &'static str {
        "csv"
    }
}

struct WpxExtractor;

impl TextExtractor for WpxExtractor {
    fn extract(&self, text: &str) -> String {
        // The WPX container escapes &, < and > in text content; undo that so
        // the index sees what the author typed.
        wpx::extract_text(text).replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
    }

    fn name(&self) -> &'static str {
        "wpx"
    }
}

struct SourceExtractor;

impl TextExtractor for SourceExtractor {
    fn extract(&self, text: &str) -> String {
        source::extract_text(text)
    }

    fn name(&self) -> &'static str {
        "source-code"
    }
}

/// Maps document formats to text extractors.
#[derive(Clone)]
pub struct FormatRegistry {
    extractors: HashMap<DocumentFormat, Arc<dyn TextExtractor>>,
}

impl fmt::Debug for FormatRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<(String, &'static str)> =
            self.extractors.iter().map(|(format, ex)| (format.to_string(), ex.name())).collect();
        names.sort();
        f.debug_struct("FormatRegistry").field("extractors", &names).finish()
    }
}

impl FormatRegistry {
    /// Creates an empty registry (every format falls back to pass-through).
    #[must_use]
    pub fn new() -> Self {
        FormatRegistry { extractors: HashMap::new() }
    }

    /// Creates a registry with all built-in extractors registered.
    #[must_use]
    pub fn with_builtins() -> Self {
        let mut registry = FormatRegistry::new();
        registry.register(DocumentFormat::PlainText, Arc::new(PassThrough));
        registry.register(DocumentFormat::Html, Arc::new(HtmlExtractor));
        registry.register(DocumentFormat::Markdown, Arc::new(MarkdownExtractor));
        registry.register(DocumentFormat::Csv, Arc::new(CsvExtractor));
        registry.register(DocumentFormat::Wpx, Arc::new(WpxExtractor));
        registry.register(DocumentFormat::SourceCode, Arc::new(SourceExtractor));
        registry
    }

    /// Registers (or replaces) the extractor for a format.
    pub fn register(&mut self, format: DocumentFormat, extractor: Arc<dyn TextExtractor>) {
        self.extractors.insert(format, extractor);
    }

    /// Number of registered extractors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.extractors.len()
    }

    /// Returns `true` when no extractor is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.extractors.is_empty()
    }

    /// Returns `true` when a dedicated extractor is registered for `format`.
    #[must_use]
    pub fn supports(&self, format: DocumentFormat) -> bool {
        self.extractors.contains_key(&format)
    }

    /// Detects the format of `bytes` (using `path` as a hint) and extracts
    /// its plain text.
    ///
    /// Binary files produce an empty text; unknown formats fall back to
    /// pass-through plain text.
    #[must_use]
    pub fn extract(&self, path: &str, bytes: &[u8]) -> ExtractedText {
        let (format, hint) = detect_format(path, bytes);
        self.extract_as(format, hint, bytes)
    }

    /// Extracts text assuming a known format (skips detection).
    #[must_use]
    pub fn extract_as(
        &self,
        format: DocumentFormat,
        hint: FormatHint,
        bytes: &[u8],
    ) -> ExtractedText {
        if format == DocumentFormat::Binary {
            return ExtractedText {
                format,
                hint,
                text: String::new(),
                decode: DecodeStats { bytes_in: bytes.len() as u64, ..DecodeStats::default() },
            };
        }
        let (decoded, decode) = transliterate_to_ascii(bytes);
        let text = match self.extractors.get(&format) {
            Some(extractor) => extractor.extract(&decoded),
            None => decoded,
        };
        ExtractedText { format, hint, text, decode }
    }
}

impl Default for FormatRegistry {
    fn default() -> Self {
        FormatRegistry::with_builtins()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_cover_all_indexable_formats() {
        let registry = FormatRegistry::with_builtins();
        for format in DocumentFormat::ALL {
            if format.is_indexable() {
                assert!(registry.supports(format), "missing extractor for {format}");
            }
        }
        assert!(!registry.supports(DocumentFormat::Binary));
        assert_eq!(registry.len(), 6);
        assert!(!registry.is_empty());
    }

    #[test]
    fn binary_files_produce_no_text() {
        let registry = FormatRegistry::with_builtins();
        let extracted = registry.extract("archive.zip", &[0u8, 1, 2, 3]);
        assert_eq!(extracted.format, DocumentFormat::Binary);
        assert!(extracted.is_empty());
        assert_eq!(extracted.decode.bytes_in, 4);
    }

    #[test]
    fn html_extraction_end_to_end() {
        let registry = FormatRegistry::with_builtins();
        let extracted = registry
            .extract("page.html", b"<html><body><p>caf\xc3\xa9 &amp; bar</p></body></html>");
        assert_eq!(extracted.format, DocumentFormat::Html);
        assert!(extracted.text_str().contains("cafe & bar"));
    }

    #[test]
    fn wpx_entities_are_decoded() {
        let registry = FormatRegistry::with_builtins();
        let wpx = crate::wpx::WpxWriter::new("R&D plan").paragraph("profit &  loss").finish();
        let extracted = registry.extract("plan.wpx", wpx.as_bytes());
        assert_eq!(extracted.format, DocumentFormat::Wpx);
        assert!(extracted.text_str().contains("R&D plan"));
    }

    #[test]
    fn unknown_format_without_registration_passes_through() {
        let registry = FormatRegistry::new();
        let extracted = registry.extract("notes.txt", b"plain words");
        assert_eq!(extracted.format, DocumentFormat::PlainText);
        assert_eq!(extracted.text_str(), "plain words");
    }

    #[test]
    fn custom_extractor_overrides_builtin() {
        let mut registry = FormatRegistry::with_builtins();
        registry.register(DocumentFormat::Markdown, Arc::new(|_: &str| "overridden".to_owned()));
        let extracted = registry.extract("x.md", b"# heading");
        assert_eq!(extracted.text_str(), "overridden");
    }

    #[test]
    fn extract_as_skips_detection() {
        let registry = FormatRegistry::with_builtins();
        let extracted =
            registry.extract_as(DocumentFormat::Csv, FormatHint::Extension, b"a,b\n1,2\n");
        assert_eq!(extracted.text_str(), "a b\n1 2\n");
    }

    #[test]
    fn text_bytes_matches_text_str() {
        let registry = FormatRegistry::with_builtins();
        let extracted = registry.extract("a.txt", b"hello");
        assert_eq!(extracted.text_bytes(), extracted.text_str().as_bytes());
    }

    #[test]
    fn debug_output_lists_extractors() {
        let registry = FormatRegistry::with_builtins();
        let debug = format!("{registry:?}");
        assert!(debug.contains("html"));
        assert!(debug.contains("wpx"));
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FormatRegistry>();
    }
}
