//! Source-code text extraction.
//!
//! Source files on a developer's desktop are worth indexing, but raw
//! tokenisation misses the obvious queries: a user searching for "index
//! generator" should find `IndexGenerator` and `index_generator`.  The
//! extractor therefore keeps the file verbatim *and* appends the split forms
//! of every compound identifier (camelCase, PascalCase, snake_case,
//! SCREAMING_SNAKE_CASE), so both the exact identifier and its component
//! words end up in the index.

/// Splits one identifier into its component words.
///
/// `parseHTTPResponse` → `["parse", "HTTP", "Response"]`,
/// `index_generator` → `["index", "generator"]`.
#[must_use]
pub fn split_identifier(ident: &str) -> Vec<String> {
    let mut words: Vec<String> = Vec::new();
    let mut current = String::new();
    let chars: Vec<char> = ident.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' || c.is_ascii_digit() {
            if !current.is_empty() {
                words.push(std::mem::take(&mut current));
            }
            continue;
        }
        if c.is_ascii_uppercase() {
            let prev_lower = i > 0 && chars[i - 1].is_ascii_lowercase();
            let next_lower = chars.get(i + 1).is_some_and(char::is_ascii_lowercase);
            // Boundary before an uppercase letter that starts a new word:
            // "parseHTTP" (prev lower) or "HTTPResponse" (acronym end).
            if !current.is_empty()
                && (prev_lower || (next_lower && current.chars().all(|p| p.is_ascii_uppercase())))
            {
                words.push(std::mem::take(&mut current));
            }
        }
        current.push(c);
    }
    if !current.is_empty() {
        words.push(current);
    }
    words.retain(|w| w.len() > 1);
    words
}

/// Returns `true` for identifiers that would benefit from splitting.
fn is_compound(ident: &str) -> bool {
    if ident.len() < 4 {
        return false;
    }
    let has_separator = ident.contains('_') || ident.contains('-');
    let has_case_change =
        ident.as_bytes().windows(2).any(|w| w[0].is_ascii_lowercase() && w[1].is_ascii_uppercase());
    has_separator || has_case_change
}

/// Extracts the searchable text of a source file.
///
/// The original text is kept in full; split forms of compound identifiers are
/// appended at the end (each on its own line) so they become additional
/// terms without disturbing byte-count statistics much.
///
/// # Example
///
/// ```
/// use dsearch_formats::source::extract_text;
///
/// let code = "fn run_generator(cfg: &RunConfig) -> RunReport { unimplemented!() }";
/// let text = extract_text(code);
/// assert!(text.contains("run_generator"));
/// assert!(text.contains("run generator"));
/// assert!(text.contains("Run Config"));
/// ```
#[must_use]
pub fn extract_text(code: &str) -> String {
    let mut out = String::with_capacity(code.len() + code.len() / 4);
    out.push_str(code);
    out.push('\n');

    let mut seen: Vec<String> = Vec::new();
    let mut current = String::new();
    for c in code.chars().chain(std::iter::once(' ')) {
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
            current.push(c);
        } else if !current.is_empty() {
            let ident = std::mem::take(&mut current);
            if is_compound(&ident) && !seen.contains(&ident) {
                let words = split_identifier(&ident);
                if words.len() > 1 {
                    out.push_str(&words.join(" "));
                    out.push('\n');
                }
                seen.push(ident);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camel_case_is_split() {
        assert_eq!(split_identifier("indexGenerator"), ["index", "Generator"]);
        assert_eq!(split_identifier("IndexGenerator"), ["Index", "Generator"]);
    }

    #[test]
    fn acronyms_are_kept_together() {
        assert_eq!(split_identifier("parseHTTPResponse"), ["parse", "HTTP", "Response"]);
        assert_eq!(split_identifier("XMLHttpRequest"), ["XML", "Http", "Request"]);
    }

    #[test]
    fn snake_and_kebab_case_are_split() {
        assert_eq!(split_identifier("term_extraction_threads"), ["term", "extraction", "threads"]);
        assert_eq!(split_identifier("round-robin"), ["round", "robin"]);
        assert_eq!(split_identifier("SCREAMING_SNAKE"), ["SCREAMING", "SNAKE"]);
    }

    #[test]
    fn digits_act_as_separators_and_short_fragments_are_dropped() {
        assert_eq!(split_identifier("stage2runner"), ["stage", "runner"]);
        assert_eq!(split_identifier("x_y"), Vec::<String>::new());
    }

    #[test]
    fn extract_keeps_original_and_appends_split_forms() {
        let code = "let sharedIndex = SharedIndex::new(); shared_index_update(&sharedIndex);";
        let text = extract_text(code);
        assert!(text.contains("sharedIndex"));
        assert!(text.contains("shared Index"));
        assert!(text.contains("shared index update"));
    }

    #[test]
    fn simple_identifiers_are_not_duplicated() {
        let code = "let x = map.get(key);";
        let text = extract_text(code);
        // Nothing compound here: output is just the code plus a newline.
        assert_eq!(text.trim_end(), code);
    }

    #[test]
    fn repeated_identifiers_are_split_once() {
        let code = "run_report(); run_report(); run_report();";
        let text = extract_text(code);
        assert_eq!(text.matches("run report").count(), 1);
    }

    #[test]
    fn empty_input_is_just_a_newline() {
        assert_eq!(extract_text(""), "\n");
    }
}
