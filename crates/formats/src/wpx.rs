//! The WPX word-processor container format.
//!
//! The paper's benchmark was created "by extracting plain text versions from
//! word processor files" — the original word-processor documents were
//! proprietary and are not available.  WPX is the stand-in: a deliberately
//! simple tagged container with the same structure word-processor formats
//! have (document metadata, styled paragraph runs, embedded non-text
//! resources), so the format-aware extractor has to do the same kind of work
//! (skip style/metadata, keep body text, ignore embedded objects) that a real
//! converter does.
//!
//! A WPX document looks like:
//!
//! ```text
//! <wpx version="1">
//!   <meta><title>Quarterly report</title><author>A. Author</author></meta>
//!   <styles><style id="h1" font="bold 18"/></styles>
//!   <body>
//!     <para style="h1">Heading text</para>
//!     <para>Body text with <run style="em">emphasis</run> inside.</para>
//!     <object type="image" data="base64:AAAA..."/>
//!   </body>
//! </wpx>
//! ```
//!
//! [`extract_text`] pulls out the title and the paragraph/run text;
//! [`WpxWriter`] produces WPX documents (used by the corpus tooling and the
//! examples to build mixed-format corpora).

/// A parsed WPX document: the indexable pieces only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WpxDocument {
    /// The document title from `<meta><title>…</title></meta>`.
    pub title: String,
    /// The visible body text, paragraph per line.
    pub body: String,
}

impl WpxDocument {
    /// The full searchable text (title then body).
    #[must_use]
    pub fn searchable_text(&self) -> String {
        if self.title.is_empty() {
            self.body.clone()
        } else {
            format!("{}\n{}", self.title, self.body)
        }
    }
}

/// State of the streaming WPX parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Prologue,
    Meta,
    MetaTitle,
    Styles,
    Body,
    Object,
}

/// Parses a WPX document, returning its indexable parts.
///
/// The parser is forgiving: unknown tags inside `<body>` are treated as
/// inline runs (their text is kept), unclosed documents yield whatever text
/// was seen before the end of input.
#[must_use]
pub fn parse(wpx: &str) -> WpxDocument {
    let mut doc = WpxDocument::default();
    let mut section = Section::Prologue;
    let mut i = 0usize;
    let bytes = wpx.as_bytes();
    while i < bytes.len() {
        if bytes[i] == b'<' {
            let rest = &wpx[i..];
            let close = match rest.find('>') {
                Some(p) => p,
                None => break,
            };
            let tag_body = &rest[1..close];
            let tag_name = tag_body
                .trim_start_matches('/')
                .split([' ', '\t', '\n', '/'])
                .next()
                .unwrap_or("")
                .to_ascii_lowercase();
            let is_close = tag_body.starts_with('/');
            section = next_section(section, &tag_name, is_close);
            i += close + 1;
        } else {
            let rest = &wpx[i..];
            let end = rest.find('<').unwrap_or(rest.len());
            let text = &rest[..end];
            match section {
                Section::MetaTitle => doc.title.push_str(text.trim()),
                Section::Body => {
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        if !doc.body.is_empty() && !doc.body.ends_with('\n') {
                            doc.body.push(' ');
                        }
                        doc.body.push_str(trimmed);
                    }
                }
                _ => {}
            }
            i += end;
        }
    }
    doc
}

fn next_section(current: Section, tag: &str, is_close: bool) -> Section {
    match (tag, is_close) {
        ("meta", false) => Section::Meta,
        ("meta", true) => Section::Prologue,
        ("title", false) if current == Section::Meta => Section::MetaTitle,
        ("title", true) => Section::Meta,
        ("styles", false) => Section::Styles,
        ("styles", true) => Section::Prologue,
        ("body", false) => Section::Body,
        ("body", true) => Section::Prologue,
        ("object", false) if current == Section::Body => Section::Object,
        ("object", true) => Section::Body,
        // <para>, <run> and unknown inline tags keep the current body state;
        // a paragraph end adds a newline via extract_text below.
        _ => match current {
            Section::Object => Section::Object,
            other => other,
        },
    }
}

/// Extracts the searchable text of a WPX document.
///
/// # Example
///
/// ```
/// use dsearch_formats::wpx::{extract_text, WpxWriter};
///
/// let mut writer = WpxWriter::new("Minutes");
/// writer.paragraph("Attendees agreed on the roadmap");
/// let text = extract_text(&writer.finish());
/// assert!(text.contains("Minutes"));
/// assert!(text.contains("roadmap"));
/// ```
#[must_use]
pub fn extract_text(wpx: &str) -> String {
    parse(wpx).searchable_text()
}

/// Builds WPX documents programmatically.
#[derive(Debug, Clone)]
pub struct WpxWriter {
    title: String,
    paragraphs: Vec<String>,
    objects: usize,
}

impl WpxWriter {
    /// Starts a document with the given title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        WpxWriter { title: title.into(), paragraphs: Vec::new(), objects: 0 }
    }

    /// Appends a body paragraph.
    pub fn paragraph(&mut self, text: impl Into<String>) -> &mut Self {
        self.paragraphs.push(text.into());
        self
    }

    /// Appends an embedded binary object (never indexed).
    pub fn object(&mut self) -> &mut Self {
        self.objects += 1;
        self
    }

    /// Number of paragraphs added so far.
    #[must_use]
    pub fn paragraph_count(&self) -> usize {
        self.paragraphs.len()
    }

    /// Renders the document.
    #[must_use]
    pub fn finish(&self) -> String {
        let mut out = String::new();
        out.push_str("<wpx version=\"1\">\n");
        out.push_str("  <meta><title>");
        out.push_str(&escape(&self.title));
        out.push_str("</title><author>dsearch corpus</author></meta>\n");
        out.push_str("  <styles><style id=\"body\" font=\"regular 11\"/><style id=\"h1\" font=\"bold 18\"/></styles>\n");
        out.push_str("  <body>\n");
        for (i, para) in self.paragraphs.iter().enumerate() {
            let style = if i == 0 { "h1" } else { "body" };
            out.push_str("    <para style=\"");
            out.push_str(style);
            out.push_str("\">");
            out.push_str(&escape(para));
            out.push_str("</para>\n");
        }
        for i in 0..self.objects {
            out.push_str("    <object type=\"image\" data=\"base64:QUJDREVG");
            out.push_str(&"QQ==".repeat(i % 3 + 1));
            out.push_str("\"/>\n");
        }
        out.push_str("  </body>\n</wpx>\n");
        out
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let mut w = WpxWriter::new("Parallel indexing notes");
        w.paragraph("Stage one generates filenames sequentially");
        w.paragraph("Stage two extracts terms with several threads");
        w.object();
        w.finish()
    }

    #[test]
    fn writer_produces_detectable_wpx() {
        let doc = sample();
        assert!(doc.starts_with("<wpx"));
        assert!(doc.contains("<para"));
        assert!(doc.contains("<object"));
    }

    #[test]
    fn title_and_paragraphs_are_extracted() {
        let text = extract_text(&sample());
        assert!(text.contains("Parallel indexing notes"));
        assert!(text.contains("generates filenames sequentially"));
        assert!(text.contains("several threads"));
    }

    #[test]
    fn styles_metadata_and_objects_are_not_indexed() {
        let text = extract_text(&sample());
        assert!(!text.contains("bold"));
        assert!(!text.contains("base64"));
        assert!(!text.contains("dsearch corpus"), "author metadata must be skipped");
    }

    #[test]
    fn runs_inside_paragraphs_keep_their_text() {
        let wpx =
            "<wpx><body><para>before <run style=\"em\">emphasised</run> after</para></body></wpx>";
        let text = extract_text(wpx);
        assert!(text.contains("before"));
        assert!(text.contains("emphasised"));
        assert!(text.contains("after"));
    }

    #[test]
    fn escaped_characters_round_trip() {
        let mut w = WpxWriter::new("R&D <plan>");
        w.paragraph("profit & loss");
        let rendered = w.finish();
        assert!(!rendered.contains("R&D"), "must be escaped in the container");
        let doc = parse(&rendered);
        assert_eq!(doc.title, "R&amp;D &lt;plan&gt;");
        // The HTML entity decode happens at the registry level (WPX extraction
        // is chained with the HTML entity pass there); here the container
        // escaping is simply preserved.
    }

    #[test]
    fn truncated_document_yields_partial_text() {
        let full = sample();
        let truncated = &full[..full.len() / 2];
        let text = extract_text(truncated);
        assert!(text.contains("Parallel indexing notes"));
    }

    #[test]
    fn empty_document_has_no_text() {
        assert_eq!(extract_text("<wpx version=\"1\"><body></body></wpx>"), "");
        let doc = WpxDocument::default();
        assert_eq!(doc.searchable_text(), "");
    }

    #[test]
    fn writer_paragraph_count_tracks_additions() {
        let mut w = WpxWriter::new("t");
        assert_eq!(w.paragraph_count(), 0);
        w.paragraph("a").paragraph("b");
        assert_eq!(w.paragraph_count(), 2);
    }
}
