//! Property-based tests for the format-extraction substrate.
//!
//! The invariants that matter for the index generator:
//!
//! * extraction never panics, whatever bytes it is fed;
//! * extracted text is always pure ASCII (the tokenizer's contract);
//! * markup characters never survive extraction for the markup formats;
//! * binary detection is stable under prefixing with text.

use proptest::prelude::*;

use dsearch_formats::{detect_format, DocumentFormat, FormatRegistry};

proptest! {
    /// Any byte soup can be run through the registry without panicking, and
    /// the output is ASCII-only so the downstream tokenizer never sees bytes
    /// it cannot classify.
    #[test]
    fn extraction_never_panics_and_is_ascii(
        path in "[a-z]{1,8}(\\.[a-z]{1,4})?",
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let registry = FormatRegistry::with_builtins();
        let extracted = registry.extract(&path, &bytes);
        prop_assert!(extracted.text_str().is_ascii());
        prop_assert_eq!(extracted.decode.bytes_in, bytes.len() as u64);
    }

    /// Detection is deterministic: the same inputs give the same answer.
    #[test]
    fn detection_is_deterministic(
        path in "[a-z]{1,8}\\.[a-z]{1,4}",
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let first = detect_format(&path, &bytes);
        let second = detect_format(&path, &bytes);
        prop_assert_eq!(first, second);
    }

    /// ASCII text round-trips through plain-text extraction unchanged.
    #[test]
    fn plain_ascii_round_trips(text in "[ -~]{0,512}") {
        let registry = FormatRegistry::with_builtins();
        let extracted = registry.extract("file.txt", text.as_bytes());
        prop_assert_eq!(extracted.format, DocumentFormat::PlainText);
        prop_assert_eq!(extracted.text_str(), text.as_str());
    }

    /// HTML extraction removes every tag delimiter, regardless of the markup
    /// being well formed.
    #[test]
    fn html_extraction_strips_angle_brackets(
        words in proptest::collection::vec("[a-z]{1,10}", 1..20),
        tag in "[a-z]{1,6}",
    ) {
        // <script> and <style> bodies are intentionally dropped; use any
        // other element name here.
        prop_assume!(tag != "script" && tag != "style");
        let html = format!("<{tag}>{}</{tag}>", words.join(" "));
        let registry = FormatRegistry::with_builtins();
        let extracted = registry.extract("page.html", html.as_bytes());
        prop_assert!(!extracted.text_str().contains('<'));
        prop_assert!(!extracted.text_str().contains('>'));
        for word in &words {
            prop_assert!(extracted.text_str().contains(word.as_str()));
        }
    }

    /// CSV extraction preserves every field's text.
    #[test]
    fn csv_extraction_preserves_fields(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-z]{1,8}", 2..5),
            1..10,
        ),
    ) {
        let csv: String = rows
            .iter()
            .map(|fields| fields.join(","))
            .collect::<Vec<_>>()
            .join("\n");
        let registry = FormatRegistry::with_builtins();
        let extracted = registry.extract("table.csv", csv.as_bytes());
        for row in &rows {
            for field in row {
                prop_assert!(extracted.text_str().contains(field.as_str()));
            }
        }
        prop_assert!(!extracted.text_str().contains(','));
    }

    /// WPX documents produced by the writer always surface their title and
    /// paragraph text, and never leak container markup.
    #[test]
    fn wpx_writer_round_trips_paragraph_text(
        title in "[a-z ]{1,30}",
        paragraphs in proptest::collection::vec("[a-z ]{1,60}", 1..8),
    ) {
        let mut writer = dsearch_formats::WpxWriter::new(title.clone());
        for p in &paragraphs {
            writer.paragraph(p.clone());
        }
        let registry = FormatRegistry::with_builtins();
        let extracted = registry.extract("doc.wpx", writer.finish().as_bytes());
        prop_assert_eq!(extracted.format, DocumentFormat::Wpx);
        prop_assert!(!extracted.text_str().contains('<'));
        prop_assert!(extracted.text_str().contains(title.trim()));
        for p in &paragraphs {
            prop_assert!(
                extracted.text_str().contains(p.trim()),
                "paragraph {:?} missing from {:?}", p, extracted.text_str()
            );
        }
    }

    /// Identifier splitting produces fragments of the original identifier
    /// only (never invents characters).
    #[test]
    fn identifier_splitting_uses_original_characters(ident in "[A-Za-z_]{1,24}") {
        let words = dsearch_formats::source::split_identifier(&ident);
        let lower = ident.to_lowercase();
        for word in words {
            prop_assert!(lower.contains(&word.to_lowercase()));
        }
    }
}
