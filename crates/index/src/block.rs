//! Block-compressed posting lists with skip-aware cursors.
//!
//! A [`CompressedPostings`] stores a sorted, duplicate-free sequence of file
//! ids in fixed [`BLOCK_SIZE`]-id blocks.  Within a block the ids are
//! delta-encoded (gaps between consecutive ids) and each block is written in
//! whichever of two encodings is smaller:
//!
//! * **varint** — LEB128 per gap, best for sparse lists with occasional big
//!   jumps;
//! * **bitpacked** — every gap in the block packed at the bit width of the
//!   block's largest gap, best for dense lists (a run of consecutive ids
//!   packs at 1 bit per id).
//!
//! Each block carries a [`SkipEntry`] — `(first_id, last_id, byte offset)` —
//! so a reader can decide whether a block can possibly contain a target id
//! *without decoding it*.  That is what makes skewed intersections cheap:
//! [`BlockCursor::seek`] binary-searches the skip table, decodes at most one
//! block, and skips every block in between untouched.
//!
//! The [`PostingCursor`] trait abstracts "a sorted stream of ids supporting
//! `seek`"; it is implemented both by [`BlockCursor`] (decoding one block at
//! a time into a reusable scratch buffer) and by [`SliceCursor`] (a galloping
//! cursor over an uncompressed `&[FileId]` slice), so the query evaluator's
//! set operations run unchanged over compressed and raw posting lists — and
//! over mixes of the two.

use crate::doc_table::FileId;
use crate::posting::PostingList;

/// Number of ids per compressed block (the classic inverted-index choice:
/// big enough to amortise the skip entry, small enough that decoding one
/// block on a seek stays cheap).
pub const BLOCK_SIZE: usize = 128;

/// Per-block encoding tag stored in the block's first payload byte.
const ENC_VARINT: u8 = 0xff;
/// All gaps in the block are equal; one varint holds the gap.  Covers dense
/// runs (gap 1), strided lists and uniformly spread mid-frequency terms —
/// the cheapest blocks to store *and* to decode (pure arithmetic, no bit
/// stream).
const ENC_CONSTANT: u8 = 0x00;
// Any other header byte value `w` in `1..=32` means "bitpacked, width w".

/// Skip metadata for one block: enough to route a `seek` without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipEntry {
    /// First (smallest) id stored in the block.
    pub first: FileId,
    /// Last (largest) id stored in the block.
    pub last: FileId,
    /// Byte offset of the block's payload in the data buffer.
    pub offset: u32,
}

/// A sorted, duplicate-free posting list in block-compressed form.
///
/// `data` is self-contained — every block opens with a varint of its first
/// (absolute) id, so a block decodes without consulting anything else.  The
/// skip table is pure acceleration and is only materialised for lists
/// spanning more than one block: a singleton term (the long tail of every
/// real vocabulary) costs one varint, typically 1–3 bytes against 4 raw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompressedPostings {
    len: usize,
    /// One entry per block when there are 2+ blocks; empty otherwise.
    skips: Vec<SkipEntry>,
    data: Vec<u8>,
    /// Block-encoded per-posting term frequencies.  Empty means every
    /// frequency is 1 (then `freq_offsets` is empty too).  Each block opens
    /// with a header byte: [`ENC_CONSTANT`] followed by one varint holding
    /// the block's uniform frequency, or a width `w` in `1..=32` followed by
    /// the block's frequencies bitpacked at `w` bits each.
    freqs: Vec<u8>,
    /// Byte offset of each block's frequency payload in `freqs`; one entry
    /// per block iff `freqs` is non-empty.
    freq_offsets: Vec<u32>,
    /// Per-block upper bound on the posting score, quantized as
    /// `ceil(bound / max_score * 255)` — one entry per block iff the list is
    /// scored.  Quantizing with `ceil` keeps the dequantized bound
    /// admissible (never below the true block maximum).
    block_scores: Vec<u8>,
    /// The true maximum posting score over the whole list (the quantization
    /// scale).  `0.0` means the list is unscored.
    max_score: f32,
}

/// Structural validation failure when rebuilding a [`CompressedPostings`]
/// from externally supplied parts (a persisted segment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockFormatError(pub String);

impl std::fmt::Display for BlockFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid compressed postings: {}", self.0)
    }
}

impl std::error::Error for BlockFormatError {}

fn varint_len(mut value: u32) -> usize {
    let mut len = 1;
    while value >= 0x80 {
        value >>= 7;
        len += 1;
    }
    len
}

fn write_varint(out: &mut Vec<u8>, mut value: u32) {
    while value >= 0x80 {
        out.push((value & 0x7f) as u8 | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Reads one LEB128 value, defensively: truncated input yields what was read
/// so far (segment checksums catch real corruption before decode).
fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    while *pos < data.len() && shift < 35 {
        let byte = data[*pos];
        *pos += 1;
        value |= u32::from(byte & 0x7f) << shift.min(31);
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    value
}

fn bits_needed(value: u32) -> u32 {
    32 - value.leading_zeros()
}

impl CompressedPostings {
    /// Compresses a sorted, duplicate-free slice of ids.
    ///
    /// The invariant is the same one [`PostingList`] maintains; it is checked
    /// in debug builds only.
    #[must_use]
    pub fn from_sorted(ids: &[FileId]) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "compressed postings require sorted, duplicate-free ids"
        );
        let block_count = ids.len().div_ceil(BLOCK_SIZE);
        let mut skips = Vec::with_capacity(if block_count > 1 { block_count } else { 0 });
        let mut data = Vec::new();
        for block in ids.chunks(BLOCK_SIZE) {
            if block_count > 1 {
                let offset = u32::try_from(data.len()).expect("posting data under 4 GiB");
                skips.push(SkipEntry { first: block[0], last: block[block.len() - 1], offset });
            }
            encode_block(block, &mut data);
        }
        CompressedPostings {
            len: ids.len(),
            skips,
            data,
            freqs: Vec::new(),
            freq_offsets: Vec::new(),
            block_scores: Vec::new(),
            max_score: 0.0,
        }
    }

    /// Compresses a sorted id slice together with its per-posting term
    /// frequencies.  `tfs` must be parallel to `ids` or empty; an all-1
    /// frequency vector is not materialised (the canonical empty form).
    #[must_use]
    pub fn from_counted(ids: &[FileId], tfs: &[u32]) -> Self {
        debug_assert!(tfs.is_empty() || tfs.len() == ids.len());
        let mut cp = CompressedPostings::from_sorted(ids);
        if tfs.is_empty() || tfs.iter().all(|&tf| tf <= 1) {
            return cp;
        }
        for block in tfs.chunks(BLOCK_SIZE) {
            cp.freq_offsets.push(u32::try_from(cp.freqs.len()).expect("freq data under 4 GiB"));
            encode_freq_block(block, &mut cp.freqs);
        }
        cp
    }

    /// Compresses a [`PostingList`], carrying its term frequencies.
    #[must_use]
    pub fn from_list(list: &PostingList) -> Self {
        CompressedPostings::from_counted(list.doc_ids(), list.tfs())
    }

    /// Records per-block score upper bounds from the per-posting scores
    /// (parallel to the ids), quantized to a u8 ceiling against the list
    /// maximum.  Non-positive maxima leave the list unscored.
    pub fn score_blocks(&mut self, scores: &[f32]) {
        debug_assert_eq!(scores.len(), self.len);
        let list_max = scores.iter().fold(0.0f32, |acc, &s| acc.max(s));
        if list_max <= 0.0 || !list_max.is_finite() {
            self.block_scores.clear();
            self.max_score = 0.0;
            return;
        }
        self.max_score = list_max;
        self.block_scores = scores
            .chunks(BLOCK_SIZE)
            .map(|chunk| {
                let block_max = chunk.iter().fold(0.0f32, |acc, &s| acc.max(s));
                let quantized = (f64::from(block_max) / f64::from(list_max) * 255.0).ceil();
                quantized.clamp(1.0, 255.0) as u8
            })
            .collect();
    }

    /// Rebuilds from persisted parts, validating the skip-table structure
    /// (monotonic blocks, in-bounds ascending offsets, consistent length).
    /// Payload integrity is the storage layer's checksum's job.
    ///
    /// # Errors
    ///
    /// Fails when the parts cannot describe a well-formed posting list.
    pub fn from_parts(
        len: usize,
        skips: Vec<SkipEntry>,
        data: Vec<u8>,
    ) -> Result<Self, BlockFormatError> {
        let block_count = len.div_ceil(BLOCK_SIZE);
        let expected_skips = if block_count > 1 { block_count } else { 0 };
        if skips.len() != expected_skips {
            return Err(BlockFormatError(format!(
                "{} skip entries cannot cover {len} ids (expected {expected_skips})",
                skips.len()
            )));
        }
        if len > 0 && data.is_empty() {
            return Err(BlockFormatError("non-empty list with empty payload".to_owned()));
        }
        let mut previous_last: Option<FileId> = None;
        let mut previous_offset = 0u32;
        for (i, skip) in skips.iter().enumerate() {
            if skip.first > skip.last {
                return Err(BlockFormatError(format!("block {i} has first > last")));
            }
            if let Some(prev) = previous_last {
                if skip.first <= prev {
                    return Err(BlockFormatError(format!("block {i} overlaps its predecessor")));
                }
            }
            if i > 0 && skip.offset < previous_offset {
                return Err(BlockFormatError(format!("block {i} offset goes backwards")));
            }
            if (skip.offset as usize) > data.len() {
                return Err(BlockFormatError(format!("block {i} offset past payload end")));
            }
            previous_last = Some(skip.last);
            previous_offset = skip.offset;
        }
        Ok(CompressedPostings {
            len,
            skips,
            data,
            freqs: Vec::new(),
            freq_offsets: Vec::new(),
            block_scores: Vec::new(),
            max_score: 0.0,
        })
    }

    /// Rebuilds a scored list from persisted parts (the v3 segment path),
    /// validating the frequency and score tables against the block count.
    ///
    /// # Errors
    ///
    /// Fails when the parts cannot describe a well-formed scored list.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts_scored(
        len: usize,
        skips: Vec<SkipEntry>,
        data: Vec<u8>,
        freqs: Vec<u8>,
        freq_offsets: Vec<u32>,
        block_scores: Vec<u8>,
        max_score: f32,
    ) -> Result<Self, BlockFormatError> {
        let mut cp = CompressedPostings::from_parts(len, skips, data)?;
        let block_count = cp.block_count();
        if freqs.is_empty() != freq_offsets.is_empty() {
            return Err(BlockFormatError(
                "frequency payload and offsets must be both present or both absent".to_owned(),
            ));
        }
        if !freq_offsets.is_empty() {
            if freq_offsets.len() != block_count {
                return Err(BlockFormatError(format!(
                    "{} frequency blocks cannot cover {block_count} posting blocks",
                    freq_offsets.len()
                )));
            }
            let mut previous = 0u32;
            for (i, &offset) in freq_offsets.iter().enumerate() {
                if i > 0 && offset < previous {
                    return Err(BlockFormatError(format!("freq block {i} offset goes backwards")));
                }
                if (offset as usize) >= freqs.len() {
                    return Err(BlockFormatError(format!("freq block {i} offset past payload")));
                }
                previous = offset;
            }
        }
        if !max_score.is_finite() || max_score < 0.0 {
            return Err(BlockFormatError("max score must be finite and non-negative".to_owned()));
        }
        let expected_scores = if max_score > 0.0 { block_count } else { 0 };
        if block_scores.len() != expected_scores || (max_score > 0.0 && block_count == 0) {
            return Err(BlockFormatError(format!(
                "{} block scores with max score {max_score} cannot cover {block_count} blocks",
                block_scores.len()
            )));
        }
        cp.freqs = freqs;
        cp.freq_offsets = freq_offsets;
        cp.block_scores = block_scores;
        cp.max_score = max_score;
        Ok(cp)
    }

    /// Number of ids stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no ids are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The skip table (one entry per block).
    #[must_use]
    pub fn skips(&self) -> &[SkipEntry] {
        &self.skips
    }

    /// The concatenated encoded block payloads.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The encoded per-posting frequency payload (empty ⇒ every tf is 1).
    #[must_use]
    pub fn freqs(&self) -> &[u8] {
        &self.freqs
    }

    /// Byte offsets of the per-block frequency payloads.
    #[must_use]
    pub fn freq_offsets(&self) -> &[u32] {
        &self.freq_offsets
    }

    /// The quantized per-block score upper bounds (empty ⇒ unscored).
    #[must_use]
    pub fn block_scores(&self) -> &[u8] {
        &self.block_scores
    }

    /// The true maximum posting score of the list (`0.0` ⇒ unscored).
    #[must_use]
    pub fn max_score(&self) -> f32 {
        self.max_score
    }

    /// Dequantized score upper bound of block `index`; the list maximum when
    /// no per-block table exists.  Admissible: never below the true block
    /// maximum (callers still add a small slack before comparing against a
    /// threshold to absorb float rounding).
    #[must_use]
    pub fn block_score_bound(&self, index: usize) -> f32 {
        match self.block_scores.get(index) {
            Some(&q) => (f64::from(self.max_score) * f64::from(q) / 255.0) as f32,
            None => self.max_score,
        }
    }

    /// Bytes this list occupies: payload plus skip table (12 bytes per
    /// block).  Compare with `len() * 4` for the raw `Vec<FileId>` form.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.data.len() + self.skips.len() * std::mem::size_of::<SkipEntry>()
    }

    /// A skip-aware cursor positioned on the first id.
    #[must_use]
    pub fn cursor(&self) -> BlockCursor<'_> {
        BlockCursor::new(self)
    }

    /// Number of blocks the ids span.
    fn block_count(&self) -> usize {
        self.len.div_ceil(BLOCK_SIZE)
    }

    /// Number of ids in block `index` (every block is full except the last).
    fn block_len(&self, index: usize) -> usize {
        if index + 1 < self.block_count() {
            BLOCK_SIZE
        } else {
            self.len - index * BLOCK_SIZE
        }
    }

    /// Byte offset of block `index` in the payload.
    fn block_offset(&self, index: usize) -> usize {
        if self.skips.is_empty() {
            0
        } else {
            self.skips[index].offset as usize
        }
    }

    /// Reads the cheap part of a block: its first id and, when the block is
    /// an arithmetic progression, its constant gap — letting cursors serve
    /// such blocks without materialising a single id.
    fn block_shape(&self, index: usize) -> BlockShape {
        let count = self.block_len(index);
        let mut pos = self.block_offset(index);
        let first = read_varint(&self.data, &mut pos);
        if count == 1 {
            return BlockShape::Constant { first, gap: 0 };
        }
        if self.data.get(pos).copied() == Some(ENC_CONSTANT) {
            pos += 1;
            let gap = read_varint(&self.data, &mut pos);
            return BlockShape::Constant { first, gap };
        }
        BlockShape::Packed
    }

    /// Decodes block `index` into `out[..count]`, returning `count`.
    /// `out` must hold at least [`BLOCK_SIZE`] slots.
    fn decode_block(&self, index: usize, out: &mut [FileId]) -> usize {
        let count = self.block_len(index);
        let mut pos = self.block_offset(index);
        let mut previous = read_varint(&self.data, &mut pos);
        out[0] = FileId(previous);
        if count == 1 {
            return 1;
        }
        let header = if pos < self.data.len() {
            let h = self.data[pos];
            pos += 1;
            h
        } else {
            ENC_VARINT
        };
        if header == ENC_VARINT {
            for slot in out.iter_mut().take(count).skip(1) {
                let gap = read_varint(&self.data, &mut pos);
                previous = previous.saturating_add(gap);
                *slot = FileId(previous);
            }
        } else if header == ENC_CONSTANT {
            let gap = read_varint(&self.data, &mut pos);
            for slot in out.iter_mut().take(count).skip(1) {
                previous = previous.saturating_add(gap);
                *slot = FileId(previous);
            }
        } else {
            // Streaming bit buffer: bytes enter a u64 accumulator and gaps
            // leave it `width` bits at a time — a handful of shifts per gap
            // instead of a per-bit loop.  `width <= 32` and at most 7 stale
            // bits carry over, so the accumulator never overflows.
            let width = u32::from(header).min(32);
            let mask = if width == 32 { u64::from(u32::MAX) } else { (1u64 << width) - 1 };
            let mut acc = 0u64;
            let mut acc_bits = 0u32;
            for slot in out.iter_mut().take(count).skip(1) {
                while acc_bits < width {
                    let byte = self.data.get(pos).copied().unwrap_or(0);
                    acc |= u64::from(byte) << acc_bits;
                    acc_bits += 8;
                    pos += 1;
                }
                let gap = (acc & mask) as u32;
                acc >>= width;
                acc_bits -= width;
                previous = previous.saturating_add(gap);
                *slot = FileId(previous);
            }
        }
        count
    }

    /// Decodes the whole list into `out` (cleared first): the "single-term
    /// result" path, one pass, no intermediate allocation.
    pub fn decode_into(&self, out: &mut Vec<FileId>) {
        out.clear();
        out.reserve(self.len);
        let mut scratch = [FileId(0); BLOCK_SIZE];
        for index in 0..self.block_count() {
            let count = self.decode_block(index, &mut scratch);
            out.extend_from_slice(&scratch[..count]);
        }
    }

    /// Decodes the frequency payload of block `index` into `out[..count]`,
    /// returning `count`.  `out` must hold at least [`BLOCK_SIZE`] slots.
    /// Untracked lists fill with 1.
    fn decode_freq_block(&self, index: usize, out: &mut [u32]) -> usize {
        let count = self.block_len(index);
        if self.freqs.is_empty() {
            out[..count].fill(1);
            return count;
        }
        let mut pos = self.freq_offsets[index] as usize;
        let header = self.freqs.get(pos).copied().unwrap_or(ENC_CONSTANT);
        pos += 1;
        if header == ENC_CONSTANT {
            let value = read_varint(&self.freqs, &mut pos).max(1);
            out[..count].fill(value);
        } else {
            let width = u32::from(header).min(32);
            let mask = if width == 32 { u64::from(u32::MAX) } else { (1u64 << width) - 1 };
            let mut acc = 0u64;
            let mut acc_bits = 0u32;
            for slot in out.iter_mut().take(count) {
                while acc_bits < width {
                    let byte = self.freqs.get(pos).copied().unwrap_or(0);
                    acc |= u64::from(byte) << acc_bits;
                    acc_bits += 8;
                    pos += 1;
                }
                *slot = ((acc & mask) as u32).max(1);
                acc >>= width;
                acc_bits -= width;
            }
        }
        count
    }

    /// Decodes every per-posting frequency into `out` (cleared first),
    /// parallel to [`CompressedPostings::decode_into`]'s ids.
    pub fn decode_freqs_into(&self, out: &mut Vec<u32>) {
        out.clear();
        if self.freqs.is_empty() {
            return;
        }
        out.reserve(self.len);
        let mut scratch = [0u32; BLOCK_SIZE];
        for index in 0..self.block_count() {
            let count = self.decode_freq_block(index, &mut scratch);
            out.extend_from_slice(&scratch[..count]);
        }
    }

    /// Decodes into an owned [`PostingList`] (frequencies included).
    #[must_use]
    pub fn to_list(&self) -> PostingList {
        let mut ids = Vec::new();
        self.decode_into(&mut ids);
        let mut tfs = Vec::new();
        self.decode_freqs_into(&mut tfs);
        PostingList::from_sorted_counted(ids, tfs)
    }
}

/// Encodes one block of term frequencies: a constant block when every value
/// is equal (the tf=1 ocean costs two bytes per block), bitpacked at the
/// block's maximum width otherwise.
fn encode_freq_block(tfs: &[u32], out: &mut Vec<u8>) {
    let max = tfs.iter().copied().max().unwrap_or(1).max(1);
    let min = tfs.iter().copied().min().unwrap_or(1);
    if min == max {
        out.push(ENC_CONSTANT);
        write_varint(out, max);
        return;
    }
    let width = bits_needed(max).max(1);
    out.push(width as u8);
    let mut acc = 0u64;
    let mut acc_bits = 0u32;
    for &tf in tfs {
        acc |= u64::from(tf) << acc_bits;
        acc_bits += width;
        while acc_bits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push(acc as u8);
    }
}

fn encode_block(block: &[FileId], data: &mut Vec<u8>) {
    write_varint(data, block[0].as_u32());
    if block.len() == 1 {
        return;
    }
    let mut max_gap = 0u32;
    let mut min_gap = u32::MAX;
    let mut varint_bytes = 0usize;
    let mut previous = block[0].as_u32();
    for id in &block[1..] {
        let gap = id.as_u32() - previous;
        previous = id.as_u32();
        max_gap = max_gap.max(gap);
        min_gap = min_gap.min(gap);
        varint_bytes += varint_len(gap);
    }
    if min_gap == max_gap {
        // Every gap is the same: store it once.  This is both the smallest
        // and the fastest-to-decode block shape.
        data.push(ENC_CONSTANT);
        write_varint(data, max_gap);
        return;
    }
    let width = bits_needed(max_gap).max(1);
    let packed_bytes = ((block.len() - 1) * width as usize).div_ceil(8);
    if packed_bytes < varint_bytes {
        data.push(width as u8);
        // Streaming bit buffer, mirror of the decoder: gaps enter a u64
        // accumulator `width` bits at a time and leave it as whole bytes.
        let mut acc = 0u64;
        let mut acc_bits = 0u32;
        let mut previous = block[0].as_u32();
        for id in &block[1..] {
            let gap = id.as_u32() - previous;
            previous = id.as_u32();
            acc |= u64::from(gap) << acc_bits;
            acc_bits += width;
            while acc_bits >= 8 {
                data.push(acc as u8);
                acc >>= 8;
                acc_bits -= 8;
            }
        }
        if acc_bits > 0 {
            data.push(acc as u8);
        }
    } else {
        data.push(ENC_VARINT);
        let mut previous = block[0].as_u32();
        for id in &block[1..] {
            let gap = id.as_u32() - previous;
            previous = id.as_u32();
            write_varint(data, gap);
        }
    }
}

/// A sorted stream of file ids supporting forward `seek` — the abstraction
/// the query evaluator's set operations are written against.
///
/// Invariants: ids come out strictly ascending; `seek` and `advance` never
/// move backwards; after `None` the cursor stays exhausted.
pub trait PostingCursor {
    /// The id the cursor is positioned on, or `None` when exhausted.
    fn current(&self) -> Option<FileId>;

    /// Moves to the next id.
    fn advance(&mut self);

    /// Moves to the first id `>= target` (a no-op when already there) and
    /// returns it, or `None` when every remaining id is smaller.
    fn seek(&mut self, target: FileId) -> Option<FileId>;

    /// Total ids in the underlying list (used to pick intersection drivers).
    fn len(&self) -> usize;

    /// Returns `true` when the underlying list is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`PostingCursor`] over an uncompressed sorted slice; `seek` gallops
/// (exponential probe + binary search) from the current position.
#[derive(Debug, Clone)]
pub struct SliceCursor<'a> {
    ids: &'a [FileId],
    pos: usize,
}

impl<'a> SliceCursor<'a> {
    /// Wraps a sorted, duplicate-free slice.
    #[must_use]
    pub fn new(ids: &'a [FileId]) -> Self {
        SliceCursor { ids, pos: 0 }
    }

    /// The ids at and after the cursor (set operations use this to fall back
    /// to the tuned slice algorithms when both sides are uncompressed).
    #[must_use]
    pub fn remaining(&self) -> &'a [FileId] {
        &self.ids[self.pos.min(self.ids.len())..]
    }
}

impl PostingCursor for SliceCursor<'_> {
    fn current(&self) -> Option<FileId> {
        self.ids.get(self.pos).copied()
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn seek(&mut self, target: FileId) -> Option<FileId> {
        let current = self.current()?;
        if current >= target {
            return Some(current);
        }
        // Exponential probe from the current position, then binary search
        // the bracketed window — the same gallop the view intersection uses.
        let mut offset = 1usize;
        while self.pos + offset < self.ids.len() && self.ids[self.pos + offset] < target {
            offset <<= 1;
        }
        let lo = self.pos + (offset >> 1);
        let hi = (self.pos + offset + 1).min(self.ids.len());
        self.pos = lo + self.ids[lo..hi].partition_point(|&id| id < target);
        self.current()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// How the cursor's current block is represented.
#[derive(Debug, Clone, Copy)]
enum BlockShape {
    /// `id(pos) = first + pos * gap`: served arithmetically, never decoded.
    Constant {
        /// First id of the block.
        first: u32,
        /// The (uniform) gap; 0 only for single-id blocks.
        gap: u32,
    },
    /// Varint or bitpacked payload: materialised into the scratch buffer.
    Packed,
}

/// A [`PostingCursor`] over a [`CompressedPostings`].  `seek` routes
/// through the skip table, so blocks between the current position and the
/// target are never touched; arithmetic-progression blocks are served
/// without materialising any ids, and packed blocks decode one at a time
/// into a reusable scratch buffer.
#[derive(Debug, Clone)]
pub struct BlockCursor<'a> {
    postings: &'a CompressedPostings,
    /// Index of the current block; `== block_count()` when exhausted.
    block: usize,
    /// Position within the current block.
    pos: usize,
    /// Ids in the current block (0 when exhausted).
    len_in_block: usize,
    /// Representation of the current block.
    shape: BlockShape,
    /// Decode buffer for `Packed` blocks, allocated on first use and reused
    /// across every block the cursor visits.  Cursors over lists whose
    /// blocks are all arithmetic progressions never allocate at all.
    scratch: Vec<FileId>,
    /// Frequency decode buffer; filled lazily, only for blocks whose
    /// frequencies are actually read.
    freq_scratch: Vec<u32>,
    /// Whether `freq_scratch` holds the current block's frequencies.
    freqs_loaded: bool,
    /// Blocks this cursor has entered (decoded or served arithmetically);
    /// `block_count() - blocks_visited()` is the number the skip table let
    /// it jump over entirely.
    visited: u64,
}

impl<'a> BlockCursor<'a> {
    /// Creates a cursor positioned on the first id.
    #[must_use]
    pub fn new(postings: &'a CompressedPostings) -> Self {
        let mut cursor = BlockCursor {
            postings,
            block: 0,
            pos: 0,
            len_in_block: 0,
            shape: BlockShape::Packed,
            scratch: Vec::new(),
            freq_scratch: Vec::new(),
            freqs_loaded: false,
            visited: 0,
        };
        cursor.enter_block(0);
        cursor
    }

    fn exhausted(&self) -> bool {
        self.block >= self.postings.block_count()
    }

    fn enter_block(&mut self, block: usize) {
        self.block = block;
        self.pos = 0;
        self.freqs_loaded = false;
        if block >= self.postings.block_count() {
            self.len_in_block = 0;
            return;
        }
        self.visited += 1;
        self.len_in_block = self.postings.block_len(block);
        self.shape = self.postings.block_shape(block);
        if matches!(self.shape, BlockShape::Packed) {
            if self.scratch.len() < BLOCK_SIZE {
                self.scratch.resize(BLOCK_SIZE, FileId(0));
            }
            let decoded = self.postings.decode_block(block, &mut self.scratch);
            debug_assert_eq!(decoded, self.len_in_block);
        }
    }

    /// The term frequency of the posting the cursor is on (1 when the list
    /// does not track frequencies).  Decodes the current block's frequency
    /// payload on first access; blocks the skip table jumps over never pay.
    #[must_use]
    pub fn current_tf(&mut self) -> u32 {
        if self.exhausted() || self.pos >= self.len_in_block {
            return 1;
        }
        if self.postings.freqs.is_empty() {
            return 1;
        }
        if !self.freqs_loaded {
            if self.freq_scratch.len() < BLOCK_SIZE {
                self.freq_scratch.resize(BLOCK_SIZE, 1);
            }
            self.postings.decode_freq_block(self.block, &mut self.freq_scratch);
            self.freqs_loaded = true;
        }
        self.freq_scratch[self.pos]
    }

    /// The dequantized score upper bound of the block the cursor is on
    /// (the list maximum when exhausted or unscored).
    #[must_use]
    pub fn current_block_bound(&self) -> f32 {
        if self.exhausted() {
            return 0.0;
        }
        self.postings.block_score_bound(self.block)
    }

    /// The true maximum posting score of the underlying list (`0.0` when
    /// the list is unscored).
    #[must_use]
    pub fn list_max_score(&self) -> f32 {
        self.postings.max_score
    }

    /// The last id of the block the cursor is on, or `None` when exhausted.
    /// Block-max evaluation uses this as the boundary to seek past when the
    /// current block's bound cannot reach the heap threshold.
    #[must_use]
    pub fn current_block_last(&self) -> Option<FileId> {
        (!self.exhausted() && self.len_in_block > 0).then(|| self.block_last())
    }

    /// Blocks this cursor actually entered so far.
    #[must_use]
    pub fn blocks_visited(&self) -> u64 {
        self.visited
    }

    /// Total blocks in the underlying list.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.postings.block_count()
    }

    fn id_at(&self, pos: usize) -> FileId {
        match self.shape {
            BlockShape::Constant { first, gap } => {
                FileId(first.wrapping_add(gap.wrapping_mul(pos as u32)))
            }
            BlockShape::Packed => self.scratch[pos],
        }
    }

    fn block_last(&self) -> FileId {
        self.id_at(self.len_in_block - 1)
    }

    /// First in-block position at or past `from` whose id is `>= target`.
    fn position_in_block(&self, from: usize, target: u32) -> usize {
        match self.shape {
            BlockShape::Constant { first, gap } => {
                if target <= first || gap == 0 {
                    from
                } else {
                    from.max(((target - first).div_ceil(gap)) as usize)
                }
            }
            BlockShape::Packed => {
                from + self.scratch[from..self.len_in_block].partition_point(|&id| id.0 < target)
            }
        }
    }
}

impl PostingCursor for BlockCursor<'_> {
    fn current(&self) -> Option<FileId> {
        (self.pos < self.len_in_block).then(|| self.id_at(self.pos))
    }

    fn advance(&mut self) {
        if self.exhausted() {
            return;
        }
        self.pos += 1;
        if self.pos >= self.len_in_block {
            self.enter_block(self.block + 1);
        }
    }

    fn seek(&mut self, target: FileId) -> Option<FileId> {
        let current = self.current()?;
        if current >= target {
            return Some(current);
        }
        if self.block_last() < target {
            // The whole current block is behind the target.  Gallop the skip
            // table forward from the current block (seeks usually land a few
            // blocks ahead, so an exponential probe beats a full binary
            // search of the table), touching nothing in between (a skip-less
            // list is one block, so it is simply exhausted).
            let skips = &self.postings.skips;
            let next = if skips.is_empty() {
                1
            } else {
                let rest = &skips[self.block + 1..];
                let mut offset = 1usize;
                while offset < rest.len() && rest[offset].last < target {
                    offset <<= 1;
                }
                let lo = offset >> 1;
                let hi = (offset + 1).min(rest.len());
                self.block + 1 + lo + rest[lo..hi].partition_point(|skip| skip.last < target)
            };
            self.enter_block(next);
            if self.exhausted() {
                return None;
            }
            if self.block_last() < target {
                // Only possible when a (corrupt) skip table lies about a
                // block's last id; exhaust instead of asserting.
                self.enter_block(self.postings.block_count());
                return None;
            }
        }
        self.pos = self.position_in_block(self.pos, target.as_u32());
        debug_assert!(self.pos < self.len_in_block, "skip table guaranteed containment");
        self.current()
    }

    fn len(&self) -> usize {
        self.postings.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<FileId> {
        v.iter().map(|&i| FileId(i)).collect()
    }

    fn decode(cp: &CompressedPostings) -> Vec<FileId> {
        let mut out = Vec::new();
        cp.decode_into(&mut out);
        out
    }

    #[test]
    fn empty_list_compresses_to_nothing() {
        let cp = CompressedPostings::from_sorted(&[]);
        assert!(cp.is_empty());
        assert_eq!(cp.len(), 0);
        assert_eq!(cp.byte_size(), 0);
        assert!(decode(&cp).is_empty());
        let mut cursor = cp.cursor();
        assert_eq!(cursor.current(), None);
        assert_eq!(cursor.seek(FileId(0)), None);
        cursor.advance();
        assert_eq!(cursor.current(), None);
    }

    #[test]
    fn dense_runs_bitpack_below_one_byte_per_id() {
        let dense: Vec<FileId> = (0..10_000).map(FileId).collect();
        let cp = CompressedPostings::from_sorted(&dense);
        assert_eq!(decode(&cp), dense);
        // Consecutive ids pack at 1 bit each plus skip/header overhead.
        assert!(
            cp.byte_size() * 2 < dense.len(),
            "dense run should beat 0.5 bytes/id, got {} bytes for {} ids",
            cp.byte_size(),
            dense.len()
        );
    }

    #[test]
    fn sparse_lists_choose_varint() {
        let sparse: Vec<FileId> = (0..500).map(|i| FileId(i * 100_003)).collect();
        let cp = CompressedPostings::from_sorted(&sparse);
        assert_eq!(decode(&cp), sparse);
        // Still far below the 4 bytes/id raw form.
        assert!(cp.byte_size() < sparse.len() * 4);
    }

    #[test]
    fn singleton_lists_cost_one_varint_and_no_skip_entry() {
        let cp = CompressedPostings::from_sorted(&ids(&[42]));
        assert_eq!(cp.data().len(), 1, "one varint byte for id 42");
        assert!(cp.skips().is_empty(), "single-block lists carry no skip table");
        assert_eq!(cp.byte_size(), 1);
        assert_eq!(decode(&cp), ids(&[42]));
        let mut cursor = cp.cursor();
        assert_eq!(cursor.seek(FileId(41)), Some(FileId(42)));
        assert_eq!(cursor.seek(FileId(43)), None);
    }

    #[test]
    fn cursor_walks_and_seeks_across_blocks() {
        let all: Vec<FileId> = (0..1000).map(|i| FileId(i * 3)).collect();
        let cp = CompressedPostings::from_sorted(&all);
        assert_eq!(cp.skips().len(), 1000usize.div_ceil(BLOCK_SIZE));

        // Full walk equals decode.
        let mut cursor = cp.cursor();
        let mut walked = Vec::new();
        while let Some(id) = cursor.current() {
            walked.push(id);
            cursor.advance();
        }
        assert_eq!(walked, all);

        // Seeks: exact hit, between ids, across many blocks, past the end.
        let mut cursor = cp.cursor();
        assert_eq!(cursor.seek(FileId(300)), Some(FileId(300)));
        assert_eq!(cursor.seek(FileId(301)), Some(FileId(303)));
        assert_eq!(cursor.seek(FileId(2500)), Some(FileId(2502)));
        assert_eq!(cursor.seek(FileId(2997)), Some(FileId(2997)));
        assert_eq!(cursor.seek(FileId(3000)), None);
        assert_eq!(cursor.current(), None);
    }

    #[test]
    fn seek_to_block_boundaries() {
        let all: Vec<FileId> = (0..(BLOCK_SIZE as u32 * 3)).map(FileId).collect();
        let cp = CompressedPostings::from_sorted(&all);
        let mut cursor = cp.cursor();
        let boundary = FileId(BLOCK_SIZE as u32);
        assert_eq!(cursor.seek(boundary), Some(boundary));
        let last = FileId(BLOCK_SIZE as u32 * 3 - 1);
        assert_eq!(cursor.seek(last), Some(last));
        cursor.advance();
        assert_eq!(cursor.current(), None);
    }

    #[test]
    fn slice_cursor_matches_block_cursor() {
        let all: Vec<FileId> = (0..600).map(|i| FileId(i * 7 + i % 5)).collect();
        let cp = CompressedPostings::from_sorted(&all);
        let mut slice = SliceCursor::new(&all);
        let mut block = cp.cursor();
        assert_eq!(slice.len(), block.len());
        for target in [0u32, 70, 71, 400, 4000, 4194] {
            assert_eq!(slice.seek(FileId(target)), block.seek(FileId(target)), "seek {target}");
            assert_eq!(slice.current(), block.current());
            slice.advance();
            block.advance();
            assert_eq!(slice.current(), block.current(), "after advance past {target}");
        }
    }

    #[test]
    fn from_parts_validates_structure() {
        let cp = CompressedPostings::from_sorted(&ids(&[1, 2, 3, 200]));
        let rebuilt =
            CompressedPostings::from_parts(cp.len(), cp.skips().to_vec(), cp.data().to_vec())
                .unwrap();
        assert_eq!(rebuilt, cp);

        // Wrong skip count for the length.
        assert!(
            CompressedPostings::from_parts(300, cp.skips().to_vec(), cp.data().to_vec()).is_err()
        );
        // first > last.
        let bad = vec![SkipEntry { first: FileId(9), last: FileId(1), offset: 0 }];
        assert!(CompressedPostings::from_parts(2, bad, vec![0u8]).is_err());
        // Overlapping blocks.
        let bad = vec![
            SkipEntry { first: FileId(0), last: FileId(500), offset: 0 },
            SkipEntry { first: FileId(400), last: FileId(900), offset: 1 },
        ];
        assert!(CompressedPostings::from_parts(BLOCK_SIZE + 1, bad, vec![0u8; 8]).is_err());
        // Offset past the payload.
        let bad = vec![SkipEntry { first: FileId(0), last: FileId(5), offset: 99 }];
        assert!(CompressedPostings::from_parts(2, bad, vec![0u8]).is_err());
        let err = CompressedPostings::from_parts(300, cp.skips().to_vec(), vec![]).unwrap_err();
        assert!(err.to_string().contains("invalid compressed postings"), "{err}");
    }

    #[test]
    fn freqs_roundtrip_and_lazy_cursor_access() {
        let all: Vec<FileId> = (0..500).map(|i| FileId(i * 2)).collect();
        let tfs: Vec<u32> = (0..500).map(|i| 1 + (i % 7)).collect();
        let cp = CompressedPostings::from_counted(&all, &tfs);
        let mut decoded = Vec::new();
        cp.decode_freqs_into(&mut decoded);
        assert_eq!(decoded, tfs);
        assert_eq!(cp.freq_offsets().len(), 500usize.div_ceil(BLOCK_SIZE));

        let mut cursor = cp.cursor();
        assert_eq!(cursor.current_tf(), 1);
        cursor.advance();
        assert_eq!(cursor.current_tf(), 2);
        assert_eq!(cursor.seek(FileId(260)), Some(FileId(260)));
        assert_eq!(cursor.current_tf(), 1 + (130 % 7));

        // All-1 frequencies stay in canonical (absent) form.
        let flat = CompressedPostings::from_counted(&all, &vec![1; 500]);
        assert!(flat.freqs().is_empty());
        assert!(flat.freq_offsets().is_empty());
        assert_eq!(flat.cursor().current_tf(), 1);
        assert_eq!(cp.to_list().tf_of(FileId(2)), Some(2));
    }

    #[test]
    fn constant_freq_blocks_cost_two_bytes() {
        let all: Vec<FileId> = (0..256).map(FileId).collect();
        let mut tfs = vec![3u32; 256];
        tfs[200] = 9; // second block is non-constant
        let cp = CompressedPostings::from_counted(&all, &tfs);
        let first_block_bytes = (cp.freq_offsets()[1] - cp.freq_offsets()[0]) as usize;
        assert_eq!(first_block_bytes, 2, "constant block: header + one varint");
        let mut decoded = Vec::new();
        cp.decode_freqs_into(&mut decoded);
        assert_eq!(decoded, tfs);
    }

    #[test]
    fn block_score_bounds_are_admissible() {
        let all: Vec<FileId> = (0..300).map(FileId).collect();
        let scores: Vec<f32> = (0..300).map(|i| 0.1 + (i % 50) as f32 * 0.03).collect();
        let mut cp = CompressedPostings::from_counted(&all, &[]);
        assert_eq!(cp.max_score(), 0.0);
        assert_eq!(cp.block_score_bound(0), 0.0);
        cp.score_blocks(&scores);
        let list_max = scores.iter().fold(0.0f32, |a, &b| a.max(b));
        assert_eq!(cp.max_score(), list_max);
        assert_eq!(cp.block_scores().len(), 300usize.div_ceil(BLOCK_SIZE));
        for (b, chunk) in scores.chunks(BLOCK_SIZE).enumerate() {
            let true_max = chunk.iter().fold(0.0f32, |a, &s| a.max(s));
            let bound = cp.block_score_bound(b);
            assert!(bound >= true_max, "block {b}: bound {bound} below true max {true_max}");
            assert!(bound <= list_max * 1.01, "block {b}: bound {bound} too loose");
        }
        let mut cursor = cp.cursor();
        assert!(cursor.current_block_bound() > 0.0);
        assert_eq!(cursor.current_block_last(), Some(FileId(BLOCK_SIZE as u32 - 1)));
        assert_eq!(cursor.total_blocks(), 3);
        assert_eq!(cursor.blocks_visited(), 1);
        cursor.seek(FileId(299));
        assert_eq!(cursor.blocks_visited(), 2, "middle block skipped untouched");
    }

    #[test]
    fn scored_parts_roundtrip_and_validate() {
        let all: Vec<FileId> = (0..300).map(|i| FileId(i * 5)).collect();
        let tfs: Vec<u32> = (0..300).map(|i| 1 + i % 4).collect();
        let scores: Vec<f32> = tfs.iter().map(|&tf| tf as f32 * 0.5).collect();
        let mut cp = CompressedPostings::from_counted(&all, &tfs);
        cp.score_blocks(&scores);

        let rebuilt = CompressedPostings::from_parts_scored(
            cp.len(),
            cp.skips().to_vec(),
            cp.data().to_vec(),
            cp.freqs().to_vec(),
            cp.freq_offsets().to_vec(),
            cp.block_scores().to_vec(),
            cp.max_score(),
        )
        .unwrap();
        assert_eq!(rebuilt, cp);

        // Offsets without payload, short tables, bad scores all fail.
        assert!(CompressedPostings::from_parts_scored(
            cp.len(),
            cp.skips().to_vec(),
            cp.data().to_vec(),
            Vec::new(),
            cp.freq_offsets().to_vec(),
            Vec::new(),
            0.0,
        )
        .is_err());
        assert!(CompressedPostings::from_parts_scored(
            cp.len(),
            cp.skips().to_vec(),
            cp.data().to_vec(),
            cp.freqs().to_vec(),
            vec![0],
            Vec::new(),
            0.0,
        )
        .is_err());
        assert!(CompressedPostings::from_parts_scored(
            cp.len(),
            cp.skips().to_vec(),
            cp.data().to_vec(),
            Vec::new(),
            Vec::new(),
            vec![255],
            1.0,
        )
        .is_err());
        assert!(CompressedPostings::from_parts_scored(
            cp.len(),
            cp.skips().to_vec(),
            cp.data().to_vec(),
            Vec::new(),
            Vec::new(),
            cp.block_scores().to_vec(),
            f32::NAN,
        )
        .is_err());
    }

    proptest! {
        /// Frequencies round-trip for arbitrary lists, and every decoded tf
        /// matches what the cursor reports posting by posting.
        #[test]
        fn freq_roundtrip_arbitrary(
            raw in proptest::collection::vec((0u32..100_000, 1u32..20), 1..500)
        ) {
            let mut sorted: Vec<(u32, u32)> = raw;
            sorted.sort_unstable_by_key(|&(id, _)| id);
            sorted.dedup_by_key(|&mut (id, _)| id);
            let all: Vec<FileId> = sorted.iter().map(|&(id, _)| FileId(id)).collect();
            let tfs: Vec<u32> = sorted.iter().map(|&(_, tf)| tf).collect();
            let cp = CompressedPostings::from_counted(&all, &tfs);
            let mut decoded = Vec::new();
            cp.decode_freqs_into(&mut decoded);
            let expect_tracked = tfs.iter().any(|&tf| tf > 1);
            if expect_tracked {
                prop_assert_eq!(&decoded, &tfs);
            } else {
                prop_assert!(decoded.is_empty());
            }
            let mut cursor = cp.cursor();
            for (i, &(id, tf)) in sorted.iter().enumerate() {
                prop_assert_eq!(cursor.current(), Some(FileId(id)), "pos {}", i);
                prop_assert_eq!(cursor.current_tf(), if expect_tracked { tf } else { 1 });
                cursor.advance();
            }
            prop_assert_eq!(cursor.current(), None);
        }

        /// Arbitrary sorted id sets round-trip through compression exactly,
        /// and the byte size never exceeds a small multiple of the raw form.
        #[test]
        fn roundtrip_arbitrary_sorted_sets(
            raw in proptest::collection::vec(0u32..2_000_000, 0..700)
        ) {
            let mut sorted = raw;
            sorted.sort_unstable();
            sorted.dedup();
            let all: Vec<FileId> = sorted.into_iter().map(FileId).collect();
            let cp = CompressedPostings::from_sorted(&all);
            prop_assert_eq!(cp.len(), all.len());
            prop_assert_eq!(decode(&cp), all.clone());
            prop_assert_eq!(cp.to_list().doc_ids(), all.as_slice());
            // Round-trip again through raw parts (the persist path).
            let rebuilt = CompressedPostings::from_parts(
                cp.len(), cp.skips().to_vec(), cp.data().to_vec()).unwrap();
            prop_assert_eq!(decode(&rebuilt), all);
        }

        /// Seeking to arbitrary targets agrees between the block cursor and
        /// a naive scan, from arbitrary interleavings of seeks and advances.
        #[test]
        fn cursor_seek_matches_naive(
            raw in proptest::collection::vec(0u32..50_000, 1..600),
            ops in proptest::collection::vec((any::<bool>(), 0u32..60_000), 1..60),
        ) {
            let mut sorted = raw;
            sorted.sort_unstable();
            sorted.dedup();
            let all: Vec<FileId> = sorted.into_iter().map(FileId).collect();
            let cp = CompressedPostings::from_sorted(&all);
            let mut cursor = cp.cursor();
            let mut naive_pos = 0usize;
            for (advance, target) in ops {
                if advance {
                    cursor.advance();
                    naive_pos = (naive_pos + 1).min(all.len());
                } else {
                    let got = cursor.seek(FileId(target));
                    // seek never moves backwards from the naive position.
                    while naive_pos < all.len() && all[naive_pos] < FileId(target) {
                        naive_pos += 1;
                    }
                    prop_assert_eq!(got, all.get(naive_pos).copied());
                }
                prop_assert_eq!(cursor.current(), all.get(naive_pos).copied());
            }
        }
    }
}
