//! Document (file) identifiers.
//!
//! The index stores compact numeric [`FileId`]s in its posting lists instead
//! of full path strings.  Ids are assigned by the single-threaded Stage 1
//! (filename generation), so no synchronisation is needed later: every
//! extractor thread already knows the id of each file it scans.

use serde::{Deserialize, Serialize};

/// Compact identifier of an indexed file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

impl FileId {
    /// The numeric value.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// The id as a usable index into per-file arrays.
    #[must_use]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Maps [`FileId`]s to file paths and back.
///
/// Construction happens in Stage 1 on a single thread; afterwards the table is
/// only read, so it can be shared freely (`Arc<DocTable>`) between extractor
/// threads, index updaters and the query engine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocTable {
    paths: Vec<String>,
}

impl DocTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        DocTable::default()
    }

    /// Creates a table with the given capacity hint.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        DocTable { paths: Vec::with_capacity(capacity) }
    }

    /// Registers a file path and returns its id.
    ///
    /// Paths are not de-duplicated: Stage 1 produces each filename exactly
    /// once, so checking would be wasted work (this mirrors the paper's
    /// "each file is scanned exactly once" argument).
    pub fn insert(&mut self, path: impl Into<String>) -> FileId {
        let id = FileId(u32::try_from(self.paths.len()).expect("more than u32::MAX files"));
        self.paths.push(path.into());
        id
    }

    /// The path registered under `id`, if any.
    #[must_use]
    pub fn path(&self, id: FileId) -> Option<&str> {
        self.paths.get(id.as_usize()).map(String::as_str)
    }

    /// Number of registered files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Returns `true` when no files are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterates over `(FileId, path)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &str)> {
        self.paths.iter().enumerate().map(|(i, p)| (FileId(i as u32), p.as_str()))
    }

    /// Linear search for the id of `path` (test/debug helper; production code
    /// keeps ids from Stage 1).
    #[must_use]
    pub fn find(&self, path: &str) -> Option<FileId> {
        self.paths.iter().position(|p| p == path).map(|i| FileId(i as u32))
    }
}

impl FromIterator<String> for DocTable {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        DocTable { paths: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut t = DocTable::new();
        let a = t.insert("a.txt");
        let b = t.insert("b.txt");
        assert_eq!(a, FileId(0));
        assert_eq!(b, FileId(1));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn path_lookup_roundtrips() {
        let mut t = DocTable::with_capacity(4);
        let id = t.insert("dir/file.txt");
        assert_eq!(t.path(id), Some("dir/file.txt"));
        assert_eq!(t.path(FileId(99)), None);
        assert_eq!(t.find("dir/file.txt"), Some(id));
        assert_eq!(t.find("missing"), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let t: DocTable = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let pairs: Vec<(FileId, &str)> = t.iter().collect();
        assert_eq!(pairs, vec![(FileId(0), "x"), (FileId(1), "y"), (FileId(2), "z")]);
    }

    #[test]
    fn file_id_display_and_accessors() {
        let id = FileId(7);
        assert_eq!(id.to_string(), "#7");
        assert_eq!(id.as_u32(), 7);
        assert_eq!(id.as_usize(), 7);
    }

    #[test]
    fn duplicate_paths_get_distinct_ids() {
        let mut t = DocTable::new();
        let a = t.insert("same.txt");
        let b = t.insert("same.txt");
        assert_ne!(a, b);
    }
}
