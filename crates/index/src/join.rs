//! Index joining — the "Join Forces" pattern (Implementation 2).
//!
//! Each extractor thread builds a private replica index; at the end the
//! replicas are merged into one.  The paper asks whether a single joining
//! thread is enough or whether a *parallel reduction* with several joiner
//! threads pays off — the configuration tuple's third component *z* is the
//! number of joiner threads.  Both variants are provided here:
//!
//! * [`join_all`] — one thread folds every replica into an accumulator;
//! * [`parallel_join`] — a tree reduction: pairs of replicas are merged
//!   concurrently by up to *z* threads until one index remains.

use crate::memory_index::InMemoryIndex;

/// Merges `src` into `dst`.
///
/// Thin wrapper over [`InMemoryIndex::absorb`] kept as a free function so the
/// pipeline code reads like the paper's description ("join the indices").
pub fn join_into(dst: &mut InMemoryIndex, src: InMemoryIndex) {
    dst.absorb(src);
}

/// Joins all replicas with a single thread, returning the combined index.
#[must_use]
pub fn join_all(replicas: Vec<InMemoryIndex>) -> InMemoryIndex {
    let mut iter = replicas.into_iter();
    let Some(mut acc) = iter.next() else {
        return InMemoryIndex::new();
    };
    for replica in iter {
        acc.absorb(replica);
    }
    acc
}

/// Describes how a parallel join will proceed (for reports and the
/// simulator's cost model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// Number of replicas being joined.
    pub replicas: usize,
    /// Number of joiner threads requested (z).
    pub threads: usize,
    /// Number of pairwise merge rounds the tree reduction needs.
    pub rounds: usize,
}

impl JoinPlan {
    /// Computes the plan for joining `replicas` replicas with `threads`
    /// joiner threads.
    #[must_use]
    pub fn new(replicas: usize, threads: usize) -> Self {
        let rounds =
            if replicas <= 1 { 0 } else { (usize::BITS - (replicas - 1).leading_zeros()) as usize };
        JoinPlan { replicas, threads: threads.max(1), rounds }
    }

    /// Total pairwise merges performed across all rounds.
    #[must_use]
    pub fn total_merges(&self) -> usize {
        self.replicas.saturating_sub(1)
    }
}

/// Joins replicas with a parallel tree reduction using at most `threads`
/// worker threads.
///
/// With `threads == 1` (or one replica) this degenerates to [`join_all`].
/// The result is identical to the sequential join regardless of thread count.
#[must_use]
pub fn parallel_join(replicas: Vec<InMemoryIndex>, threads: usize) -> InMemoryIndex {
    let threads = threads.max(1);
    if threads == 1 || replicas.len() <= 2 {
        return join_all(replicas);
    }

    let mut current = replicas;
    while current.len() > 1 {
        // Pair up replicas for this round.
        let mut pairs: Vec<(InMemoryIndex, Option<InMemoryIndex>)> = Vec::new();
        let mut iter = current.drain(..);
        while let Some(a) = iter.next() {
            let b = iter.next();
            pairs.push((a, b));
        }
        drop(iter);

        // Merge each pair; spread the pairs over up to `threads` workers.
        let merged: Vec<InMemoryIndex> = if pairs.len() == 1 || threads == 1 {
            pairs
                .into_iter()
                .map(|(mut a, b)| {
                    if let Some(b) = b {
                        a.absorb(b);
                    }
                    a
                })
                .collect()
        } else {
            let worker_count = threads.min(pairs.len());
            let chunk_size = pairs.len().div_ceil(worker_count);
            let chunks: Vec<Vec<(InMemoryIndex, Option<InMemoryIndex>)>> = {
                let mut chunks = Vec::new();
                let mut it = pairs.into_iter().peekable();
                while it.peek().is_some() {
                    chunks.push(it.by_ref().take(chunk_size).collect());
                }
                chunks
            };
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .into_iter()
                                .map(|(mut a, b)| {
                                    if let Some(b) = b {
                                        a.absorb(b);
                                    }
                                    a
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("join worker panicked")).collect()
            })
        };
        current = merged;
    }
    current.into_iter().next().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc_table::FileId;
    use dsearch_text::tokenizer::Term;
    use proptest::prelude::*;

    fn build_replicas(
        docs: &[(u32, Vec<String>)],
        replica_count: usize,
    ) -> (Vec<InMemoryIndex>, InMemoryIndex) {
        let mut sequential = InMemoryIndex::new();
        let mut replicas: Vec<InMemoryIndex> =
            (0..replica_count).map(|_| InMemoryIndex::new()).collect();
        for (i, (file, words)) in docs.iter().enumerate() {
            let mut uniq = words.clone();
            uniq.sort();
            uniq.dedup();
            let terms: Vec<Term> = uniq.iter().map(|w| Term::from(w.as_str())).collect();
            sequential.insert_file(FileId(*file), terms.clone());
            replicas[i % replica_count].insert_file(FileId(*file), terms);
        }
        (replicas, sequential)
    }

    #[test]
    fn join_all_of_nothing_is_empty() {
        let joined = join_all(Vec::new());
        assert!(joined.is_empty());
        let joined = parallel_join(Vec::new(), 4);
        assert!(joined.is_empty());
    }

    #[test]
    fn join_all_single_replica_is_identity() {
        let mut idx = InMemoryIndex::new();
        idx.insert_file(FileId(0), [Term::from("only")]);
        let joined = join_all(vec![idx.clone()]);
        assert_eq!(joined, idx);
    }

    #[test]
    fn join_into_absorbs() {
        let mut a = InMemoryIndex::new();
        a.insert_file(FileId(0), [Term::from("a")]);
        let mut b = InMemoryIndex::new();
        b.insert_file(FileId(1), [Term::from("a"), Term::from("b")]);
        join_into(&mut a, b);
        assert_eq!(a.term_count(), 2);
        assert_eq!(a.postings(&Term::from("a")).unwrap().len(), 2);
    }

    #[test]
    fn sequential_and_parallel_join_agree() {
        let docs: Vec<(u32, Vec<String>)> = (0..60)
            .map(|i| {
                (i, vec![format!("w{}", i % 7), "everywhere".to_string(), format!("unique{i}")])
            })
            .collect();
        for replica_count in [1, 2, 3, 5, 8] {
            let (replicas, sequential) = build_replicas(&docs, replica_count);
            let joined_seq = join_all(replicas.clone());
            assert_eq!(joined_seq, sequential, "sequential join, {replica_count} replicas");
            for threads in [1, 2, 4] {
                let joined_par = parallel_join(replicas.clone(), threads);
                assert_eq!(
                    joined_par, sequential,
                    "parallel join, {replica_count} replicas, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn join_plan_rounds_and_merges() {
        assert_eq!(JoinPlan::new(0, 2).rounds, 0);
        assert_eq!(JoinPlan::new(1, 2).rounds, 0);
        assert_eq!(JoinPlan::new(2, 2).rounds, 1);
        assert_eq!(JoinPlan::new(3, 2).rounds, 2);
        assert_eq!(JoinPlan::new(8, 4).rounds, 3);
        assert_eq!(JoinPlan::new(8, 4).total_merges(), 7);
        assert_eq!(JoinPlan::new(1, 0).threads, 1);
    }

    proptest! {
        /// Parallel join result never depends on the number of joiner threads
        /// or on how documents were distributed across replicas.
        #[test]
        fn parallel_join_deterministic(
            docs in proptest::collection::vec(
                (0u32..40, proptest::collection::vec("[a-c]{1,2}", 1..5)),
                1..30,
            ),
            replica_count in 1usize..6,
            threads in 1usize..5,
        ) {
            let (replicas, sequential) = build_replicas(&docs, replica_count);
            let joined = parallel_join(replicas, threads);
            prop_assert_eq!(joined, sequential);
        }
    }
}
