//! Inverted index for the `dsearch` desktop-search engine.
//!
//! The index maps every term to the list of files it occurs in.  The paper
//! compares three ways of updating it from multiple term-extractor threads;
//! this crate provides the building blocks for all three:
//!
//! * [`InMemoryIndex`] — the single-threaded index structure (an FNV hash map
//!   from term to posting list, as in the original Boost-based C++ code);
//! * [`SharedIndex`] — one index behind a lock, updated by every thread
//!   (**Implementation 1**);
//! * [`join`] — merging per-thread replica indices at the end of the run,
//!   either with a single thread or as a parallel reduction
//!   (**Implementation 2**, the "Join Forces" pattern);
//! * [`IndexSet`] — a collection of un-joined replicas that can be searched
//!   together (**Implementation 3**);
//! * [`ShardedIndex`] — a term-sharded index with one lock per shard, used by
//!   the ablation benchmarks as a fourth design point;
//! * [`DocTable`] — the table mapping compact [`FileId`]s to file paths,
//!   assigned during filename generation so the extractors need no
//!   synchronisation to name files;
//! * [`view`] — borrowed [`PostingView`]s over posting lists plus the
//!   allocation-free set operations (galloping intersection, k-way heap
//!   union), the [`Postings`] borrow-or-owned wrapper the query layer
//!   evaluates with, and the cursor-based set operations that run over
//!   compressed and raw lists alike;
//! * [`block`] — block-compressed posting lists ([`CompressedPostings`]:
//!   128-id delta blocks with per-block skip metadata) and the skip-aware
//!   [`BlockCursor`]/[`SliceCursor`] cursors;
//! * [`sealed`] — [`SealedShard`], the immutable serving form: a sorted
//!   interned term dictionary aligned with compressed postings.
//!
//! # Example
//!
//! ```
//! use dsearch_index::{DocTable, InMemoryIndex};
//! use dsearch_text::Term;
//!
//! let mut docs = DocTable::new();
//! let report = docs.insert("docs/report.txt");
//! let notes = docs.insert("docs/notes.txt");
//!
//! let mut index = InMemoryIndex::new();
//! index.insert_file(report, [Term::from("quarterly"), Term::from("revenue")]);
//! index.insert_file(notes, [Term::from("revenue"), Term::from("meeting")]);
//!
//! let hits = index.postings(&Term::from("revenue")).unwrap();
//! assert_eq!(hits.doc_ids(), &[report, notes]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod doc_table;
pub mod join;
pub mod memory_index;
pub mod posting;
pub mod sealed;
pub mod serialize;
pub mod sharded;
pub mod shared;
pub mod stats;
pub mod view;

pub use block::{
    BlockCursor, BlockFormatError, CompressedPostings, PostingCursor, SkipEntry, SliceCursor,
    BLOCK_SIZE,
};
pub use doc_table::{DocTable, FileId};
pub use join::{join_all, join_into, parallel_join, JoinPlan};
pub use memory_index::InMemoryIndex;
pub use posting::PostingList;
pub use sealed::{bm25_idf, bm25_neutral_norm, bm25_score, SealedShard, BM25_B, BM25_K1};
pub use serialize::{IndexSnapshot, SerializeError};
pub use sharded::ShardedIndex;
pub use shared::{IndexSet, SharedIndex};
pub use stats::IndexStats;
pub use view::{
    difference_cursors_into, intersect_cursors_into, union_cursors_into, union_into, PostingView,
    Postings, PostingsCursor,
};
