//! The single-threaded in-memory inverted index.
//!
//! [`InMemoryIndex`] is the structure every implementation ultimately builds:
//! an FNV hash map from [`Term`] to [`PostingList`].  Implementation 1 wraps
//! it in a lock ([`crate::SharedIndex`]); Implementations 2 and 3 give each
//! extractor thread a private one ("replica") and either join them
//! ([`crate::join`]) or search them together ([`crate::IndexSet`]).
//!
//! The update path follows the paper's design: terms arrive **en bloc** as the
//! de-duplicated word list of one file ([`InMemoryIndex::insert_file`]), so no
//! `(term, filename)` duplicate check is ever needed.

use dsearch_text::hashtable::FnvHashMap;
use dsearch_text::tokenizer::Term;

use crate::doc_table::FileId;
use crate::posting::PostingList;
use crate::stats::IndexStats;

/// An in-memory inverted index: term → posting list.
#[derive(Debug, Clone, Default)]
pub struct InMemoryIndex {
    terms: FnvHashMap<Term, PostingList>,
    files_indexed: u64,
    postings: u64,
    /// Total term occurrences per file (the BM25 document length).  Files
    /// inserted through the uncounted path get their distinct-term count,
    /// which is exact when every frequency is 1.
    doc_lens: std::collections::HashMap<FileId, u32>,
    /// Sorted term dictionary for binary-searched prefix ranges; valid only
    /// while `dictionary_valid` (any mutation invalidates it).  Built by
    /// [`InMemoryIndex::build_dictionary`], typically once per serving
    /// snapshot after loading.
    dictionary: Vec<Term>,
    dictionary_valid: bool,
}

impl InMemoryIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        InMemoryIndex::default()
    }

    /// Creates an empty index pre-sized for roughly `expected_terms` distinct
    /// terms.
    #[must_use]
    pub fn with_capacity(expected_terms: usize) -> Self {
        InMemoryIndex {
            terms: FnvHashMap::with_capacity(expected_terms),
            files_indexed: 0,
            postings: 0,
            doc_lens: std::collections::HashMap::new(),
            dictionary: Vec::new(),
            dictionary_valid: false,
        }
    }

    /// Inserts the (already de-duplicated) terms of one file.
    ///
    /// This is the en-bloc update of the paper: one call per file, no
    /// duplicate checking inside the index.  Every term frequency is taken
    /// as 1; extractors that track occurrence counts should use
    /// [`InMemoryIndex::insert_file_counted`] instead.
    pub fn insert_file<I>(&mut self, file: FileId, terms: I)
    where
        I: IntoIterator<Item = Term>,
    {
        self.insert_file_counted(file, terms.into_iter().map(|t| (t, 1)));
    }

    /// Inserts the de-duplicated terms of one file together with their
    /// per-file occurrence counts, recording the document length (total
    /// occurrences) for ranked retrieval.
    pub fn insert_file_counted<I>(&mut self, file: FileId, terms: I)
    where
        I: IntoIterator<Item = (Term, u32)>,
    {
        self.dictionary_valid = false;
        let mut doc_len: u64 = 0;
        for (term, tf) in terms {
            let tf = tf.max(1);
            doc_len += u64::from(tf);
            let list = self.terms.entry_or_default(term);
            if list.add_with_tf(file, tf) {
                self.postings += 1;
            }
        }
        self.doc_lens.insert(file, u32::try_from(doc_len).unwrap_or(u32::MAX));
        self.files_indexed += 1;
    }

    /// Inserts a single `(term, file)` pair.
    ///
    /// This is the *per-occurrence* update path used only by the ablation that
    /// disables the condensed word list; it must tolerate duplicates.
    pub fn insert_occurrence(&mut self, file: FileId, term: Term) {
        self.dictionary_valid = false;
        let list = self.terms.entry_or_default(term);
        if list.add(file) {
            self.postings += 1;
        }
        let len = self.doc_lens.entry(file).or_insert(0);
        *len = len.saturating_add(1);
    }

    /// Records (or restores) the document length of `file` directly — the
    /// segment-load path uses this to rebuild lengths persisted in v3
    /// segments.
    pub fn note_doc_len(&mut self, file: FileId, len: u32) {
        self.doc_lens.insert(file, len);
    }

    /// The recorded document length (total term occurrences) of `file`.
    #[must_use]
    pub fn doc_len(&self, file: FileId) -> Option<u32> {
        self.doc_lens.get(&file).copied()
    }

    /// Iterates over `(file, document length)` pairs in unspecified order.
    pub fn doc_lens(&self) -> impl Iterator<Item = (FileId, u32)> + '_ {
        self.doc_lens.iter().map(|(&f, &l)| (f, l))
    }

    /// Sum of all recorded document lengths (for average-length scoring
    /// statistics).
    #[must_use]
    pub fn total_doc_len(&self) -> u64 {
        self.doc_lens.values().map(|&l| u64::from(l)).sum()
    }

    /// Records that one file has been fully processed via
    /// [`InMemoryIndex::insert_occurrence`] calls.
    pub fn note_file_done(&mut self) {
        self.files_indexed += 1;
    }

    /// Inserts one term's complete posting list in bulk, unioning with any
    /// existing list for the term.
    ///
    /// This is the reconstruction path for segment loading and snapshot
    /// restore: one map operation and one merge per term, instead of the
    /// per-id `add` loop those paths used to run (which degrades to O(n²)
    /// element shifts when ids arrive out of order).  The file counter is
    /// not touched; callers restore it via [`InMemoryIndex::note_file_done`].
    pub fn insert_term_list(&mut self, term: Term, list: PostingList) {
        if list.is_empty() {
            return;
        }
        self.dictionary_valid = false;
        if let Some(mine) = self.terms.get_mut(term.as_str()) {
            let before = mine.len();
            mine.union_with(&list);
            self.postings += (mine.len() - before) as u64;
        } else {
            self.postings += list.len() as u64;
            self.terms.insert(term, list);
        }
    }

    /// The posting list for `term`, if the term occurs anywhere.
    #[must_use]
    pub fn postings(&self, term: &Term) -> Option<&PostingList> {
        self.terms.get(term.as_str())
    }

    /// Returns `true` when `term` occurs in at least one file.
    #[must_use]
    pub fn contains_term(&self, term: &Term) -> bool {
        self.terms.contains_key(term.as_str())
    }

    /// Number of distinct terms.
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Number of `(term, file)` postings.
    #[must_use]
    pub fn posting_count(&self) -> u64 {
        self.postings
    }

    /// Number of files inserted.
    #[must_use]
    pub fn file_count(&self) -> u64 {
        self.files_indexed
    }

    /// Returns `true` when nothing has been indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(term, posting list)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Term, &PostingList)> {
        self.terms.iter()
    }

    /// Builds (or rebuilds) the sorted term dictionary that turns prefix
    /// lookups into a binary-searched range instead of a full-table scan.
    ///
    /// Serving-side snapshots call this once after loading a shard; mutation
    /// invalidates the dictionary, so long-lived mutable indices simply fall
    /// back to the scan until sealed again.  A no-op when already valid.
    ///
    /// The dictionary clones each term string, a deliberate trade-off: it
    /// costs one O(vocabulary) copy per snapshot publish and a second copy
    /// of the term text in memory, in exchange for keeping the hash map and
    /// the range structure independent (no self-borrowing).  Interning terms
    /// (`Arc<str>`-backed `Term`) would remove the duplication — noted as a
    /// ROADMAP follow-up.
    pub fn build_dictionary(&mut self) {
        if self.dictionary_valid {
            return;
        }
        self.dictionary.clear();
        self.dictionary.extend(self.terms.iter().map(|(term, _)| term.clone()));
        self.dictionary.sort_unstable();
        self.dictionary_valid = true;
    }

    /// The sorted term dictionary, when built and still valid.
    #[must_use]
    pub fn dictionary(&self) -> Option<&[Term]> {
        self.dictionary_valid.then_some(self.dictionary.as_slice())
    }

    /// The posting lists of every term starting with `prefix`.
    ///
    /// With a valid dictionary this is a binary search to the start of the
    /// matching range plus one walk over its members; otherwise it scans the
    /// whole table (same results, linear cost).  Callers union the returned
    /// lists, typically through [`crate::view::union_into`].
    #[must_use]
    pub fn prefix_lists(&self, prefix: &str) -> Vec<&PostingList> {
        if self.dictionary_valid {
            let start = self.dictionary.partition_point(|term| term.as_str() < prefix);
            self.dictionary[start..]
                .iter()
                .take_while(|term| term.as_str().starts_with(prefix))
                .filter_map(|term| self.terms.get(term.as_str()))
                .collect()
        } else {
            self.iter()
                .filter(|(term, _)| term.as_str().starts_with(prefix))
                .map(|(_, list)| list)
                .collect()
        }
    }

    /// Merges `other` into `self` (used by the join stage).
    pub fn merge_from(&mut self, other: &InMemoryIndex) {
        self.dictionary_valid = false;
        for (term, list) in other.iter() {
            let mine = self.terms.entry_or_default(term.clone());
            let before = mine.len();
            mine.union_with(list);
            self.postings += (mine.len() - before) as u64;
        }
        for (&file, &len) in &other.doc_lens {
            let mine = self.doc_lens.entry(file).or_insert(0);
            *mine = (*mine).max(len);
        }
        self.files_indexed += other.files_indexed;
    }

    /// Consumes `other` and merges it into `self`, reusing `other`'s posting
    /// lists where possible.
    pub fn absorb(&mut self, other: InMemoryIndex) {
        self.dictionary_valid = false;
        for (file, len) in other.doc_lens {
            let mine = self.doc_lens.entry(file).or_insert(0);
            *mine = (*mine).max(len);
        }
        for (term, list) in other.terms.into_iter_pairs() {
            if let Some(mine) = self.terms.get_mut(term.as_str()) {
                let before = mine.len();
                mine.union_with(&list);
                self.postings += (mine.len() - before) as u64;
            } else {
                self.postings += list.len() as u64;
                self.terms.insert(term, list);
            }
        }
        self.files_indexed += other.files_indexed;
    }

    /// Removes every posting of `file` from the index.
    ///
    /// Returns the number of postings removed.  Terms whose posting list
    /// becomes empty are dropped entirely.  The file counter is decremented
    /// when anything was removed.  Used by the incremental re-indexer when a
    /// file is deleted or modified.
    pub fn remove_file(&mut self, file: FileId) -> u64 {
        self.dictionary_valid = false;
        let affected: Vec<Term> = self
            .iter()
            .filter(|(_, list)| list.contains(file))
            .map(|(term, _)| term.clone())
            .collect();
        let mut removed = 0u64;
        for term in affected {
            if let Some(list) = self.terms.get_mut(term.as_str()) {
                if list.remove(file) {
                    removed += 1;
                }
                if list.is_empty() {
                    self.terms.remove(term.as_str());
                }
            }
        }
        self.postings -= removed;
        self.doc_lens.remove(&file);
        if removed > 0 && self.files_indexed > 0 {
            self.files_indexed -= 1;
        }
        removed
    }

    /// Summary statistics for reports and tests.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        let mut longest = 0usize;
        for (_, list) in self.iter() {
            longest = longest.max(list.len());
        }
        IndexStats {
            distinct_terms: self.term_count() as u64,
            postings: self.postings,
            files: self.files_indexed,
            longest_posting_list: longest as u64,
        }
    }

    /// Collects the index into a sorted `(term, ids)` list, for comparisons in
    /// tests and serialization.
    #[must_use]
    pub fn to_sorted_entries(&self) -> Vec<(Term, Vec<FileId>)> {
        let mut entries: Vec<(Term, Vec<FileId>)> =
            self.iter().map(|(t, p)| (t.clone(), p.doc_ids().to_vec())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }
}

impl PartialEq for InMemoryIndex {
    /// Two indices are equal when they map the same terms to the same file
    /// sets (bookkeeping counters other than the posting structure are not
    /// compared; `files_indexed` differs legitimately between a joined index
    /// and a sequentially built one only if files were empty).
    fn eq(&self, other: &Self) -> bool {
        self.to_sorted_entries() == other.to_sorted_entries()
    }
}

impl Eq for InMemoryIndex {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: &str) -> Term {
        Term::from(s)
    }

    #[test]
    fn insert_file_builds_postings() {
        let mut idx = InMemoryIndex::new();
        idx.insert_file(FileId(0), [t("alpha"), t("beta")]);
        idx.insert_file(FileId(1), [t("beta"), t("gamma")]);

        assert_eq!(idx.term_count(), 3);
        assert_eq!(idx.posting_count(), 4);
        assert_eq!(idx.file_count(), 2);
        assert_eq!(idx.postings(&t("beta")).unwrap().doc_ids(), &[FileId(0), FileId(1)]);
        assert_eq!(idx.postings(&t("alpha")).unwrap().doc_ids(), &[FileId(0)]);
        assert!(idx.postings(&t("delta")).is_none());
        assert!(idx.contains_term(&t("gamma")));
        assert!(!idx.is_empty());
    }

    #[test]
    fn counted_insert_records_tfs_and_doc_lens() {
        let mut idx = InMemoryIndex::new();
        idx.insert_file_counted(FileId(0), [(t("alpha"), 3), (t("beta"), 1)]);
        idx.insert_file(FileId(1), [t("beta")]);

        assert_eq!(idx.postings(&t("alpha")).unwrap().tf_of(FileId(0)), Some(3));
        assert_eq!(idx.postings(&t("beta")).unwrap().tf_of(FileId(0)), Some(1));
        assert_eq!(idx.postings(&t("beta")).unwrap().tf_of(FileId(1)), Some(1));
        assert_eq!(idx.doc_len(FileId(0)), Some(4));
        assert_eq!(idx.doc_len(FileId(1)), Some(1));
        assert_eq!(idx.total_doc_len(), 5);
        assert_eq!(idx.doc_lens().count(), 2);

        idx.remove_file(FileId(0));
        assert_eq!(idx.doc_len(FileId(0)), None);
        assert_eq!(idx.total_doc_len(), 1);
    }

    #[test]
    fn merge_carries_doc_lens_and_tfs() {
        let mut a = InMemoryIndex::new();
        a.insert_file_counted(FileId(0), [(t("x"), 5)]);
        let mut b = InMemoryIndex::new();
        b.insert_file_counted(FileId(1), [(t("x"), 2), (t("y"), 1)]);

        let mut merged = a.clone();
        merged.merge_from(&b);
        assert_eq!(merged.doc_len(FileId(0)), Some(5));
        assert_eq!(merged.doc_len(FileId(1)), Some(3));
        assert_eq!(merged.postings(&t("x")).unwrap().tf_of(FileId(0)), Some(5));
        assert_eq!(merged.postings(&t("x")).unwrap().tf_of(FileId(1)), Some(2));

        a.absorb(b);
        assert_eq!(a.doc_len(FileId(1)), Some(3));
        assert_eq!(a.postings(&t("x")).unwrap().tf_of(FileId(1)), Some(2));
    }

    #[test]
    fn per_occurrence_path_tolerates_duplicates() {
        let mut idx = InMemoryIndex::new();
        idx.insert_occurrence(FileId(3), t("dup"));
        idx.insert_occurrence(FileId(3), t("dup"));
        idx.insert_occurrence(FileId(4), t("dup"));
        idx.note_file_done();
        idx.note_file_done();
        assert_eq!(idx.posting_count(), 2);
        assert_eq!(idx.file_count(), 2);
        assert_eq!(idx.postings(&t("dup")).unwrap().len(), 2);
    }

    #[test]
    fn merge_from_unions_postings() {
        let mut a = InMemoryIndex::new();
        a.insert_file(FileId(0), [t("x"), t("y")]);
        let mut b = InMemoryIndex::new();
        b.insert_file(FileId(1), [t("y"), t("z")]);

        a.merge_from(&b);
        assert_eq!(a.term_count(), 3);
        assert_eq!(a.posting_count(), 4);
        assert_eq!(a.file_count(), 2);
        assert_eq!(a.postings(&t("y")).unwrap().doc_ids(), &[FileId(0), FileId(1)]);
    }

    #[test]
    fn absorb_equals_merge_from() {
        let mut a1 = InMemoryIndex::new();
        a1.insert_file(FileId(0), [t("x"), t("y")]);
        let mut a2 = a1.clone();

        let mut b = InMemoryIndex::new();
        b.insert_file(FileId(1), [t("y"), t("z")]);
        b.insert_file(FileId(2), [t("x")]);

        a1.merge_from(&b);
        a2.absorb(b);
        assert_eq!(a1, a2);
        assert_eq!(a1.posting_count(), a2.posting_count());
    }

    #[test]
    fn remove_file_drops_postings_and_empty_terms() {
        let mut idx = InMemoryIndex::new();
        idx.insert_file(FileId(0), [t("shared"), t("only0")]);
        idx.insert_file(FileId(1), [t("shared"), t("only1")]);
        assert_eq!(idx.posting_count(), 4);

        let removed = idx.remove_file(FileId(0));
        assert_eq!(removed, 2);
        assert_eq!(idx.posting_count(), 2);
        assert_eq!(idx.file_count(), 1);
        assert!(!idx.contains_term(&t("only0")), "empty posting lists are dropped");
        assert_eq!(idx.postings(&t("shared")).unwrap().doc_ids(), &[FileId(1)]);

        // Removing a file with no postings is a no-op.
        assert_eq!(idx.remove_file(FileId(7)), 0);
        assert_eq!(idx.file_count(), 1);
    }

    #[test]
    fn remove_then_reinsert_matches_fresh_index() {
        let mut idx = InMemoryIndex::new();
        idx.insert_file(FileId(0), [t("a"), t("b")]);
        idx.insert_file(FileId(1), [t("b"), t("c")]);
        idx.remove_file(FileId(1));
        idx.insert_file(FileId(1), [t("c"), t("d")]);

        let mut fresh = InMemoryIndex::new();
        fresh.insert_file(FileId(0), [t("a"), t("b")]);
        fresh.insert_file(FileId(1), [t("c"), t("d")]);
        assert_eq!(idx, fresh);
        assert_eq!(idx.posting_count(), fresh.posting_count());
    }

    #[test]
    fn stats_report_shape() {
        let mut idx = InMemoryIndex::new();
        idx.insert_file(FileId(0), [t("common"), t("rare1")]);
        idx.insert_file(FileId(1), [t("common"), t("rare2")]);
        idx.insert_file(FileId(2), [t("common")]);
        let s = idx.stats();
        assert_eq!(s.distinct_terms, 3);
        assert_eq!(s.postings, 5);
        assert_eq!(s.files, 3);
        assert_eq!(s.longest_posting_list, 3);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = InMemoryIndex::new();
        a.insert_file(FileId(0), [t("p"), t("q")]);
        a.insert_file(FileId(1), [t("q")]);

        let mut b = InMemoryIndex::new();
        b.insert_file(FileId(1), [t("q")]);
        b.insert_file(FileId(0), [t("q"), t("p")]);

        assert_eq!(a, b);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = InMemoryIndex::with_capacity(1000);
        let mut b = InMemoryIndex::new();
        for i in 0..50u32 {
            a.insert_file(FileId(i), [t("w"), Term::from(format!("t{i}"))]);
            b.insert_file(FileId(i), [t("w"), Term::from(format!("t{i}"))]);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn dictionary_lifecycle() {
        let mut idx = InMemoryIndex::new();
        assert!(idx.dictionary().is_none());
        idx.insert_file(FileId(0), [t("beta"), t("alpha"), t("alphabet")]);
        assert!(idx.dictionary().is_none(), "mutation leaves the dictionary unbuilt");
        idx.build_dictionary();
        let dict = idx.dictionary().unwrap();
        assert_eq!(dict, &[t("alpha"), t("alphabet"), t("beta")]);
        // Mutation invalidates; rebuilding restores.
        idx.insert_file(FileId(1), [t("gamma")]);
        assert!(idx.dictionary().is_none());
        idx.build_dictionary();
        assert_eq!(idx.dictionary().unwrap().len(), 4);
        // Rebuilding a valid dictionary is a no-op.
        idx.build_dictionary();
        assert_eq!(idx.dictionary().unwrap().len(), 4);
    }

    #[test]
    fn prefix_lists_with_and_without_dictionary() {
        let mut idx = InMemoryIndex::new();
        idx.insert_file(FileId(0), [t("index"), t("indexes"), t("into"), t("java")]);
        idx.insert_file(FileId(1), [t("index"), t("rust")]);

        let collect = |idx: &InMemoryIndex, prefix: &str| {
            let mut all: Vec<Vec<FileId>> =
                idx.prefix_lists(prefix).iter().map(|l| l.doc_ids().to_vec()).collect();
            all.sort();
            all
        };
        let scanned = collect(&idx, "inde");
        idx.build_dictionary();
        assert_eq!(collect(&idx, "inde"), scanned);
        assert_eq!(idx.prefix_lists("inde").len(), 2);
        assert_eq!(idx.prefix_lists("").len(), 5);
        assert!(idx.prefix_lists("zz").is_empty());
        // A prefix past every term must not panic at the range boundary.
        assert!(idx.prefix_lists("zzzz").is_empty());
    }

    proptest! {
        /// Dictionary-backed prefix ranges return exactly the lists a linear
        /// scan finds, for arbitrary vocabularies and prefixes.
        #[test]
        fn dictionary_prefix_matches_scan(
            docs in proptest::collection::vec(
                (0u32..64, proptest::collection::vec("[a-c]{1,4}", 1..6)),
                1..30,
            ),
            prefix in "[a-c]{0,3}",
        ) {
            let mut idx = InMemoryIndex::new();
            for (file, words) in &docs {
                let mut uniq = words.clone();
                uniq.sort();
                uniq.dedup();
                idx.insert_file(FileId(*file), uniq.iter().map(|w| Term::from(w.as_str())));
            }
            let normalize = |lists: Vec<&PostingList>| {
                let mut all: Vec<Vec<FileId>> =
                    lists.into_iter().map(|l| l.doc_ids().to_vec()).collect();
                all.sort();
                all
            };
            let scanned = normalize(idx.prefix_lists(&prefix));
            idx.build_dictionary();
            let ranged = normalize(idx.prefix_lists(&prefix));
            prop_assert_eq!(ranged, scanned);
        }

        /// Splitting a stream of (file, terms) insertions across two indices
        /// and merging them equals inserting everything into one index.
        #[test]
        fn merge_is_equivalent_to_sequential(
            docs in proptest::collection::vec(
                (0u32..64, proptest::collection::vec("[a-e]{1,3}", 1..8)),
                1..40,
            )
        ) {
            let mut sequential = InMemoryIndex::new();
            let mut left = InMemoryIndex::new();
            let mut right = InMemoryIndex::new();
            for (i, (file, words)) in docs.iter().enumerate() {
                // De-duplicate per file, as the extractor would.
                let mut uniq: Vec<&String> = words.iter().collect();
                uniq.sort();
                uniq.dedup();
                let terms: Vec<Term> = uniq.iter().map(|w| Term::from(w.as_str())).collect();
                sequential.insert_file(FileId(*file), terms.clone());
                if i % 2 == 0 {
                    left.insert_file(FileId(*file), terms);
                } else {
                    right.insert_file(FileId(*file), terms);
                }
            }
            let mut joined = left.clone();
            joined.merge_from(&right);
            prop_assert_eq!(&joined, &sequential);

            let mut absorbed = left;
            absorbed.absorb(right);
            prop_assert_eq!(&absorbed, &sequential);
        }

        /// posting_count always equals the sum of posting-list lengths.
        #[test]
        fn posting_count_is_consistent(
            docs in proptest::collection::vec(
                (0u32..32, proptest::collection::vec("[a-d]{1,2}", 1..6)),
                0..30,
            )
        ) {
            let mut idx = InMemoryIndex::new();
            for (file, words) in &docs {
                let mut uniq = words.clone();
                uniq.sort();
                uniq.dedup();
                idx.insert_file(FileId(*file), uniq.iter().map(|w| Term::from(w.as_str())));
            }
            let total: u64 = idx.iter().map(|(_, p)| p.len() as u64).sum();
            prop_assert_eq!(idx.posting_count(), total);
        }
    }
}
