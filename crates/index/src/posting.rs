//! Posting lists.
//!
//! A posting list records which files contain a given term.  Because each
//! extractor hands the index a de-duplicated word list per file, a file id is
//! added to any particular term's list at most once per index, so the list is
//! a set of file ids.  It is kept sorted to make joins (set unions) and query
//! intersections linear.

use serde::{Deserialize, Serialize};

use crate::doc_table::FileId;
use crate::view::PostingView;

/// A sorted, duplicate-free list of the files containing one term.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingList {
    ids: Vec<FileId>,
}

impl PostingList {
    /// Creates an empty posting list.
    #[must_use]
    pub fn new() -> Self {
        PostingList::default()
    }

    /// Creates a list from an iterator of file ids (sorted and de-duplicated).
    pub fn from_ids<I: IntoIterator<Item = FileId>>(ids: I) -> Self {
        let mut ids: Vec<FileId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        PostingList { ids }
    }

    /// Builds a list from an id vector in **any** order, reusing the
    /// allocation: one sort + dedup instead of the per-element binary-search
    /// insert a descending [`PostingList::add`] loop degrades to (O(n log n)
    /// instead of O(n²) shifts).  Bulk build paths — segment loading,
    /// snapshot reconstruction — should come through here or
    /// [`PostingList::from_sorted`], never an `add` loop.
    #[must_use]
    pub fn from_unsorted(mut ids: Vec<FileId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        PostingList { ids }
    }

    /// Wraps a vector that is **already** sorted and duplicate-free (the
    /// output shape of every set operation in [`crate::view`]), skipping the
    /// re-sort `from_ids` would pay.  The invariant is checked in debug
    /// builds only.
    #[must_use]
    pub fn from_sorted(ids: Vec<FileId>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires a sorted, duplicate-free vector"
        );
        PostingList { ids }
    }

    /// A static empty list, for lookup paths that must return a borrow even
    /// when the term is unknown (no allocation).
    #[must_use]
    pub fn empty_ref() -> &'static PostingList {
        static EMPTY: PostingList = PostingList { ids: Vec::new() };
        &EMPTY
    }

    /// A borrowed [`PostingView`] of this list.
    #[must_use]
    pub fn as_view(&self) -> PostingView<'_> {
        PostingView::new(&self.ids)
    }

    /// Number of files in the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when no file contains the term.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The file ids, sorted ascending.
    #[must_use]
    pub fn doc_ids(&self) -> &[FileId] {
        &self.ids
    }

    /// Returns `true` when `id` is in the list.
    #[must_use]
    pub fn contains(&self, id: FileId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Adds a file id, keeping the list sorted; returns `true` when it was new.
    ///
    /// Appending ids in increasing order (the common case when one extractor
    /// owns a contiguous slice of files) is O(1).
    pub fn add(&mut self, id: FileId) -> bool {
        match self.ids.last() {
            Some(&last) if last < id => {
                self.ids.push(id);
                true
            }
            Some(&last) if last == id => false,
            _ => match self.ids.binary_search(&id) {
                Ok(_) => false,
                Err(pos) => {
                    self.ids.insert(pos, id);
                    true
                }
            },
        }
    }

    /// Merges `other` into `self` (set union). Linear in the combined length.
    pub fn union_with(&mut self, other: &PostingList) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.ids = other.ids.clone();
            return;
        }
        // Disjoint-range fast paths: shards and join stages usually own
        // contiguous file-id ranges, so one list often sits entirely before
        // the other and no element-wise merge is needed.
        if *self.ids.last().expect("non-empty") < other.ids[0] {
            self.ids.extend_from_slice(&other.ids);
            return;
        }
        if *other.ids.last().expect("non-empty") < self.ids[0] {
            self.ids.splice(0..0, other.ids.iter().copied());
            return;
        }
        let mut merged = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.ids[i..]);
        merged.extend_from_slice(&other.ids[j..]);
        self.ids = merged;
    }

    /// Returns the intersection of two lists (files containing both terms).
    #[must_use]
    pub fn intersect(&self, other: &PostingList) -> PostingList {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        PostingList { ids: out }
    }

    /// Removes a file id from the list; returns `true` when it was present.
    ///
    /// Used by the incremental re-indexer when a file is deleted or about to
    /// be re-indexed after a modification.
    pub fn remove(&mut self, id: FileId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Returns the union of two lists without modifying either.
    #[must_use]
    pub fn union(&self, other: &PostingList) -> PostingList {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns the files in `self` that are **not** in `other` (set
    /// difference).  Used to evaluate `NOT` terms in queries.
    #[must_use]
    pub fn difference(&self, other: &PostingList) -> PostingList {
        PostingList { ids: self.ids.iter().copied().filter(|id| !other.contains(*id)).collect() }
    }

    /// Iterates over the file ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = FileId> + '_ {
        self.ids.iter().copied()
    }
}

impl FromIterator<FileId> for PostingList {
    fn from_iter<I: IntoIterator<Item = FileId>>(iter: I) -> Self {
        PostingList::from_ids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<FileId> {
        v.iter().map(|&i| FileId(i)).collect()
    }

    #[test]
    fn add_keeps_sorted_unique() {
        let mut p = PostingList::new();
        assert!(p.add(FileId(5)));
        assert!(p.add(FileId(2)));
        assert!(!p.add(FileId(5)));
        assert!(p.add(FileId(9)));
        assert_eq!(p.doc_ids(), ids(&[2, 5, 9]).as_slice());
        assert_eq!(p.len(), 3);
        assert!(p.contains(FileId(2)));
        assert!(!p.contains(FileId(3)));
    }

    #[test]
    fn append_in_order_fast_path() {
        let mut p = PostingList::new();
        for i in 0..1000 {
            assert!(p.add(FileId(i)));
        }
        assert_eq!(p.len(), 1000);
        assert!(!p.add(FileId(999)));
    }

    #[test]
    fn remove_deletes_only_the_given_id() {
        let mut p = PostingList::from_ids(ids(&[1, 3, 5]));
        assert!(p.remove(FileId(3)));
        assert_eq!(p.doc_ids(), ids(&[1, 5]).as_slice());
        assert!(!p.remove(FileId(3)));
        assert!(!p.remove(FileId(99)));
        assert!(p.remove(FileId(1)));
        assert!(p.remove(FileId(5)));
        assert!(p.is_empty());
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let p = PostingList::from_ids(ids(&[3, 1, 3, 2, 1]));
        assert_eq!(p.doc_ids(), ids(&[1, 2, 3]).as_slice());
    }

    #[test]
    fn difference_removes_other_ids() {
        let a = PostingList::from_ids(ids(&[1, 2, 3, 4]));
        let b = PostingList::from_ids(ids(&[2, 4, 6]));
        assert_eq!(a.difference(&b).doc_ids(), ids(&[1, 3]).as_slice());
        assert_eq!(b.difference(&a).doc_ids(), ids(&[6]).as_slice());
        assert_eq!(a.difference(&PostingList::new()), a);
        assert!(a.difference(&a).is_empty());
    }

    #[test]
    fn union_with_merges_sets() {
        let mut a = PostingList::from_ids(ids(&[1, 3, 5]));
        let b = PostingList::from_ids(ids(&[2, 3, 6]));
        a.union_with(&b);
        assert_eq!(a.doc_ids(), ids(&[1, 2, 3, 5, 6]).as_slice());
    }

    #[test]
    fn union_with_disjoint_ranges_extends_in_place() {
        // Append: every id of `other` is past the end of `self`.
        let mut a = PostingList::from_ids(ids(&[1, 2, 3]));
        a.union_with(&PostingList::from_ids(ids(&[5, 6])));
        assert_eq!(a.doc_ids(), ids(&[1, 2, 3, 5, 6]).as_slice());
        // Prepend: every id of `other` is before the start of `self`.
        let mut b = PostingList::from_ids(ids(&[10, 20]));
        b.union_with(&PostingList::from_ids(ids(&[1, 2])));
        assert_eq!(b.doc_ids(), ids(&[1, 2, 10, 20]).as_slice());
        // Touching boundary (equal edge ids) must still merge correctly.
        let mut c = PostingList::from_ids(ids(&[1, 5]));
        c.union_with(&PostingList::from_ids(ids(&[5, 9])));
        assert_eq!(c.doc_ids(), ids(&[1, 5, 9]).as_slice());
    }

    #[test]
    fn from_sorted_and_views() {
        let list = PostingList::from_sorted(ids(&[2, 4, 6]));
        assert_eq!(list.doc_ids(), ids(&[2, 4, 6]).as_slice());
        assert_eq!(list.as_view().len(), 3);
        assert!(PostingList::empty_ref().is_empty());
        assert_eq!(PostingList::empty_ref().as_view().len(), 0);
    }

    #[test]
    fn union_with_empty_cases() {
        let mut a = PostingList::new();
        let b = PostingList::from_ids(ids(&[1, 2]));
        a.union_with(&b);
        assert_eq!(a.doc_ids(), ids(&[1, 2]).as_slice());
        let mut c = a.clone();
        c.union_with(&PostingList::new());
        assert_eq!(c, a);
    }

    #[test]
    fn intersect_returns_common_ids() {
        let a = PostingList::from_ids(ids(&[1, 2, 4, 8]));
        let b = PostingList::from_ids(ids(&[2, 3, 4, 9]));
        assert_eq!(a.intersect(&b).doc_ids(), ids(&[2, 4]).as_slice());
        assert!(a.intersect(&PostingList::new()).is_empty());
    }

    #[test]
    fn iterator_and_collect() {
        let p: PostingList = ids(&[4, 1, 4]).into_iter().collect();
        let back: Vec<FileId> = p.iter().collect();
        assert_eq!(back, ids(&[1, 4]));
    }

    proptest! {
        /// union and intersect agree with the naive set implementations.
        #[test]
        fn set_semantics(a in proptest::collection::vec(0u32..200, 0..100),
                         b in proptest::collection::vec(0u32..200, 0..100)) {
            use std::collections::BTreeSet;
            let pa = PostingList::from_ids(a.iter().map(|&i| FileId(i)));
            let pb = PostingList::from_ids(b.iter().map(|&i| FileId(i)));
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();

            let union: Vec<u32> = pa.union(&pb).iter().map(FileId::as_u32).collect();
            let expected_union: Vec<u32> = sa.union(&sb).copied().collect();
            prop_assert_eq!(union, expected_union);

            let inter: Vec<u32> = pa.intersect(&pb).iter().map(FileId::as_u32).collect();
            let expected_inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            prop_assert_eq!(inter, expected_inter);
        }

        /// add() produces the same set as from_ids() regardless of order.
        #[test]
        fn add_matches_from_ids(xs in proptest::collection::vec(0u32..500, 0..200)) {
            let mut incremental = PostingList::new();
            for &x in &xs {
                incremental.add(FileId(x));
            }
            let bulk = PostingList::from_ids(xs.iter().map(|&x| FileId(x)));
            prop_assert_eq!(incremental, bulk);
        }
    }
}
