//! Posting lists.
//!
//! A posting list records which files contain a given term.  Because each
//! extractor hands the index a de-duplicated word list per file, a file id is
//! added to any particular term's list at most once per index, so the list is
//! a set of file ids.  It is kept sorted to make joins (set unions) and query
//! intersections linear.

use serde::{Deserialize, Serialize};

use crate::doc_table::FileId;
use crate::view::PostingView;

/// A sorted, duplicate-free list of the files containing one term.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingList {
    ids: Vec<FileId>,
    /// Per-posting term frequencies, parallel to `ids`.
    ///
    /// Canonical form: **empty means every frequency is 1** (the common case
    /// for condensed word lists), and a non-empty vector always contains at
    /// least one value > 1.  Every mutation re-establishes this, so the
    /// derived equality stays set-correct.
    tfs: Vec<u32>,
}

impl PostingList {
    /// Creates an empty posting list.
    #[must_use]
    pub fn new() -> Self {
        PostingList::default()
    }

    /// Creates a list from an iterator of file ids (sorted and de-duplicated).
    pub fn from_ids<I: IntoIterator<Item = FileId>>(ids: I) -> Self {
        let mut ids: Vec<FileId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        PostingList { ids, tfs: Vec::new() }
    }

    /// Builds a list from an id vector in **any** order, reusing the
    /// allocation: one sort + dedup instead of the per-element binary-search
    /// insert a descending [`PostingList::add`] loop degrades to (O(n log n)
    /// instead of O(n²) shifts).  Bulk build paths — segment loading,
    /// snapshot reconstruction — should come through here or
    /// [`PostingList::from_sorted`], never an `add` loop.
    #[must_use]
    pub fn from_unsorted(mut ids: Vec<FileId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        PostingList { ids, tfs: Vec::new() }
    }

    /// Wraps a vector that is **already** sorted and duplicate-free (the
    /// output shape of every set operation in [`crate::view`]), skipping the
    /// re-sort `from_ids` would pay.  The invariant is checked in debug
    /// builds only.
    #[must_use]
    pub fn from_sorted(ids: Vec<FileId>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires a sorted, duplicate-free vector"
        );
        PostingList { ids, tfs: Vec::new() }
    }

    /// Like [`PostingList::from_sorted`], but also records per-posting term
    /// frequencies.  `tfs` must be parallel to `ids` (or empty for all-1);
    /// an all-1 vector is normalised to the canonical empty form.
    #[must_use]
    pub fn from_sorted_counted(ids: Vec<FileId>, tfs: Vec<u32>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "from_sorted_counted requires a sorted, duplicate-free vector"
        );
        debug_assert!(tfs.is_empty() || tfs.len() == ids.len());
        let mut list = PostingList { ids, tfs };
        list.canonicalize_tfs();
        list
    }

    /// A static empty list, for lookup paths that must return a borrow even
    /// when the term is unknown (no allocation).
    #[must_use]
    pub fn empty_ref() -> &'static PostingList {
        static EMPTY: PostingList = PostingList { ids: Vec::new(), tfs: Vec::new() };
        &EMPTY
    }

    /// Restores the canonical `tfs` form (empty ⇔ all frequencies are 1).
    fn canonicalize_tfs(&mut self) {
        if !self.tfs.is_empty() && self.tfs.iter().all(|&tf| tf <= 1) {
            self.tfs.clear();
        }
    }

    /// Materialises the `tfs` vector (one entry per id) prior to a mutation
    /// that records a frequency other than 1.
    fn materialize_tfs(&mut self) {
        if self.tfs.is_empty() {
            self.tfs = vec![1; self.ids.len()];
        }
    }

    /// Raw per-posting frequencies, parallel to `doc_ids`.  Empty means every
    /// frequency is 1.
    #[must_use]
    pub fn tfs(&self) -> &[u32] {
        &self.tfs
    }

    /// The term frequency of the posting at `pos` (1 when untracked).
    #[must_use]
    pub fn tf_at(&self, pos: usize) -> u32 {
        self.tfs.get(pos).copied().unwrap_or(1)
    }

    /// The term frequency recorded for `id`, or `None` when `id` is absent.
    #[must_use]
    pub fn tf_of(&self, id: FileId) -> Option<u32> {
        self.ids.binary_search(&id).ok().map(|pos| self.tf_at(pos))
    }

    /// A borrowed [`PostingView`] of this list.
    #[must_use]
    pub fn as_view(&self) -> PostingView<'_> {
        PostingView::new(&self.ids)
    }

    /// Number of files in the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when no file contains the term.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The file ids, sorted ascending.
    #[must_use]
    pub fn doc_ids(&self) -> &[FileId] {
        &self.ids
    }

    /// Returns `true` when `id` is in the list.
    #[must_use]
    pub fn contains(&self, id: FileId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Adds a file id, keeping the list sorted; returns `true` when it was new.
    ///
    /// Appending ids in increasing order (the common case when one extractor
    /// owns a contiguous slice of files) is O(1).
    pub fn add(&mut self, id: FileId) -> bool {
        self.add_with_tf(id, 1)
    }

    /// Adds a file id with its term frequency, keeping the list sorted;
    /// returns `true` when the id was new.  A duplicate id keeps the larger
    /// of the stored and offered frequencies.
    pub fn add_with_tf(&mut self, id: FileId, tf: u32) -> bool {
        let tf = tf.max(1);
        if tf > 1 {
            self.materialize_tfs();
        }
        // `tf > 1` keeps tracking on when the list (and thus the freshly
        // materialised vector) is still empty.
        let tracked = tf > 1 || !self.tfs.is_empty();
        match self.ids.last() {
            Some(&last) if last < id => {
                self.ids.push(id);
                if tracked {
                    self.tfs.push(tf.max(1));
                }
                true
            }
            Some(&last) if last == id => {
                if tracked {
                    let end = self.tfs.len() - 1;
                    self.tfs[end] = self.tfs[end].max(tf);
                }
                false
            }
            _ => match self.ids.binary_search(&id) {
                Ok(pos) => {
                    if tracked {
                        self.tfs[pos] = self.tfs[pos].max(tf);
                    }
                    false
                }
                Err(pos) => {
                    self.ids.insert(pos, id);
                    if tracked {
                        self.tfs.insert(pos, tf.max(1));
                    }
                    true
                }
            },
        }
    }

    /// Merges `other` into `self` (set union). Linear in the combined length.
    /// A file present in both lists keeps the larger term frequency.
    pub fn union_with(&mut self, other: &PostingList) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.ids = other.ids.clone();
            self.tfs = other.tfs.clone();
            return;
        }
        let untracked = self.tfs.is_empty() && other.tfs.is_empty();
        // Disjoint-range fast paths: shards and join stages usually own
        // contiguous file-id ranges, so one list often sits entirely before
        // the other and no element-wise merge is needed.
        if *self.ids.last().expect("non-empty") < other.ids[0] {
            if !untracked {
                self.materialize_tfs();
                if other.tfs.is_empty() {
                    self.tfs.extend(std::iter::repeat_n(1, other.ids.len()));
                } else {
                    self.tfs.extend_from_slice(&other.tfs);
                }
            }
            self.ids.extend_from_slice(&other.ids);
            return;
        }
        if *other.ids.last().expect("non-empty") < self.ids[0] {
            if !untracked {
                self.materialize_tfs();
                if other.tfs.is_empty() {
                    self.tfs.splice(0..0, std::iter::repeat_n(1, other.ids.len()));
                } else {
                    self.tfs.splice(0..0, other.tfs.iter().copied());
                }
            }
            self.ids.splice(0..0, other.ids.iter().copied());
            return;
        }
        let mut merged = Vec::with_capacity(self.ids.len() + other.ids.len());
        let mut merged_tfs = if untracked {
            Vec::new()
        } else {
            Vec::with_capacity(self.ids.len() + other.ids.len())
        };
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.ids[i]);
                    if !untracked {
                        merged_tfs.push(self.tf_at(i));
                    }
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.ids[j]);
                    if !untracked {
                        merged_tfs.push(other.tf_at(j));
                    }
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(self.ids[i]);
                    if !untracked {
                        merged_tfs.push(self.tf_at(i).max(other.tf_at(j)));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        if !untracked {
            merged_tfs.extend((i..self.ids.len()).map(|p| self.tf_at(p)));
            merged_tfs.extend((j..other.ids.len()).map(|p| other.tf_at(p)));
        }
        merged.extend_from_slice(&self.ids[i..]);
        merged.extend_from_slice(&other.ids[j..]);
        self.ids = merged;
        self.tfs = merged_tfs;
        self.canonicalize_tfs();
    }

    /// Returns the intersection of two lists (files containing both terms).
    #[must_use]
    pub fn intersect(&self, other: &PostingList) -> PostingList {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        let mut out_tfs = Vec::new();
        let tracked = !self.tfs.is_empty();
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    if tracked {
                        out_tfs.push(self.tf_at(i));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        let mut list = PostingList { ids: out, tfs: out_tfs };
        list.canonicalize_tfs();
        list
    }

    /// Removes a file id from the list; returns `true` when it was present.
    ///
    /// Used by the incremental re-indexer when a file is deleted or about to
    /// be re-indexed after a modification.
    pub fn remove(&mut self, id: FileId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                if !self.tfs.is_empty() {
                    self.tfs.remove(pos);
                    self.canonicalize_tfs();
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Returns the union of two lists without modifying either.
    #[must_use]
    pub fn union(&self, other: &PostingList) -> PostingList {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns the files in `self` that are **not** in `other` (set
    /// difference).  Used to evaluate `NOT` terms in queries.
    #[must_use]
    pub fn difference(&self, other: &PostingList) -> PostingList {
        let mut ids = Vec::new();
        let mut tfs = Vec::new();
        let tracked = !self.tfs.is_empty();
        for (pos, id) in self.ids.iter().copied().enumerate() {
            if !other.contains(id) {
                ids.push(id);
                if tracked {
                    tfs.push(self.tf_at(pos));
                }
            }
        }
        let mut list = PostingList { ids, tfs };
        list.canonicalize_tfs();
        list
    }

    /// Iterates over `(file id, term frequency)` pairs in ascending id order.
    pub fn iter_counted(&self) -> impl Iterator<Item = (FileId, u32)> + '_ {
        self.ids.iter().copied().enumerate().map(|(pos, id)| (id, self.tf_at(pos)))
    }

    /// Iterates over the file ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = FileId> + '_ {
        self.ids.iter().copied()
    }
}

impl FromIterator<FileId> for PostingList {
    fn from_iter<I: IntoIterator<Item = FileId>>(iter: I) -> Self {
        PostingList::from_ids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<FileId> {
        v.iter().map(|&i| FileId(i)).collect()
    }

    #[test]
    fn add_keeps_sorted_unique() {
        let mut p = PostingList::new();
        assert!(p.add(FileId(5)));
        assert!(p.add(FileId(2)));
        assert!(!p.add(FileId(5)));
        assert!(p.add(FileId(9)));
        assert_eq!(p.doc_ids(), ids(&[2, 5, 9]).as_slice());
        assert_eq!(p.len(), 3);
        assert!(p.contains(FileId(2)));
        assert!(!p.contains(FileId(3)));
    }

    #[test]
    fn append_in_order_fast_path() {
        let mut p = PostingList::new();
        for i in 0..1000 {
            assert!(p.add(FileId(i)));
        }
        assert_eq!(p.len(), 1000);
        assert!(!p.add(FileId(999)));
    }

    #[test]
    fn remove_deletes_only_the_given_id() {
        let mut p = PostingList::from_ids(ids(&[1, 3, 5]));
        assert!(p.remove(FileId(3)));
        assert_eq!(p.doc_ids(), ids(&[1, 5]).as_slice());
        assert!(!p.remove(FileId(3)));
        assert!(!p.remove(FileId(99)));
        assert!(p.remove(FileId(1)));
        assert!(p.remove(FileId(5)));
        assert!(p.is_empty());
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let p = PostingList::from_ids(ids(&[3, 1, 3, 2, 1]));
        assert_eq!(p.doc_ids(), ids(&[1, 2, 3]).as_slice());
    }

    #[test]
    fn difference_removes_other_ids() {
        let a = PostingList::from_ids(ids(&[1, 2, 3, 4]));
        let b = PostingList::from_ids(ids(&[2, 4, 6]));
        assert_eq!(a.difference(&b).doc_ids(), ids(&[1, 3]).as_slice());
        assert_eq!(b.difference(&a).doc_ids(), ids(&[6]).as_slice());
        assert_eq!(a.difference(&PostingList::new()), a);
        assert!(a.difference(&a).is_empty());
    }

    #[test]
    fn union_with_merges_sets() {
        let mut a = PostingList::from_ids(ids(&[1, 3, 5]));
        let b = PostingList::from_ids(ids(&[2, 3, 6]));
        a.union_with(&b);
        assert_eq!(a.doc_ids(), ids(&[1, 2, 3, 5, 6]).as_slice());
    }

    #[test]
    fn union_with_disjoint_ranges_extends_in_place() {
        // Append: every id of `other` is past the end of `self`.
        let mut a = PostingList::from_ids(ids(&[1, 2, 3]));
        a.union_with(&PostingList::from_ids(ids(&[5, 6])));
        assert_eq!(a.doc_ids(), ids(&[1, 2, 3, 5, 6]).as_slice());
        // Prepend: every id of `other` is before the start of `self`.
        let mut b = PostingList::from_ids(ids(&[10, 20]));
        b.union_with(&PostingList::from_ids(ids(&[1, 2])));
        assert_eq!(b.doc_ids(), ids(&[1, 2, 10, 20]).as_slice());
        // Touching boundary (equal edge ids) must still merge correctly.
        let mut c = PostingList::from_ids(ids(&[1, 5]));
        c.union_with(&PostingList::from_ids(ids(&[5, 9])));
        assert_eq!(c.doc_ids(), ids(&[1, 5, 9]).as_slice());
    }

    #[test]
    fn from_sorted_and_views() {
        let list = PostingList::from_sorted(ids(&[2, 4, 6]));
        assert_eq!(list.doc_ids(), ids(&[2, 4, 6]).as_slice());
        assert_eq!(list.as_view().len(), 3);
        assert!(PostingList::empty_ref().is_empty());
        assert_eq!(PostingList::empty_ref().as_view().len(), 0);
    }

    #[test]
    fn union_with_empty_cases() {
        let mut a = PostingList::new();
        let b = PostingList::from_ids(ids(&[1, 2]));
        a.union_with(&b);
        assert_eq!(a.doc_ids(), ids(&[1, 2]).as_slice());
        let mut c = a.clone();
        c.union_with(&PostingList::new());
        assert_eq!(c, a);
    }

    #[test]
    fn intersect_returns_common_ids() {
        let a = PostingList::from_ids(ids(&[1, 2, 4, 8]));
        let b = PostingList::from_ids(ids(&[2, 3, 4, 9]));
        assert_eq!(a.intersect(&b).doc_ids(), ids(&[2, 4]).as_slice());
        assert!(a.intersect(&PostingList::new()).is_empty());
    }

    #[test]
    fn tf_tracking_roundtrip() {
        let mut p = PostingList::new();
        assert!(p.add_with_tf(FileId(1), 3));
        assert!(p.add_with_tf(FileId(0), 1));
        assert!(p.add_with_tf(FileId(2), 2));
        assert_eq!(p.tf_of(FileId(1)), Some(3));
        assert_eq!(p.tf_of(FileId(0)), Some(1));
        assert_eq!(p.tf_of(FileId(9)), None);
        // A duplicate id keeps the larger frequency.
        assert!(!p.add_with_tf(FileId(2), 7));
        assert_eq!(p.tf_of(FileId(2)), Some(7));
        let pairs: Vec<(FileId, u32)> = p.iter_counted().collect();
        assert_eq!(pairs, [(FileId(0), 1), (FileId(1), 3), (FileId(2), 7)]);
    }

    #[test]
    fn tf_canonical_form() {
        let all_one = PostingList::from_sorted_counted(ids(&[1, 2]), vec![1, 1]);
        assert!(all_one.tfs().is_empty());
        assert_eq!(all_one, PostingList::from_sorted(ids(&[1, 2])));
        assert_eq!(all_one.tf_at(0), 1);

        let mut p = PostingList::from_sorted_counted(ids(&[1, 2]), vec![1, 5]);
        assert_eq!(p.tfs(), [1, 5]);
        p.remove(FileId(2));
        assert!(p.tfs().is_empty(), "dropping the only tf>1 posting restores canonical form");
    }

    #[test]
    fn union_keeps_larger_tf() {
        let mut a = PostingList::from_sorted_counted(ids(&[1, 3]), vec![2, 1]);
        let b = PostingList::from_sorted_counted(ids(&[1, 2]), vec![1, 4]);
        a.union_with(&b);
        assert_eq!(a.doc_ids(), ids(&[1, 2, 3]).as_slice());
        assert_eq!(a.tfs(), [2, 4, 1]);

        // Disjoint fast paths preserve frequencies on both sides.
        let mut c = PostingList::from_sorted_counted(ids(&[1]), vec![3]);
        c.union_with(&PostingList::from_sorted(ids(&[5, 6])));
        assert_eq!(c.tfs(), [3, 1, 1]);
        let mut d = PostingList::from_sorted(ids(&[10]));
        d.union_with(&PostingList::from_sorted_counted(ids(&[2]), vec![9]));
        assert_eq!(d.tfs(), [9, 1]);
    }

    #[test]
    fn intersect_and_difference_carry_tfs() {
        let a = PostingList::from_sorted_counted(ids(&[1, 2, 3]), vec![5, 1, 2]);
        let b = PostingList::from_sorted(ids(&[1, 3]));
        assert_eq!(a.intersect(&b).tfs(), [5, 2]);
        assert_eq!(a.difference(&b).tfs(), &[] as &[u32], "all-1 remainder is canonical");
        assert_eq!(a.difference(&PostingList::new()).tfs(), [5, 1, 2]);
    }

    #[test]
    fn iterator_and_collect() {
        let p: PostingList = ids(&[4, 1, 4]).into_iter().collect();
        let back: Vec<FileId> = p.iter().collect();
        assert_eq!(back, ids(&[1, 4]));
    }

    proptest! {
        /// union and intersect agree with the naive set implementations.
        #[test]
        fn set_semantics(a in proptest::collection::vec(0u32..200, 0..100),
                         b in proptest::collection::vec(0u32..200, 0..100)) {
            use std::collections::BTreeSet;
            let pa = PostingList::from_ids(a.iter().map(|&i| FileId(i)));
            let pb = PostingList::from_ids(b.iter().map(|&i| FileId(i)));
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();

            let union: Vec<u32> = pa.union(&pb).iter().map(FileId::as_u32).collect();
            let expected_union: Vec<u32> = sa.union(&sb).copied().collect();
            prop_assert_eq!(union, expected_union);

            let inter: Vec<u32> = pa.intersect(&pb).iter().map(FileId::as_u32).collect();
            let expected_inter: Vec<u32> = sa.intersection(&sb).copied().collect();
            prop_assert_eq!(inter, expected_inter);
        }

        /// add() produces the same set as from_ids() regardless of order.
        #[test]
        fn add_matches_from_ids(xs in proptest::collection::vec(0u32..500, 0..200)) {
            let mut incremental = PostingList::new();
            for &x in &xs {
                incremental.add(FileId(x));
            }
            let bulk = PostingList::from_ids(xs.iter().map(|&x| FileId(x)));
            prop_assert_eq!(incremental, bulk);
        }
    }
}
