//! Sealed, immutable shards: the serving-side form of an index.
//!
//! An [`InMemoryIndex`] is the *build* structure — a hash map of mutable
//! posting vectors.  A [`SealedShard`] is what a serving snapshot actually
//! reads: a sorted term dictionary (`Arc<str>`-interned, so sealing bumps
//! reference counts instead of copying the vocabulary) aligned with one
//! [`CompressedPostings`] per term.  Sealing buys three things at once:
//!
//! * **memory** — block-compressed postings instead of 4 bytes per id, and
//!   one shared copy of each term string;
//! * **prefix lookups** — `word*` resolves to a contiguous dictionary range
//!   (binary search twice, no hash-table scan, no per-term map lookups);
//! * **skip-aware evaluation** — every posting list hands out a
//!   [`BlockCursor`](crate::block::BlockCursor) whose `seek` hops the skip
//!   table, so skewed intersections never decode the blocks they skip.
//!
//! Shards are plain data: build them once — from an index via
//! [`SealedShard::from_index`], or decode-free from a persisted segment via
//! [`SealedShard::from_entries`] — and share them behind an `Arc` for
//! serving.

use dsearch_text::hashtable::FnvHashMap;
use dsearch_text::Term;

use crate::block::CompressedPostings;
use crate::doc_table::FileId;
use crate::memory_index::InMemoryIndex;

/// BM25 term-frequency saturation constant.
pub const BM25_K1: f32 = 1.2;
/// BM25 length-normalisation strength.
pub const BM25_B: f32 = 0.75;

/// The BM25 inverse document frequency of a term with `doc_freq` postings in
/// a shard of `total_docs` documents: `ln(1 + (N - df + 0.5)/(df + 0.5))`.
/// Computed in f64 and truncated once so seal-time bounds and query-time
/// scores agree bit for bit.
#[must_use]
pub fn bm25_idf(total_docs: u64, doc_freq: usize) -> f32 {
    let n = total_docs as f64;
    let df = doc_freq as f64;
    ((1.0 + (n - df + 0.5).max(0.0) / (df + 0.5)).ln()) as f32
}

/// One posting's BM25 contribution: `idf · tf(k1+1)/(tf + norm)` where
/// `norm = k1 · (1 - b + b · dl/avgdl)` is the document's precomputed
/// length norm.  The single shared expression keeps seal-time block bounds
/// and query-time scores identical.
#[must_use]
pub fn bm25_score(idf: f32, tf: u32, norm: f32) -> f32 {
    let tf = tf as f32;
    idf * (tf * (BM25_K1 + 1.0)) / (tf + norm)
}

/// The neutral length norm (`dl == avgdl`), used for documents without a
/// recorded length — under it `tf = 1` scores exactly `idf`.
#[must_use]
pub fn bm25_neutral_norm() -> f32 {
    BM25_K1
}

/// One immutable, compressed shard: sorted terms + compressed postings.
#[derive(Debug, Clone, Default)]
pub struct SealedShard {
    /// Sorted ascending; the dictionary prefix lookups range over.
    terms: Vec<Term>,
    /// `postings[i]` belongs to `terms[i]`.
    postings: Vec<CompressedPostings>,
    /// Exact-term fast path: term → dictionary slot.  The keys are `Arc`
    /// clones of the dictionary entries, so the map costs pointers, not a
    /// second vocabulary.
    lookup: FnvHashMap<Term, u32>,
    files: u64,
    posting_count: u64,
    /// Cached sum of `CompressedPostings::byte_size` (shards are immutable,
    /// so `!stats` reporting need not re-sweep the vocabulary).
    posting_bytes: usize,
    /// Sum of recorded document lengths (term occurrences); 0 when the
    /// build path carried no lengths and the shard is unscored.
    total_doc_len: u64,
    /// `norms[i]` is the BM25 length norm of `FileId(norm_base + i)`.
    /// Empty ⇒ unscored shard (every norm reads as neutral).
    norm_base: u32,
    norms: Vec<f32>,
}

impl PartialEq for SealedShard {
    fn eq(&self, other: &Self) -> bool {
        // The lookup map is derived from the dictionary; comparing it would
        // be redundant (and hash maps have no canonical order anyway).
        self.terms == other.terms
            && self.postings == other.postings
            && self.files == other.files
            && self.posting_count == other.posting_count
            && self.total_doc_len == other.total_doc_len
            && self.norm_base == other.norm_base
            && self.norms == other.norms
    }
}

impl Eq for SealedShard {}

impl SealedShard {
    /// Seals an index: sorts its vocabulary and compresses every posting
    /// list.  Terms are interned, so the dictionary shares the index's
    /// string storage instead of duplicating it.
    #[must_use]
    pub fn from_index(index: &InMemoryIndex) -> Self {
        let files = index.file_count();
        let scoring = build_norms(index.doc_lens());
        let mut entries: Vec<(&Term, &crate::posting::PostingList)> = index.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut terms = Vec::with_capacity(entries.len());
        let mut postings = Vec::with_capacity(entries.len());
        let mut posting_count = 0u64;
        let mut scores = Vec::new();
        for (term, list) in entries {
            terms.push(term.clone());
            posting_count += list.len() as u64;
            let mut cp = CompressedPostings::from_list(list);
            if let Some((base, norms, _)) = &scoring {
                let idf = bm25_idf(files, list.len());
                scores.clear();
                scores.extend(
                    list.iter_counted()
                        .map(|(id, tf)| bm25_score(idf, tf, norm_at(*base, norms, id))),
                );
                cp.score_blocks(&scores);
            }
            postings.push(cp);
        }
        let lookup = build_lookup(&terms);
        let posting_bytes = postings.iter().map(CompressedPostings::byte_size).sum();
        let (norm_base, norms, total_doc_len) = scoring.unwrap_or((0, Vec::new(), 0));
        SealedShard {
            terms,
            postings,
            lookup,
            files,
            posting_count,
            posting_bytes,
            total_doc_len,
            norm_base,
            norms,
        }
    }

    /// Rebuilds a shard from already-compressed parts (the decode-free load
    /// path from a persisted segment).  `entries` must be sorted by term;
    /// checked here so a corrupt segment cannot produce a shard whose binary
    /// searches silently miss.
    ///
    /// # Errors
    ///
    /// Fails when the terms are not strictly ascending.
    pub fn from_entries(
        entries: Vec<(Term, CompressedPostings)>,
        files: u64,
    ) -> Result<Self, String> {
        Self::from_entries_scored(entries, files, Vec::new())
    }

    /// Like [`SealedShard::from_entries`], but restoring the scoring header:
    /// `doc_lens` holds each document's recorded length (total term
    /// occurrences), from which the BM25 length norms are rebuilt exactly as
    /// [`SealedShard::from_index`] computes them.  An empty `doc_lens`
    /// yields an unscored shard (the v1/v2 segment path).
    ///
    /// # Errors
    ///
    /// Fails when the terms are not strictly ascending.
    pub fn from_entries_scored(
        entries: Vec<(Term, CompressedPostings)>,
        files: u64,
        doc_lens: Vec<(FileId, u32)>,
    ) -> Result<Self, String> {
        if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err("sealed shard entries must be sorted by term".to_owned());
        }
        let mut terms = Vec::with_capacity(entries.len());
        let mut postings = Vec::with_capacity(entries.len());
        let mut posting_count = 0u64;
        for (term, list) in entries {
            posting_count += list.len() as u64;
            terms.push(term);
            postings.push(list);
        }
        let lookup = build_lookup(&terms);
        let posting_bytes = postings.iter().map(CompressedPostings::byte_size).sum();
        let (norm_base, norms, total_doc_len) =
            build_norms(doc_lens.into_iter()).unwrap_or((0, Vec::new(), 0));
        Ok(SealedShard {
            terms,
            postings,
            lookup,
            files,
            posting_count,
            posting_bytes,
            total_doc_len,
            norm_base,
            norms,
        })
    }

    /// Number of distinct terms.
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when the shard holds no terms.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of `(term, file)` postings.
    #[must_use]
    pub fn posting_count(&self) -> u64 {
        self.posting_count
    }

    /// Number of files this shard indexed.
    #[must_use]
    pub fn file_count(&self) -> u64 {
        self.files
    }

    /// The sorted term dictionary.
    #[must_use]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The compressed postings of one exact term (one hash lookup, no
    /// string binary search).
    #[must_use]
    pub fn postings(&self, term: &Term) -> Option<&CompressedPostings> {
        let index = *self.lookup.get(term.as_str())?;
        Some(&self.postings[index as usize])
    }

    /// The compressed postings of every term starting with `prefix`, as one
    /// contiguous dictionary range (two binary searches, zero allocation).
    #[must_use]
    pub fn prefix_postings(&self, prefix: &str) -> &[CompressedPostings] {
        let start = self.terms.partition_point(|term| term.as_str() < prefix);
        let count =
            self.terms[start..].iter().take_while(|term| term.as_str().starts_with(prefix)).count();
        &self.postings[start..start + count]
    }

    /// Iterates `(term, compressed postings)` pairs in dictionary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Term, &CompressedPostings)> {
        self.terms.iter().zip(self.postings.iter())
    }

    /// Bytes the compressed postings occupy (payload + skip tables).
    /// Computed once at seal time — shards are immutable.
    #[must_use]
    pub fn posting_bytes(&self) -> usize {
        self.posting_bytes
    }

    /// Bytes the same postings would occupy as raw `Vec<FileId>` storage
    /// (4 bytes per id), for compression-ratio reporting.
    #[must_use]
    pub fn uncompressed_posting_bytes(&self) -> usize {
        self.posting_count as usize * std::mem::size_of::<crate::doc_table::FileId>()
    }

    /// Whether the shard carries BM25 scoring state (document length norms
    /// and per-block score bounds).  Unscored shards — sealed from indices
    /// without recorded lengths, or loaded from v1/v2 segments — still
    /// rank, degrading gracefully to pure-idf scores.
    #[must_use]
    pub fn has_scoring(&self) -> bool {
        !self.norms.is_empty()
    }

    /// The BM25 length norm of `file`; neutral for unknown documents and on
    /// unscored shards.
    #[must_use]
    pub fn doc_norm(&self, file: FileId) -> f32 {
        norm_at(self.norm_base, &self.norms, file)
    }

    /// The shard-local BM25 inverse document frequency of a term appearing
    /// in `doc_freq` of this shard's documents.
    #[must_use]
    pub fn idf(&self, doc_freq: usize) -> f32 {
        bm25_idf(self.files, doc_freq)
    }

    /// Sum of recorded document lengths (0 on unscored shards).
    #[must_use]
    pub fn total_doc_len(&self) -> u64 {
        self.total_doc_len
    }
}

/// Builds the dense BM25 norm table from `(file, document length)` pairs:
/// `(norm_base, norms, total_doc_len)`.  Returns `None` (unscored) when no
/// lengths were recorded or they sum to zero.  Order-insensitive, so the
/// seal path (hash-map iteration) and the segment-load path (sorted pairs)
/// produce identical tables.  The table spans `[min_id ..= max_id]`; ids
/// without a recorded length read as the neutral norm.
fn build_norms<I: Iterator<Item = (FileId, u32)>>(lens: I) -> Option<(u32, Vec<f32>, u64)> {
    let pairs: Vec<(FileId, u32)> = lens.collect();
    if pairs.is_empty() {
        return None;
    }
    let total: u64 = pairs.iter().map(|&(_, len)| u64::from(len)).sum();
    if total == 0 {
        return None;
    }
    let avg = total as f64 / pairs.len() as f64;
    let base = pairs.iter().map(|&(id, _)| id.as_u32()).min().expect("non-empty");
    let top = pairs.iter().map(|&(id, _)| id.as_u32()).max().expect("non-empty");
    let mut norms = vec![bm25_neutral_norm(); (top - base + 1) as usize];
    for (id, len) in pairs {
        let scale = 1.0 - f64::from(BM25_B) + f64::from(BM25_B) * (f64::from(len) / avg);
        norms[(id.as_u32() - base) as usize] = (f64::from(BM25_K1) * scale) as f32;
    }
    Some((base, norms, total))
}

/// Norm lookup against a dense table rooted at `base`; out-of-table ids
/// (no recorded length) read as the neutral norm.
fn norm_at(base: u32, norms: &[f32], id: FileId) -> f32 {
    norms.get(id.as_u32().wrapping_sub(base) as usize).copied().unwrap_or_else(bm25_neutral_norm)
}

fn build_lookup(terms: &[Term]) -> FnvHashMap<Term, u32> {
    let mut lookup = FnvHashMap::with_capacity(terms.len());
    for (slot, term) in terms.iter().enumerate() {
        lookup.insert(term.clone(), u32::try_from(slot).expect("under 4G terms per shard"));
    }
    lookup
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc_table::FileId;
    use proptest::prelude::*;

    fn t(s: &str) -> Term {
        Term::from(s)
    }

    fn sample_index() -> InMemoryIndex {
        let mut index = InMemoryIndex::new();
        index.insert_file(FileId(0), [t("index"), t("indexes"), t("rust")]);
        index.insert_file(FileId(1), [t("index"), t("into")]);
        index.insert_file(FileId(2), [t("rust"), t("zebra")]);
        index
    }

    #[test]
    fn sealing_preserves_lookups() {
        let index = sample_index();
        let shard = SealedShard::from_index(&index);
        assert_eq!(shard.term_count(), 5);
        assert_eq!(shard.posting_count(), 7);
        assert_eq!(shard.file_count(), 3);
        assert!(!shard.is_empty());

        let rust = shard.postings(&t("rust")).unwrap();
        assert_eq!(rust.to_list().doc_ids(), &[FileId(0), FileId(2)]);
        assert!(shard.postings(&t("cobol")).is_none());

        // Dictionary order and alignment.
        let terms: Vec<&str> = shard.terms().iter().map(Term::as_str).collect();
        assert_eq!(terms, ["index", "indexes", "into", "rust", "zebra"]);
        let via_iter: Vec<&str> = shard.iter().map(|(term, _)| term.as_str()).collect();
        assert_eq!(via_iter, terms);
    }

    #[test]
    fn prefix_ranges_match_linear_expectations() {
        let shard = SealedShard::from_index(&sample_index());
        assert_eq!(shard.prefix_postings("inde").len(), 2);
        assert_eq!(shard.prefix_postings("in").len(), 3);
        assert_eq!(shard.prefix_postings("").len(), 5);
        assert!(shard.prefix_postings("zz").is_empty());
        assert!(shard.prefix_postings("zzzz").is_empty());
        assert_eq!(shard.prefix_postings("zebra").len(), 1);
    }

    #[test]
    fn sealing_interns_rather_than_copies_terms() {
        let index = sample_index();
        let shard = SealedShard::from_index(&index);
        // Each dictionary entry shares its text with the source index's key
        // (2+ owners) instead of holding a private copy.
        assert!(shard.terms().iter().all(|term| term.shared_count() >= 2));
    }

    #[test]
    fn compression_beats_raw_storage_on_real_shapes() {
        let mut index = InMemoryIndex::new();
        for i in 0..5_000u32 {
            index.insert_file(FileId(i), [t("common"), Term::from(format!("rare{i:05}"))]);
        }
        let shard = SealedShard::from_index(&index);
        assert!(
            shard.posting_bytes() * 2 <= shard.uncompressed_posting_bytes(),
            "expected >= 2x compression, got {} vs {}",
            shard.posting_bytes(),
            shard.uncompressed_posting_bytes()
        );
    }

    #[test]
    fn counted_seal_scores_blocks() {
        let mut index = InMemoryIndex::new();
        index.insert_file_counted(FileId(3), [(t("rust"), 4u32), (t("search"), 1)]);
        index.insert_file_counted(FileId(7), [(t("rust"), 1u32), (t("index"), 2)]);
        let shard = SealedShard::from_index(&index);
        assert!(shard.has_scoring());
        assert_eq!(shard.total_doc_len(), 8);

        let rust = shard.postings(&t("rust")).unwrap();
        assert!(rust.max_score() > 0.0);
        // The stored bound is admissible: at least the true best score.
        let idf = shard.idf(2);
        let best = bm25_score(idf, 4, shard.doc_norm(FileId(3))).max(bm25_score(
            idf,
            1,
            shard.doc_norm(FileId(7)),
        ));
        assert!(rust.block_score_bound(0) >= best);
        // tf survives sealing.
        assert_eq!(rust.to_list().tf_of(FileId(3)), Some(4));

        // Longer-than-average docs get a norm above neutral, shorter below.
        assert!(shard.doc_norm(FileId(3)) > bm25_neutral_norm());
        assert!(shard.doc_norm(FileId(7)) < bm25_neutral_norm());
        // Unknown documents read as neutral.
        assert_eq!(shard.doc_norm(FileId(999)).to_bits(), bm25_neutral_norm().to_bits());
    }

    #[test]
    fn uncounted_seal_is_scored_with_tf_one() {
        // insert_file records each distinct term once, so tf = 1 everywhere
        // and the list max is the best tf=1 score across its documents.
        let shard = SealedShard::from_index(&sample_index());
        assert!(shard.has_scoring());
        let rust = shard.postings(&t("rust")).unwrap();
        let idf = shard.idf(2);
        let expected = bm25_score(idf, 1, shard.doc_norm(FileId(0))).max(bm25_score(
            idf,
            1,
            shard.doc_norm(FileId(2)),
        ));
        assert_eq!(rust.max_score().to_bits(), expected.to_bits());
    }

    #[test]
    fn scored_entries_roundtrip_matches_from_index() {
        let mut index = InMemoryIndex::new();
        index.insert_file_counted(FileId(0), [(t("a"), 3u32), (t("b"), 1)]);
        index.insert_file_counted(FileId(5), [(t("b"), 7u32)]);
        let sealed = SealedShard::from_index(&index);
        let entries: Vec<(Term, CompressedPostings)> =
            sealed.iter().map(|(term, cp)| (term.clone(), cp.clone())).collect();
        let mut lens: Vec<(FileId, u32)> = index.doc_lens().collect();
        lens.sort_unstable_by_key(|&(id, _)| id);
        let restored = SealedShard::from_entries_scored(entries, index.file_count(), lens).unwrap();
        assert_eq!(restored, sealed);
        assert!(restored.has_scoring());
        assert_eq!(restored.doc_norm(FileId(5)).to_bits(), sealed.doc_norm(FileId(5)).to_bits());
    }

    #[test]
    fn from_entries_validates_order() {
        let a = CompressedPostings::from_sorted(&[FileId(0)]);
        let ok =
            SealedShard::from_entries(vec![(t("alpha"), a.clone()), (t("beta"), a.clone())], 1)
                .unwrap();
        assert_eq!(ok.term_count(), 2);
        let err = SealedShard::from_entries(vec![(t("beta"), a.clone()), (t("alpha"), a)], 1);
        assert!(err.is_err());
    }

    proptest! {
        /// A sealed shard answers exactly what the source index answers, for
        /// every term and prefix.
        #[test]
        fn sealed_lookups_match_index(
            docs in proptest::collection::vec(
                (0u32..64, proptest::collection::vec("[a-c]{1,4}", 1..6)),
                1..30,
            ),
            probe in "[a-c]{0,3}",
        ) {
            let mut index = InMemoryIndex::new();
            for (file, words) in &docs {
                let mut uniq = words.clone();
                uniq.sort();
                uniq.dedup();
                index.insert_file(FileId(*file), uniq.iter().map(|w| Term::from(w.as_str())));
            }
            let shard = SealedShard::from_index(&index);
            prop_assert_eq!(shard.term_count(), index.term_count());
            prop_assert_eq!(shard.posting_count(), index.posting_count());

            // Exact lookups agree for the probe and for every indexed term.
            let probe_term = Term::from(probe.as_str());
            match (index.postings(&probe_term), shard.postings(&probe_term)) {
                (Some(list), Some(cp)) => prop_assert_eq!(&cp.to_list(), list),
                (None, None) => {}
                other => prop_assert!(false, "lookup mismatch: {other:?}"),
            }
            // Prefix ranges cover the same multiset of lists the scan finds.
            let mut scanned: Vec<Vec<FileId>> = index.prefix_lists(&probe)
                .iter().map(|l| l.doc_ids().to_vec()).collect();
            scanned.sort();
            let mut ranged: Vec<Vec<FileId>> = shard.prefix_postings(&probe)
                .iter().map(|cp| cp.to_list().doc_ids().to_vec()).collect();
            ranged.sort();
            prop_assert_eq!(ranged, scanned);
        }
    }
}
