//! Index persistence.
//!
//! Desktop search regenerates its index periodically but persists it between
//! runs.  [`IndexSnapshot`] is a serialisable (serde) representation of an
//! [`InMemoryIndex`] plus its [`DocTable`], with JSON writers/readers.  The
//! snapshot stores sorted entries so two snapshots of equal indices are
//! byte-identical, which the tests rely on.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

use dsearch_text::tokenizer::Term;

use crate::doc_table::{DocTable, FileId};
use crate::memory_index::InMemoryIndex;

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The snapshot could not be parsed.
    Format(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Format(msg) => write!(f, "invalid snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SerializeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SerializeError::Io(e) => Some(e),
            SerializeError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// A serialisable snapshot of an index and its document table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexSnapshot {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// The document table (id order).
    pub docs: DocTable,
    /// Sorted `(term, sorted file ids)` entries.
    pub entries: Vec<(Term, Vec<FileId>)>,
    /// `counts[i]` holds `entries[i]`'s per-posting term frequencies; empty
    /// means every occurrence count is 1 (the canonical tf form).
    pub counts: Vec<Vec<u32>>,
    /// `(file, document length)` pairs sorted by id; empty when the index
    /// recorded no lengths (then restored documents score with neutral
    /// norms).
    pub doc_lens: Vec<(FileId, u32)>,
}

/// Version-1 layout (ids only), still readable: restored postings get
/// tf = 1 and no document lengths.
#[derive(Deserialize)]
struct LegacySnapshotV1 {
    version: u32,
    docs: DocTable,
    entries: Vec<(Term, Vec<FileId>)>,
}

/// Current snapshot format version (2 = term frequencies + doc lengths).
pub const SNAPSHOT_VERSION: u32 = 2;

impl IndexSnapshot {
    /// Builds a snapshot from an index and its document table.
    #[must_use]
    pub fn from_index(index: &InMemoryIndex, docs: &DocTable) -> Self {
        let entries = index.to_sorted_entries();
        let counts = entries
            .iter()
            .map(|(term, _)| index.postings(term).map(|l| l.tfs().to_vec()).unwrap_or_default())
            .collect();
        let mut doc_lens: Vec<(FileId, u32)> = index.doc_lens().collect();
        doc_lens.sort_unstable_by_key(|&(id, _)| id);
        IndexSnapshot { version: SNAPSHOT_VERSION, docs: docs.clone(), entries, counts, doc_lens }
    }

    /// Reconstructs the index (and document table) from the snapshot.
    #[must_use]
    pub fn into_index(self) -> (InMemoryIndex, DocTable) {
        let mut index = InMemoryIndex::with_capacity(self.entries.len());
        // Bulk-insert each term's whole list (sorting defensively: snapshots
        // written by this code are sorted, but the JSON may come from
        // elsewhere); file counters are restored from the doc table size.
        let mut counts = self.counts.into_iter();
        for (term, ids) in self.entries {
            let tfs = counts.next().unwrap_or_default();
            let list = if tfs.len() == ids.len() && !tfs.is_empty() {
                let mut pairs: Vec<(FileId, u32)> = ids.into_iter().zip(tfs).collect();
                pairs.sort_unstable_by_key(|&(id, _)| id);
                let mut list = crate::posting::PostingList::default();
                for (id, tf) in pairs {
                    list.add_with_tf(id, tf);
                }
                list
            } else {
                crate::posting::PostingList::from_unsorted(ids)
            };
            index.insert_term_list(term, list);
        }
        for (file, len) in self.doc_lens {
            index.note_doc_len(file, len);
        }
        for _ in 0..self.docs.len() {
            index.note_file_done();
        }
        (index, self.docs)
    }

    /// Writes the snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialisation and I/O failures.
    pub fn write_json<W: Write>(&self, mut writer: W) -> Result<(), SerializeError> {
        let json =
            serde_json::to_string(self).map_err(|e| SerializeError::Format(e.to_string()))?;
        writer.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Reads a snapshot from JSON.  Version-1 snapshots (no term
    /// frequencies or document lengths) are upgraded on read.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed JSON, or a version mismatch.
    pub fn read_json<R: Read>(mut reader: R) -> Result<Self, SerializeError> {
        let mut buf = String::new();
        reader.read_to_string(&mut buf)?;
        match serde_json::from_str::<IndexSnapshot>(&buf) {
            Ok(snapshot) => {
                if snapshot.version != SNAPSHOT_VERSION {
                    return Err(SerializeError::Format(format!(
                        "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                        snapshot.version
                    )));
                }
                Ok(snapshot)
            }
            Err(current_err) => {
                let legacy: LegacySnapshotV1 = serde_json::from_str(&buf)
                    .map_err(|_| SerializeError::Format(current_err.to_string()))?;
                if legacy.version != 1 {
                    return Err(SerializeError::Format(format!(
                        "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                        legacy.version
                    )));
                }
                let term_count = legacy.entries.len();
                Ok(IndexSnapshot {
                    version: SNAPSHOT_VERSION,
                    docs: legacy.docs,
                    entries: legacy.entries,
                    counts: vec![Vec::new(); term_count],
                    doc_lens: Vec::new(),
                })
            }
        }
    }

    /// Number of distinct terms in the snapshot.
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (InMemoryIndex, DocTable) {
        let mut docs = DocTable::new();
        let a = docs.insert("a.txt");
        let b = docs.insert("b.txt");
        let mut index = InMemoryIndex::new();
        index.insert_file(a, [Term::from("alpha"), Term::from("shared")]);
        index.insert_file(b, [Term::from("beta"), Term::from("shared")]);
        (index, docs)
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let (index, docs) = sample();
        let snapshot = IndexSnapshot::from_index(&index, &docs);
        assert_eq!(snapshot.term_count(), 3);

        let mut buf = Vec::new();
        snapshot.write_json(&mut buf).unwrap();
        let restored = IndexSnapshot::read_json(&buf[..]).unwrap();
        assert_eq!(snapshot, restored);

        let (index2, docs2) = restored.into_index();
        assert_eq!(index2, index);
        assert_eq!(docs2, docs);
        assert_eq!(index2.file_count(), 2);
    }

    #[test]
    fn equal_indices_produce_identical_snapshots() {
        let (index, docs) = sample();
        // Build the same index in a different order.
        let mut docs2 = DocTable::new();
        let a = docs2.insert("a.txt");
        let b = docs2.insert("b.txt");
        let mut index2 = InMemoryIndex::new();
        index2.insert_file(b, [Term::from("shared"), Term::from("beta")]);
        index2.insert_file(a, [Term::from("shared"), Term::from("alpha")]);

        let s1 = IndexSnapshot::from_index(&index, &docs);
        let s2 = IndexSnapshot::from_index(&index2, &docs2);
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        s1.write_json(&mut b1).unwrap();
        s2.write_json(&mut b2).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn counted_roundtrip_preserves_tfs_and_doc_lens() {
        let mut docs = DocTable::new();
        let a = docs.insert("a.txt");
        let b = docs.insert("b.txt");
        let mut index = InMemoryIndex::new();
        index.insert_file_counted(a, [(Term::from("alpha"), 3u32), (Term::from("shared"), 1)]);
        index.insert_file_counted(b, [(Term::from("shared"), 5u32)]);

        let snapshot = IndexSnapshot::from_index(&index, &docs);
        let mut buf = Vec::new();
        snapshot.write_json(&mut buf).unwrap();
        let (restored, _) = IndexSnapshot::read_json(&buf[..]).unwrap().into_index();
        assert_eq!(restored, index);
        let shared = restored.postings(&Term::from("shared")).unwrap();
        assert_eq!(shared.tf_of(b), Some(5));
        assert_eq!(restored.doc_len(a), Some(4));
        assert_eq!(restored.doc_len(b), Some(5));
    }

    #[test]
    fn legacy_v1_json_is_upgraded_on_read() {
        let json = r#"{"version":1,"docs":{"paths":["a.txt"]},"entries":[["alpha",[0]]]}"#;
        match IndexSnapshot::read_json(json.as_bytes()) {
            Ok(snapshot) => {
                assert_eq!(snapshot.version, SNAPSHOT_VERSION);
                assert_eq!(snapshot.term_count(), 1);
                assert!(snapshot.doc_lens.is_empty());
                let (index, docs) = snapshot.into_index();
                assert_eq!(docs.len(), 1);
                assert_eq!(index.postings(&Term::from("alpha")).unwrap().tf_of(FileId(0)), Some(1));
            }
            Err(e) => panic!("legacy snapshot should parse: {e}"),
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        let err = IndexSnapshot::read_json(&b"not json"[..]).unwrap_err();
        assert!(matches!(err, SerializeError::Format(_)));
        assert!(err.to_string().contains("invalid snapshot"));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (index, docs) = sample();
        let mut snapshot = IndexSnapshot::from_index(&index, &docs);
        snapshot.version = 99;
        let mut buf = Vec::new();
        snapshot.write_json(&mut buf).unwrap();
        let err = IndexSnapshot::read_json(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn io_error_variant_has_source() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (index, docs) = sample();
        let snapshot = IndexSnapshot::from_index(&index, &docs);
        let err = snapshot.write_json(FailingWriter).unwrap_err();
        assert!(matches!(err, SerializeError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
