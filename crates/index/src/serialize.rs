//! Index persistence.
//!
//! Desktop search regenerates its index periodically but persists it between
//! runs.  [`IndexSnapshot`] is a serialisable (serde) representation of an
//! [`InMemoryIndex`] plus its [`DocTable`], with JSON writers/readers.  The
//! snapshot stores sorted entries so two snapshots of equal indices are
//! byte-identical, which the tests rely on.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

use dsearch_text::tokenizer::Term;

use crate::doc_table::{DocTable, FileId};
use crate::memory_index::InMemoryIndex;

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The snapshot could not be parsed.
    Format(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Format(msg) => write!(f, "invalid snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SerializeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SerializeError::Io(e) => Some(e),
            SerializeError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// A serialisable snapshot of an index and its document table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexSnapshot {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// The document table (id order).
    pub docs: DocTable,
    /// Sorted `(term, sorted file ids)` entries.
    pub entries: Vec<(Term, Vec<FileId>)>,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl IndexSnapshot {
    /// Builds a snapshot from an index and its document table.
    #[must_use]
    pub fn from_index(index: &InMemoryIndex, docs: &DocTable) -> Self {
        IndexSnapshot {
            version: SNAPSHOT_VERSION,
            docs: docs.clone(),
            entries: index.to_sorted_entries(),
        }
    }

    /// Reconstructs the index (and document table) from the snapshot.
    #[must_use]
    pub fn into_index(self) -> (InMemoryIndex, DocTable) {
        let mut index = InMemoryIndex::with_capacity(self.entries.len());
        // Bulk-insert each term's whole list (sorting defensively: snapshots
        // written by this code are sorted, but the JSON may come from
        // elsewhere); file counters are restored from the doc table size.
        for (term, ids) in self.entries {
            index.insert_term_list(term, crate::posting::PostingList::from_unsorted(ids));
        }
        for _ in 0..self.docs.len() {
            index.note_file_done();
        }
        (index, self.docs)
    }

    /// Writes the snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialisation and I/O failures.
    pub fn write_json<W: Write>(&self, mut writer: W) -> Result<(), SerializeError> {
        let json =
            serde_json::to_string(self).map_err(|e| SerializeError::Format(e.to_string()))?;
        writer.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Reads a snapshot from JSON.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed JSON, or a version mismatch.
    pub fn read_json<R: Read>(mut reader: R) -> Result<Self, SerializeError> {
        let mut buf = String::new();
        reader.read_to_string(&mut buf)?;
        let snapshot: IndexSnapshot =
            serde_json::from_str(&buf).map_err(|e| SerializeError::Format(e.to_string()))?;
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SerializeError::Format(format!(
                "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        Ok(snapshot)
    }

    /// Number of distinct terms in the snapshot.
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (InMemoryIndex, DocTable) {
        let mut docs = DocTable::new();
        let a = docs.insert("a.txt");
        let b = docs.insert("b.txt");
        let mut index = InMemoryIndex::new();
        index.insert_file(a, [Term::from("alpha"), Term::from("shared")]);
        index.insert_file(b, [Term::from("beta"), Term::from("shared")]);
        (index, docs)
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let (index, docs) = sample();
        let snapshot = IndexSnapshot::from_index(&index, &docs);
        assert_eq!(snapshot.term_count(), 3);

        let mut buf = Vec::new();
        snapshot.write_json(&mut buf).unwrap();
        let restored = IndexSnapshot::read_json(&buf[..]).unwrap();
        assert_eq!(snapshot, restored);

        let (index2, docs2) = restored.into_index();
        assert_eq!(index2, index);
        assert_eq!(docs2, docs);
        assert_eq!(index2.file_count(), 2);
    }

    #[test]
    fn equal_indices_produce_identical_snapshots() {
        let (index, docs) = sample();
        // Build the same index in a different order.
        let mut docs2 = DocTable::new();
        let a = docs2.insert("a.txt");
        let b = docs2.insert("b.txt");
        let mut index2 = InMemoryIndex::new();
        index2.insert_file(b, [Term::from("shared"), Term::from("beta")]);
        index2.insert_file(a, [Term::from("shared"), Term::from("alpha")]);

        let s1 = IndexSnapshot::from_index(&index, &docs);
        let s2 = IndexSnapshot::from_index(&index2, &docs2);
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        s1.write_json(&mut b1).unwrap();
        s2.write_json(&mut b2).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn malformed_json_is_rejected() {
        let err = IndexSnapshot::read_json(&b"not json"[..]).unwrap_err();
        assert!(matches!(err, SerializeError::Format(_)));
        assert!(err.to_string().contains("invalid snapshot"));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let (index, docs) = sample();
        let mut snapshot = IndexSnapshot::from_index(&index, &docs);
        snapshot.version = 99;
        let mut buf = Vec::new();
        snapshot.write_json(&mut buf).unwrap();
        let err = IndexSnapshot::read_json(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn io_error_variant_has_source() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (index, docs) = sample();
        let snapshot = IndexSnapshot::from_index(&index, &docs);
        let err = snapshot.write_json(FailingWriter).unwrap_err();
        assert!(matches!(err, SerializeError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
