//! Term-sharded index.
//!
//! A design point between the single locked index (Implementation 1) and full
//! replication (Implementations 2/3): the term space is split into `N` shards
//! by hashing the term, and each shard has its own lock.  Two threads only
//! contend when they touch the same shard.  The paper does not evaluate this
//! variant, but it is the natural "use finer-grained locking" answer to the
//! contention the paper measures, so the ablation benchmarks include it.

use std::sync::Arc;

use parking_lot::Mutex;

use dsearch_text::fnv::fnv1a_64;
use dsearch_text::tokenizer::Term;

use crate::doc_table::FileId;
use crate::memory_index::InMemoryIndex;
use crate::posting::PostingList;
use crate::stats::IndexStats;

/// A sharded, lock-per-shard inverted index.
///
/// # Example
///
/// ```
/// use dsearch_index::{FileId, ShardedIndex};
/// use dsearch_text::Term;
///
/// let index = ShardedIndex::new(8);
/// index.insert_file(FileId(0), [Term::from("alpha"), Term::from("beta")]);
/// assert_eq!(index.postings(&Term::from("alpha")).unwrap().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    shards: Arc<Vec<Mutex<InMemoryIndex>>>,
}

impl ShardedIndex {
    /// Creates an index with `shards` shards (at least 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedIndex {
            shards: Arc::new((0..shards).map(|_| Mutex::new(InMemoryIndex::new())).collect()),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, term: &Term) -> usize {
        (fnv1a_64(term.as_str().as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Inserts one file's de-duplicated terms.
    ///
    /// The word list is partitioned by shard first so each shard lock is
    /// taken at most once per file.
    pub fn insert_file<I>(&self, file: FileId, terms: I)
    where
        I: IntoIterator<Item = Term>,
    {
        let mut per_shard: Vec<Vec<Term>> = vec![Vec::new(); self.shards.len()];
        for term in terms {
            per_shard[self.shard_for(&term)].push(term);
        }
        let mut touched_any = false;
        for (shard_idx, bucket) in per_shard.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut shard = self.shards[shard_idx].lock();
            for term in bucket {
                shard.insert_occurrence(file, term);
            }
            if !touched_any {
                // Account the file exactly once, in the first shard it touches.
                shard.note_file_done();
                touched_any = true;
            }
        }
        if !touched_any {
            // Empty word list: account the file in shard 0 for bookkeeping.
            self.shards[0].lock().note_file_done();
        }
    }

    /// The posting list for `term`, if present.
    #[must_use]
    pub fn postings(&self, term: &Term) -> Option<PostingList> {
        self.shards[self.shard_for(term)].lock().postings(term).cloned()
    }

    /// Merges every shard into a single [`InMemoryIndex`].
    #[must_use]
    pub fn into_index(self) -> InMemoryIndex {
        let shards = Arc::try_unwrap(self.shards)
            .map(|v| v.into_iter().map(Mutex::into_inner).collect::<Vec<_>>())
            .unwrap_or_else(|arc| arc.iter().map(|m| m.lock().clone()).collect());
        crate::join::join_all(shards)
    }

    /// Aggregate statistics across shards.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for shard in self.shards.iter() {
            let s = shard.lock().stats();
            total.distinct_terms += s.distinct_terms;
            total.postings += s.postings;
            total.files += s.files;
            total.longest_posting_list = total.longest_posting_list.max(s.longest_posting_list);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Term {
        Term::from(s)
    }

    #[test]
    fn single_shard_behaves_like_plain_index() {
        let sharded = ShardedIndex::new(1);
        let mut plain = InMemoryIndex::new();
        for i in 0..20u32 {
            let terms = vec![t("common"), Term::from(format!("t{}", i % 4))];
            sharded.insert_file(FileId(i), terms.clone());
            plain.insert_file(FileId(i), terms);
        }
        assert_eq!(sharded.clone().into_index(), plain);
        assert_eq!(sharded.stats().files, 20);
    }

    #[test]
    fn sharding_preserves_contents() {
        for shards in [2, 4, 16] {
            let sharded = ShardedIndex::new(shards);
            let mut plain = InMemoryIndex::new();
            for i in 0..50u32 {
                let terms = vec![
                    t("everywhere"),
                    Term::from(format!("group{}", i % 7)),
                    Term::from(format!("unique{i}")),
                ];
                sharded.insert_file(FileId(i), terms.clone());
                plain.insert_file(FileId(i), terms);
            }
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(sharded.postings(&t("everywhere")).unwrap().len(), 50);
            assert!(sharded.postings(&t("missing")).is_none());
            let merged = sharded.into_index();
            assert_eq!(merged, plain);
        }
    }

    #[test]
    fn file_count_is_not_double_counted() {
        let sharded = ShardedIndex::new(8);
        for i in 0..30u32 {
            sharded.insert_file(FileId(i), [t("a"), t("b"), t("c"), t("d")]);
        }
        assert_eq!(sharded.stats().files, 30);
        assert_eq!(sharded.into_index().file_count(), 30);
    }

    #[test]
    fn empty_word_list_still_counts_the_file() {
        let sharded = ShardedIndex::new(4);
        sharded.insert_file(FileId(0), Vec::<Term>::new());
        assert_eq!(sharded.stats().files, 1);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let sharded = ShardedIndex::new(0);
        assert_eq!(sharded.shard_count(), 1);
    }

    #[test]
    fn concurrent_inserts_are_consistent() {
        let sharded = ShardedIndex::new(4);
        let mut handles = Vec::new();
        for thread in 0..4u32 {
            let sharded = sharded.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25u32 {
                    sharded.insert_file(
                        FileId(thread * 25 + i),
                        [t("shared"), Term::from(format!("thread{thread}"))],
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sharded.postings(&t("shared")).unwrap().len(), 100);
        let stats = sharded.stats();
        assert_eq!(stats.files, 100);
        let merged = sharded.into_index();
        assert_eq!(merged.file_count(), 100);
        assert_eq!(merged.term_count(), 5);
    }
}
