//! Shared (locked) index and replica sets.
//!
//! * [`SharedIndex`] is **Implementation 1**: a single [`InMemoryIndex`]
//!   behind a mutex; every extractor (or dedicated updater thread) locks it to
//!   insert one file's word list.
//! * [`IndexSet`] is the result structure of **Implementation 3**: the
//!   per-thread replicas are kept separate and searched together.

use std::sync::Arc;

use parking_lot::Mutex;

use dsearch_text::tokenizer::Term;

use crate::doc_table::FileId;
use crate::memory_index::InMemoryIndex;
use crate::posting::PostingList;
use crate::stats::IndexStats;
use crate::view::Postings;

/// A single shared index protected by a lock (Implementation 1).
///
/// Cloning the handle is cheap; all clones refer to the same index.
///
/// # Example
///
/// ```
/// use dsearch_index::{FileId, SharedIndex};
/// use dsearch_text::Term;
///
/// let index = SharedIndex::new();
/// let handle = index.clone();
/// std::thread::spawn(move || {
///     handle.insert_file(FileId(0), [Term::from("hello")]);
/// })
/// .join()
/// .unwrap();
/// index.insert_file(FileId(1), [Term::from("hello")]);
/// assert_eq!(index.snapshot().postings(&Term::from("hello")).unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedIndex {
    inner: Arc<Mutex<InMemoryIndex>>,
}

impl SharedIndex {
    /// Creates an empty shared index.
    #[must_use]
    pub fn new() -> Self {
        SharedIndex::default()
    }

    /// Creates a shared index pre-sized for roughly `expected_terms` terms.
    #[must_use]
    pub fn with_capacity(expected_terms: usize) -> Self {
        SharedIndex { inner: Arc::new(Mutex::new(InMemoryIndex::with_capacity(expected_terms))) }
    }

    /// Inserts one file's de-duplicated terms under the lock.
    ///
    /// The whole word list is inserted while the lock is held (en-bloc
    /// insertion); this is the design the paper converged on for
    /// Implementation 1 because it amortises the lock acquisition over many
    /// terms.
    pub fn insert_file<I>(&self, file: FileId, terms: I)
    where
        I: IntoIterator<Item = Term>,
    {
        let mut idx = self.inner.lock();
        idx.insert_file(file, terms);
    }

    /// Inserts one file's terms with their occurrence counts under the lock
    /// (the counted variant of [`SharedIndex::insert_file`]).
    pub fn insert_file_counted<I>(&self, file: FileId, terms: I)
    where
        I: IntoIterator<Item = (Term, u32)>,
    {
        let mut idx = self.inner.lock();
        idx.insert_file_counted(file, terms);
    }

    /// Inserts a single `(term, file)` occurrence under the lock (ablation
    /// path: one lock acquisition per occurrence).
    pub fn insert_occurrence(&self, file: FileId, term: Term) {
        let mut idx = self.inner.lock();
        idx.insert_occurrence(file, term);
    }

    /// Records completion of a file processed via per-occurrence inserts.
    pub fn note_file_done(&self) {
        self.inner.lock().note_file_done();
    }

    /// The posting list for `term`, cloned out of the lock.
    #[must_use]
    pub fn postings(&self, term: &Term) -> Option<PostingList> {
        self.inner.lock().postings(term).cloned()
    }

    /// A full copy of the underlying index (for reporting and tests).
    #[must_use]
    pub fn snapshot(&self) -> InMemoryIndex {
        self.inner.lock().clone()
    }

    /// Consumes the handle; returns the index if this was the last handle,
    /// otherwise a clone.
    #[must_use]
    pub fn into_inner(self) -> InMemoryIndex {
        match Arc::try_unwrap(self.inner) {
            Ok(mutex) => mutex.into_inner(),
            Err(arc) => arc.lock().clone(),
        }
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        self.inner.lock().stats()
    }

    /// Number of handles currently sharing this index (diagnostics).
    #[must_use]
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

/// A set of un-joined per-thread replica indices (Implementation 3).
///
/// Searching consults every replica and unions the results; because each file
/// was assigned to exactly one extractor (round-robin distribution), each
/// replica holds a disjoint set of files and the union is duplicate-free by
/// construction.
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    replicas: Vec<InMemoryIndex>,
}

impl IndexSet {
    /// Creates a set from per-thread replicas.
    #[must_use]
    pub fn new(replicas: Vec<InMemoryIndex>) -> Self {
        IndexSet { replicas }
    }

    /// Number of replicas.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Returns `true` when the set holds no replicas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Borrows the replicas.
    #[must_use]
    pub fn replicas(&self) -> &[InMemoryIndex] {
        &self.replicas
    }

    /// Consumes the set, returning the replicas.
    #[must_use]
    pub fn into_replicas(self) -> Vec<InMemoryIndex> {
        self.replicas
    }

    /// The union of the posting lists for `term` across every replica.
    #[must_use]
    pub fn postings(&self, term: &Term) -> PostingList {
        let mut out = PostingList::new();
        for replica in &self.replicas {
            if let Some(list) = replica.postings(term) {
                out.union_with(list);
            }
        }
        out
    }

    /// Borrows the posting list of every replica that knows `term`, without
    /// merging — the zero-copy building block the query layer unions lazily.
    #[must_use]
    pub fn posting_lists(&self, term: &Term) -> Vec<&PostingList> {
        self.replicas.iter().filter_map(|replica| replica.postings(term)).collect()
    }

    /// The posting list for `term` as a borrow-preserving [`Postings`]:
    /// borrowed whenever at most one replica holds the term (a single-replica
    /// set never even collects lookup results into a vector), a k-way merge
    /// only on genuine cross-replica overlap.  With `parallel`, lookups fan
    /// out one thread per replica.
    #[must_use]
    pub fn term_postings(&self, term: &Term, parallel: bool) -> Postings<'_> {
        if let [only] = self.replicas.as_slice() {
            return match only.postings(term) {
                Some(list) => Postings::Borrowed(list),
                None => Postings::empty(),
            };
        }
        let lists = if parallel && self.replicas.len() > 1 {
            self.posting_lists_parallel(term)
        } else {
            self.posting_lists(term)
        };
        Postings::union_of(lists)
    }

    /// The union of the posting lists of every term starting with `prefix`
    /// across every replica, as a borrow-preserving [`Postings`].  With
    /// `parallel`, each replica's dictionary range (or scan) runs on its own
    /// thread.
    #[must_use]
    pub fn prefix_term_postings(&self, prefix: &str, parallel: bool) -> Postings<'_> {
        let lists = if parallel && self.replicas.len() > 1 {
            self.prefix_posting_lists_parallel(prefix)
        } else {
            self.prefix_posting_lists(prefix)
        };
        Postings::union_of(lists)
    }

    /// Like [`IndexSet::posting_lists`], with one lookup thread per replica.
    ///
    /// Worth it only for large replica counts; the returned borrows live as
    /// long as the set itself, so nothing is cloned across the threads.
    #[must_use]
    pub fn posting_lists_parallel(&self, term: &Term) -> Vec<&PostingList> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .replicas
                .iter()
                .map(|replica| scope.spawn(move || replica.postings(term)))
                .collect();
            handles.into_iter().filter_map(|h| h.join().expect("replica lookup panicked")).collect()
        })
    }

    /// Borrows the posting list of every term starting with `prefix` in any
    /// replica (one entry per matching term per replica; callers merge).
    #[must_use]
    pub fn prefix_posting_lists(&self, prefix: &str) -> Vec<&PostingList> {
        self.replicas.iter().flat_map(|replica| replica.prefix_lists(prefix)).collect()
    }

    /// Like [`IndexSet::prefix_posting_lists`], with one dictionary/scan
    /// thread per replica.
    #[must_use]
    pub fn prefix_posting_lists_parallel(&self, prefix: &str) -> Vec<&PostingList> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .replicas
                .iter()
                .map(|replica| scope.spawn(move || replica.prefix_lists(prefix)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("replica prefix lookup panicked"))
                .collect()
        })
    }

    /// Returns `true` when any replica contains `term`.
    #[must_use]
    pub fn contains_term(&self, term: &Term) -> bool {
        self.replicas.iter().any(|r| r.contains_term(term))
    }

    /// Joins all replicas into one index (turning an Implementation 3 result
    /// into an Implementation 2 result after the fact).
    #[must_use]
    pub fn join(self) -> InMemoryIndex {
        crate::join::join_all(self.replicas)
    }

    /// Aggregate statistics across replicas.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for r in &self.replicas {
            let s = r.stats();
            total.postings += s.postings;
            total.files += s.files;
            total.longest_posting_list = total.longest_posting_list.max(s.longest_posting_list);
            // distinct_terms across replicas can overlap; report the joined
            // count only when asked via join(); here we report the sum as an
            // upper bound.
            total.distinct_terms += s.distinct_terms;
        }
        total
    }

    /// Total files indexed across replicas.
    #[must_use]
    pub fn file_count(&self) -> u64 {
        self.replicas.iter().map(InMemoryIndex::file_count).sum()
    }
}

impl FromIterator<InMemoryIndex> for IndexSet {
    fn from_iter<I: IntoIterator<Item = InMemoryIndex>>(iter: I) -> Self {
        IndexSet { replicas: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Term {
        Term::from(s)
    }

    #[test]
    fn shared_index_serialises_concurrent_inserts() {
        let index = SharedIndex::new();
        let mut handles = Vec::new();
        for thread in 0..4u32 {
            let index = index.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    let file = FileId(thread * 50 + i);
                    index.insert_file(file, [t("common"), Term::from(format!("t{thread}"))]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = index.snapshot();
        assert_eq!(snap.file_count(), 200);
        assert_eq!(snap.postings(&t("common")).unwrap().len(), 200);
        assert_eq!(snap.term_count(), 5);
        assert_eq!(index.stats().files, 200);
    }

    #[test]
    fn shared_index_postings_and_occurrence_path() {
        let index = SharedIndex::with_capacity(16);
        index.insert_occurrence(FileId(1), t("x"));
        index.insert_occurrence(FileId(1), t("x"));
        index.note_file_done();
        assert_eq!(index.postings(&t("x")).unwrap().len(), 1);
        assert!(index.postings(&t("missing")).is_none());
        assert!(index.handle_count() >= 1);
        let inner = index.into_inner();
        assert_eq!(inner.file_count(), 1);
    }

    #[test]
    fn into_inner_with_outstanding_handle_clones() {
        let index = SharedIndex::new();
        index.insert_file(FileId(0), [t("a")]);
        let other = index.clone();
        let inner = index.into_inner();
        assert_eq!(inner.term_count(), 1);
        // The other handle still works.
        other.insert_file(FileId(1), [t("b")]);
        assert_eq!(other.snapshot().term_count(), 2);
    }

    #[test]
    fn index_set_unions_postings_across_replicas() {
        let mut r0 = InMemoryIndex::new();
        r0.insert_file(FileId(0), [t("shared"), t("only0")]);
        let mut r1 = InMemoryIndex::new();
        r1.insert_file(FileId(1), [t("shared"), t("only1")]);

        let set: IndexSet = vec![r0, r1].into_iter().collect();
        assert_eq!(set.replica_count(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.postings(&t("shared")).doc_ids(), &[FileId(0), FileId(1)]);
        assert_eq!(set.postings(&t("only0")).doc_ids(), &[FileId(0)]);
        assert!(set.postings(&t("nowhere")).is_empty());
        assert!(set.contains_term(&t("only1")));
        assert!(!set.contains_term(&t("nowhere")));
        assert_eq!(set.file_count(), 2);
    }

    #[test]
    fn index_set_term_postings_borrows_when_possible() {
        let mut r0 = InMemoryIndex::new();
        r0.insert_file(FileId(0), [t("shared"), t("only0")]);
        let mut r1 = InMemoryIndex::new();
        r1.insert_file(FileId(1), [t("shared"), t("only1")]);

        // Single-replica set: always a direct borrow (or the static empty).
        let lone = IndexSet::new(vec![r0.clone()]);
        assert!(matches!(lone.term_postings(&t("only0"), false), Postings::Borrowed(_)));
        let missing = lone.term_postings(&t("nowhere"), false);
        assert!(matches!(missing, Postings::Borrowed(list) if list.is_empty()));

        // Two replicas: terms in one replica stay borrowed, overlap merges.
        let set = IndexSet::new(vec![r0, r1]);
        for parallel in [false, true] {
            assert!(matches!(set.term_postings(&t("only0"), parallel), Postings::Borrowed(_)));
            let merged = set.term_postings(&t("shared"), parallel);
            assert!(matches!(merged, Postings::Owned(_)));
            assert_eq!(merged.list().doc_ids(), &[FileId(0), FileId(1)]);
            assert_eq!(
                set.prefix_term_postings("only", parallel).list().doc_ids(),
                &[FileId(0), FileId(1)]
            );
            // Postings-returning lookups agree with the owned union.
            assert_eq!(
                set.term_postings(&t("shared"), parallel).list(),
                &set.postings(&t("shared"))
            );
        }
    }

    #[test]
    fn index_set_join_equals_direct_build() {
        let mut direct = InMemoryIndex::new();
        let mut r0 = InMemoryIndex::new();
        let mut r1 = InMemoryIndex::new();
        for i in 0..20u32 {
            let terms = [Term::from(format!("w{}", i % 5)), t("all")];
            direct.insert_file(FileId(i), terms.clone());
            if i % 2 == 0 {
                r0.insert_file(FileId(i), terms);
            } else {
                r1.insert_file(FileId(i), terms);
            }
        }
        let set = IndexSet::new(vec![r0, r1]);
        let joined = set.join();
        assert_eq!(joined, direct);
    }

    #[test]
    fn index_set_stats_are_upper_bounds() {
        let mut r0 = InMemoryIndex::new();
        r0.insert_file(FileId(0), [t("a"), t("b")]);
        let mut r1 = InMemoryIndex::new();
        r1.insert_file(FileId(1), [t("a")]);
        let set = IndexSet::new(vec![r0, r1]);
        let stats = set.stats();
        assert_eq!(stats.files, 2);
        assert_eq!(stats.postings, 3);
        assert_eq!(stats.distinct_terms, 3); // upper bound (a counted twice)
        assert_eq!(set.replicas().len(), 2);
        assert_eq!(set.into_replicas().len(), 2);
    }
}
