//! Index statistics.

use serde::{Deserialize, Serialize};

/// Summary statistics of an index (or a set of replicas).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Number of distinct terms.
    pub distinct_terms: u64,
    /// Number of `(term, file)` postings.
    pub postings: u64,
    /// Number of files indexed.
    pub files: u64,
    /// Length of the longest posting list (how common is the most common term).
    pub longest_posting_list: u64,
}

impl IndexStats {
    /// Average posting-list length.
    #[must_use]
    pub fn mean_postings_per_term(&self) -> f64 {
        if self.distinct_terms == 0 {
            0.0
        } else {
            self.postings as f64 / self.distinct_terms as f64
        }
    }

    /// Average number of distinct terms per file.
    #[must_use]
    pub fn mean_terms_per_file(&self) -> f64 {
        if self.files == 0 {
            0.0
        } else {
            self.postings as f64 / self.files as f64
        }
    }
}

impl std::fmt::Display for IndexStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} terms, {} postings, {} files (mean {:.1} postings/term, {:.1} terms/file)",
            self.distinct_terms,
            self.postings,
            self.files,
            self.mean_postings_per_term(),
            self.mean_terms_per_file(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_handle_zero_denominators() {
        let empty = IndexStats::default();
        assert_eq!(empty.mean_postings_per_term(), 0.0);
        assert_eq!(empty.mean_terms_per_file(), 0.0);
    }

    #[test]
    fn means_compute_ratios() {
        let s = IndexStats { distinct_terms: 10, postings: 40, files: 8, longest_posting_list: 7 };
        assert!((s.mean_postings_per_term() - 4.0).abs() < 1e-9);
        assert!((s.mean_terms_per_file() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_nonempty_and_mentions_counts() {
        let s = IndexStats { distinct_terms: 3, postings: 5, files: 2, longest_posting_list: 2 };
        let text = s.to_string();
        assert!(text.contains('3') && text.contains('5') && text.contains('2'));
    }
}
