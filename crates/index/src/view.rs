//! Borrowed posting views and allocation-free set operations.
//!
//! [`PostingList`] is the *owned* form of a posting list; [`PostingView`] is
//! the *borrowed* form — a sorted, duplicate-free `&[FileId]` slice that the
//! query evaluator can intersect, union and subtract without cloning anything
//! out of the index.  [`Postings`] bridges the two worlds for APIs that
//! usually hand out borrows but sometimes have to materialise a merge
//! (multi-shard lookups, prefix expansions): it is a three-way `Cow` whose
//! `Shared` variant lets a batch memo hand the same merged list to many
//! queries for the price of an `Arc` bump.
//!
//! The intersection switches strategy on the size ratio of its inputs: near
//! balanced lists walk both linearly; skewed pairs *gallop* — for each id of
//! the short list, probe exponentially through the long one and finish with a
//! binary search — which turns a `100 ∩ 100 000` intersection from ~100k
//! comparisons into a few hundred.  Multi-list unions (prefix queries,
//! cross-shard merges) go through a k-way heap merge instead of folding
//! pairwise, so each output id costs `O(log k)` instead of `O(k)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::block::{BlockCursor, CompressedPostings, PostingCursor, SliceCursor};
use crate::doc_table::FileId;
use crate::posting::PostingList;

/// Gallop through the longer list when it is at least this many times the
/// length of the shorter one; below the ratio a linear merge is cheaper
/// because the binary searches stop paying for themselves.
const GALLOP_RATIO: usize = 8;

/// A borrowed posting list: a sorted, duplicate-free slice of file ids.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostingView<'a> {
    ids: &'a [FileId],
}

impl<'a> PostingView<'a> {
    /// Wraps a sorted, duplicate-free slice of file ids.
    ///
    /// Sortedness is the caller's invariant (every slice handed out by
    /// [`PostingList`] satisfies it); it is checked in debug builds only.
    #[must_use]
    pub fn new(ids: &'a [FileId]) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "posting views must be sorted and duplicate-free"
        );
        PostingView { ids }
    }

    /// Number of files in the view.
    #[must_use]
    pub fn len(self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when the view covers no files.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.ids.is_empty()
    }

    /// The underlying sorted slice.
    #[must_use]
    pub fn doc_ids(self) -> &'a [FileId] {
        self.ids
    }

    /// Returns `true` when `id` is in the view.
    #[must_use]
    pub fn contains(self, id: FileId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Iterates over the file ids in ascending order.
    pub fn iter(self) -> impl Iterator<Item = FileId> + 'a {
        self.ids.iter().copied()
    }

    /// Copies the view into an owned [`PostingList`].
    #[must_use]
    pub fn to_list(self) -> PostingList {
        PostingList::from_sorted(self.ids.to_vec())
    }

    /// Writes the intersection of `self` and `other` into `out` (cleared
    /// first).
    ///
    /// Balanced inputs take the linear two-pointer merge; when one list is at
    /// least [`GALLOP_RATIO`] times the other, every id of the short list is
    /// located in the long one by exponential probing plus binary search.
    pub fn intersect_into(self, other: PostingView<'_>, out: &mut Vec<FileId>) {
        out.clear();
        let (small, large) =
            if self.len() <= other.len() { (self.ids, other.ids) } else { (other.ids, self.ids) };
        if small.is_empty() {
            return;
        }
        if large.len() / small.len() >= GALLOP_RATIO {
            gallop_intersect(small, large, out);
        } else {
            linear_intersect(small, large, out);
        }
    }

    /// Writes `self` minus `other` into `out` (cleared first): the ids of
    /// `self` that do **not** occur in `other`.  Linear two-pointer walk.
    pub fn difference_into(self, other: PostingView<'_>, out: &mut Vec<FileId>) {
        out.clear();
        let (a, b) = (self.ids, other.ids);
        let mut j = 0usize;
        for &x in a {
            while j < b.len() && b[j] < x {
                j += 1;
            }
            if j == b.len() || b[j] != x {
                out.push(x);
            }
        }
    }
}

impl<'a> From<&'a PostingList> for PostingView<'a> {
    fn from(list: &'a PostingList) -> Self {
        list.as_view()
    }
}

fn linear_intersect(a: &[FileId], b: &[FileId], out: &mut Vec<FileId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

fn gallop_intersect(small: &[FileId], large: &[FileId], out: &mut Vec<FileId>) {
    // `base` only moves forward: both lists are sorted, so everything before
    // it is already known to be smaller than the next id of `small`.
    let mut base = 0usize;
    for &x in small {
        if base >= large.len() {
            break;
        }
        // Exponential probe: double the step until an element >= x is found
        // (or the list ends), then binary-search the bracketed window.  The
        // window upper bound is inclusive of the probe hit, which may be x
        // itself.
        let mut offset = 1usize;
        while base + offset < large.len() && large[base + offset] < x {
            offset <<= 1;
        }
        let hi = (base + offset + 1).min(large.len());
        match large[base..hi].binary_search(&x) {
            Ok(pos) => {
                out.push(x);
                base += pos + 1;
            }
            Err(pos) => base += pos,
        }
    }
}

/// Writes the k-way union of `views` into `out` (cleared first).
///
/// Zero or one input lists copy straight through, two take a linear merge,
/// and three or more go through a min-heap of cursors so each output id costs
/// `O(log k)` — the shape prefix queries and cross-shard merges produce.
pub fn union_into(views: &[PostingView<'_>], out: &mut Vec<FileId>) {
    out.clear();
    match views {
        [] => {}
        [only] => out.extend_from_slice(only.ids),
        [a, b] => linear_union(a.ids, b.ids, out),
        _ => {
            let mut heap: BinaryHeap<Reverse<(FileId, usize, usize)>> =
                BinaryHeap::with_capacity(views.len());
            for (list, view) in views.iter().enumerate() {
                if let Some(&first) = view.ids.first() {
                    heap.push(Reverse((first, list, 0)));
                }
            }
            while let Some(Reverse((id, list, pos))) = heap.pop() {
                if out.last().copied() != Some(id) {
                    out.push(id);
                }
                let ids = views[list].ids;
                let mut pos = pos + 1;
                let Some(&Reverse((top, _, _))) = heap.peek() else {
                    // Last list standing: the rest is a straight copy.
                    out.extend_from_slice(&ids[pos..]);
                    continue;
                };
                // Consume the run: everything in this list below the next
                // head elsewhere cannot be duplicated (every other cursor is
                // at `top` or beyond), so it copies without heap traffic —
                // near-linear when the lists are contiguous id ranges.
                while pos < ids.len() && ids[pos] < top {
                    out.push(ids[pos]);
                    pos += 1;
                }
                if pos < ids.len() {
                    heap.push(Reverse((ids[pos], list, pos)));
                }
            }
        }
    }
}

fn linear_union(a: &[FileId], b: &[FileId], out: &mut Vec<FileId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// A posting list that is borrowed when possible and owned only when a merge
/// had to materialise (the query layer's `Cow`, grown a compressed arm).
///
/// * `Borrowed` — a direct reference into an index: the zero-copy fast path
///   for exact-term lookups against a single shard.
/// * `Compressed` — a direct reference into a sealed shard's
///   block-compressed postings; evaluated through cursors, decoded only when
///   a result must materialise.
/// * `Shared` — an `Arc`-counted merge result, used by batch memos so that
///   every query of a batch reuses one materialised list.
/// * `Owned` — a freshly merged list nobody else holds yet.
#[derive(Debug, Clone)]
pub enum Postings<'a> {
    /// A borrow straight out of an index structure.
    Borrowed(&'a PostingList),
    /// A borrow of a sealed shard's block-compressed list.
    Compressed(&'a CompressedPostings),
    /// A merge result shared behind an `Arc` (cloning bumps the count).
    Shared(Arc<PostingList>),
    /// A merge result owned by the caller.
    Owned(PostingList),
}

impl<'a> Postings<'a> {
    /// An empty posting list that borrows a static empty instance (no
    /// allocation).
    #[must_use]
    pub fn empty() -> Postings<'static> {
        Postings::Borrowed(PostingList::empty_ref())
    }

    /// The union of any number of borrowed lists, staying borrowed for zero
    /// or one inputs and materialising a k-way merge otherwise.
    #[must_use]
    pub fn union_of(lists: Vec<&'a PostingList>) -> Postings<'a> {
        match lists.as_slice() {
            [] => Postings::empty(),
            [only] => Postings::Borrowed(only),
            _ => {
                let views: Vec<PostingView<'_>> = lists.iter().map(|list| list.as_view()).collect();
                let mut out = Vec::new();
                union_into(&views, &mut out);
                Postings::Owned(PostingList::from_sorted(out))
            }
        }
    }

    /// The union of any number of compressed lists, staying a zero-copy
    /// `Compressed` borrow for one input and streaming a k-way cursor merge
    /// otherwise (each block decoded exactly once).
    #[must_use]
    pub fn union_of_compressed(lists: Vec<&'a CompressedPostings>) -> Postings<'a> {
        match lists.as_slice() {
            [] => Postings::empty(),
            [only] => Postings::Compressed(only),
            _ => {
                let cursors: Vec<PostingsCursor<'_>> =
                    lists.iter().map(|cp| PostingsCursor::Block(cp.cursor())).collect();
                let mut out = Vec::new();
                union_cursors_into(cursors, &mut out);
                Postings::Owned(PostingList::from_sorted(out))
            }
        }
    }

    /// Borrows the underlying uncompressed list.
    ///
    /// # Panics
    ///
    /// Panics for the `Compressed` arm, which has no materialised id slice to
    /// borrow — evaluate through [`Postings::cursor`] or materialise with
    /// [`Postings::into_owned`] instead.
    #[must_use]
    pub fn list(&self) -> &PostingList {
        match self {
            Postings::Borrowed(list) => list,
            Postings::Shared(list) => list,
            Postings::Owned(list) => list,
            Postings::Compressed(_) => {
                panic!("compressed postings have no borrowed list; use cursor() or into_owned()")
            }
        }
    }

    /// A borrowed view of the ids (same restriction as [`Postings::list`]).
    ///
    /// # Panics
    ///
    /// Panics for the `Compressed` arm.
    #[must_use]
    pub fn view(&self) -> PostingView<'_> {
        self.list().as_view()
    }

    /// A borrowed view of the ids when an uncompressed slice exists, `None`
    /// for block-compressed postings.
    #[must_use]
    pub fn try_view(&self) -> Option<PostingView<'_>> {
        match self {
            Postings::Compressed(_) => None,
            other => Some(other.list().as_view()),
        }
    }

    /// A cursor over the ids, whatever the representation: the uniform way
    /// the query evaluator walks, seeks and intersects postings.
    #[must_use]
    pub fn cursor(&self) -> PostingsCursor<'_> {
        match self {
            Postings::Compressed(cp) => PostingsCursor::Block(cp.cursor()),
            other => PostingsCursor::Slice(SliceCursor::new(other.list().doc_ids())),
        }
    }

    /// Number of files in the list.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Postings::Compressed(cp) => cp.len(),
            other => other.list().len(),
        }
    }

    /// Returns `true` when the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes every id into `out` (cleared first): the single-term result
    /// path — a borrowed list copies, a compressed list decodes exactly once.
    pub fn copy_into(&self, out: &mut Vec<FileId>) {
        match self {
            Postings::Compressed(cp) => cp.decode_into(out),
            other => {
                out.clear();
                out.extend_from_slice(other.list().doc_ids());
            }
        }
    }

    /// Converts into an owned [`PostingList`], cloning (or decoding) only
    /// when the ids are not already exclusively owned.
    #[must_use]
    pub fn into_owned(self) -> PostingList {
        match self {
            Postings::Borrowed(list) => list.clone(),
            Postings::Compressed(cp) => cp.to_list(),
            Postings::Shared(list) => Arc::try_unwrap(list).unwrap_or_else(|arc| (*arc).clone()),
            Postings::Owned(list) => list,
        }
    }

    /// Converts the `Owned` variant into `Shared` so later clones bump an
    /// `Arc` instead of copying the ids; borrows (compressed or not) pass
    /// through untouched.
    #[must_use]
    pub fn into_shared(self) -> Postings<'a> {
        match self {
            Postings::Owned(list) => Postings::Shared(Arc::new(list)),
            other => other,
        }
    }
}

/// A [`PostingCursor`] over either representation a [`Postings`] can hold:
/// the query evaluator's set operations take these, so raw slices, memoized
/// merges and block-compressed lists all evaluate through one code path.
#[derive(Debug, Clone)]
pub enum PostingsCursor<'a> {
    /// Galloping cursor over an uncompressed sorted slice.
    Slice(SliceCursor<'a>),
    /// Skip-aware cursor over block-compressed postings.
    Block(BlockCursor<'a>),
}

impl PostingCursor for PostingsCursor<'_> {
    fn current(&self) -> Option<FileId> {
        match self {
            PostingsCursor::Slice(c) => c.current(),
            PostingsCursor::Block(c) => c.current(),
        }
    }

    fn advance(&mut self) {
        match self {
            PostingsCursor::Slice(c) => c.advance(),
            PostingsCursor::Block(c) => c.advance(),
        }
    }

    fn seek(&mut self, target: FileId) -> Option<FileId> {
        match self {
            PostingsCursor::Slice(c) => c.seek(target),
            PostingsCursor::Block(c) => c.seek(target),
        }
    }

    fn len(&self) -> usize {
        match self {
            PostingsCursor::Slice(c) => c.len(),
            PostingsCursor::Block(c) => c.len(),
        }
    }
}

/// Writes the intersection of two cursors into `out` (cleared first).
///
/// Two uncompressed cursors fall back to the tuned slice path (linear merge
/// or gallop); any pair involving a compressed side leapfrogs through
/// `seek`, so a skewed `AND` skips whole blocks of the longer list without
/// decoding them.
pub fn intersect_cursors_into(a: PostingsCursor<'_>, b: PostingsCursor<'_>, out: &mut Vec<FileId>) {
    match (a, b) {
        (PostingsCursor::Slice(a), PostingsCursor::Slice(b)) => {
            PostingView::new(a.remaining()).intersect_into(PostingView::new(b.remaining()), out);
        }
        (mut a, mut b) => {
            out.clear();
            leapfrog_intersect(&mut a, &mut b, out);
        }
    }
}

fn leapfrog_intersect<A: PostingCursor, B: PostingCursor>(
    a: &mut A,
    b: &mut B,
    out: &mut Vec<FileId>,
) {
    let (Some(mut x), Some(mut y)) = (a.current(), b.current()) else { return };
    loop {
        match x.cmp(&y) {
            std::cmp::Ordering::Equal => {
                out.push(x);
                a.advance();
                b.advance();
                match (a.current(), b.current()) {
                    (Some(nx), Some(ny)) => {
                        x = nx;
                        y = ny;
                    }
                    _ => return,
                }
            }
            std::cmp::Ordering::Less => match a.seek(y) {
                Some(nx) => x = nx,
                None => return,
            },
            std::cmp::Ordering::Greater => match b.seek(x) {
                Some(ny) => y = ny,
                None => return,
            },
        }
    }
}

/// Writes `a` minus `b` into `out` (cleared first): every id of `a` that does
/// not occur in `b`.  `b` is only ever `seek`-ed forward, so compressed
/// blocks of `b` that cannot contain ids of `a` are never decoded.
pub fn difference_cursors_into(
    a: PostingsCursor<'_>,
    b: PostingsCursor<'_>,
    out: &mut Vec<FileId>,
) {
    match (a, b) {
        (PostingsCursor::Slice(a), PostingsCursor::Slice(b)) => {
            PostingView::new(a.remaining()).difference_into(PostingView::new(b.remaining()), out);
        }
        (mut a, mut b) => {
            out.clear();
            while let Some(x) = a.current() {
                match b.seek(x) {
                    Some(y) if y == x => {}
                    _ => out.push(x),
                }
                a.advance();
            }
        }
    }
}

/// Writes the k-way union of `cursors` into `out` (cleared first).  All-slice
/// inputs reuse the run-consuming heap merge of [`union_into`]; any
/// compressed input streams through a cursor heap, decoding each block
/// exactly once.
pub fn union_cursors_into(cursors: Vec<PostingsCursor<'_>>, out: &mut Vec<FileId>) {
    out.clear();
    if cursors.iter().all(|c| matches!(c, PostingsCursor::Slice(_))) {
        let views: Vec<PostingView<'_>> = cursors
            .iter()
            .map(|c| match c {
                PostingsCursor::Slice(s) => PostingView::new(s.remaining()),
                PostingsCursor::Block(_) => unreachable!("all slices checked above"),
            })
            .collect();
        union_into(&views, out);
        return;
    }
    let mut cursors = cursors;
    let mut heap: BinaryHeap<Reverse<(FileId, usize)>> = BinaryHeap::with_capacity(cursors.len());
    for (i, cursor) in cursors.iter().enumerate() {
        if let Some(id) = cursor.current() {
            heap.push(Reverse((id, i)));
        }
    }
    while let Some(Reverse((id, i))) = heap.pop() {
        if out.last().copied() != Some(id) {
            out.push(id);
        }
        let cursor = &mut cursors[i];
        cursor.advance();
        if let Some(next) = cursor.current() {
            heap.push(Reverse((next, i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<FileId> {
        v.iter().map(|&i| FileId(i)).collect()
    }

    fn view_of(v: &[FileId]) -> PostingView<'_> {
        PostingView::new(v)
    }

    #[test]
    fn view_basics() {
        let backing = ids(&[1, 4, 9]);
        let view = view_of(&backing);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert!(view.contains(FileId(4)));
        assert!(!view.contains(FileId(5)));
        assert_eq!(view.iter().collect::<Vec<_>>(), backing);
        assert_eq!(view.doc_ids(), backing.as_slice());
        assert_eq!(view.to_list().doc_ids(), backing.as_slice());
        assert!(PostingView::default().is_empty());
    }

    #[test]
    fn intersect_into_balanced_and_skewed() {
        let a = ids(&[1, 2, 4, 8, 16]);
        let b: Vec<FileId> = (0..200).map(FileId).collect();
        let mut out = Vec::new();
        // Skewed: |b| / |a| >= GALLOP_RATIO, so this exercises the gallop.
        view_of(&a).intersect_into(view_of(&b), &mut out);
        assert_eq!(out, a);
        // Commuted order hits the same path.
        view_of(&b).intersect_into(view_of(&a), &mut out);
        assert_eq!(out, a);
        // Balanced: linear merge.
        let c = ids(&[2, 3, 4, 9]);
        view_of(&a).intersect_into(view_of(&c), &mut out);
        assert_eq!(out, ids(&[2, 4]));
        // Empty input clears the output buffer.
        view_of(&a).intersect_into(PostingView::default(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn gallop_finds_matches_at_probe_boundaries() {
        // Regression shape: the probe hit itself may be the match, so the
        // binary-search window must include it.
        let small = ids(&[3]);
        let large = ids(&[0, 1, 2, 3, 10, 20, 30, 40, 50, 60]);
        let mut out = Vec::new();
        gallop_intersect(&small, &large, &mut out);
        assert_eq!(out, ids(&[3]));
        // Match exactly at the end of the large list.
        let small = ids(&[60]);
        out.clear();
        gallop_intersect(&small, &large, &mut out);
        assert_eq!(out, ids(&[60]));
    }

    #[test]
    fn difference_into_subtracts() {
        let a = ids(&[1, 2, 3, 4]);
        let b = ids(&[2, 4, 6]);
        let mut out = Vec::new();
        view_of(&a).difference_into(view_of(&b), &mut out);
        assert_eq!(out, ids(&[1, 3]));
        view_of(&b).difference_into(view_of(&a), &mut out);
        assert_eq!(out, ids(&[6]));
        view_of(&a).difference_into(PostingView::default(), &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn union_into_all_arities() {
        let mut out = vec![FileId(99)];
        union_into(&[], &mut out);
        assert!(out.is_empty());

        let a = ids(&[1, 5]);
        union_into(&[view_of(&a)], &mut out);
        assert_eq!(out, a);

        let b = ids(&[2, 5, 7]);
        union_into(&[view_of(&a), view_of(&b)], &mut out);
        assert_eq!(out, ids(&[1, 2, 5, 7]));

        let c = ids(&[0, 7, 9]);
        union_into(&[view_of(&a), view_of(&b), view_of(&c)], &mut out);
        assert_eq!(out, ids(&[0, 1, 2, 5, 7, 9]));
    }

    #[test]
    fn postings_variants_share_one_api() {
        let owned = PostingList::from_ids(ids(&[1, 2, 3]));
        let borrowed = Postings::Borrowed(&owned);
        assert_eq!(borrowed.len(), 3);
        assert!(!borrowed.is_empty());
        assert_eq!(borrowed.view().doc_ids(), owned.doc_ids());
        assert_eq!(borrowed.clone().into_owned(), owned);

        let shared = Postings::Owned(owned.clone()).into_shared();
        assert!(matches!(shared, Postings::Shared(_)));
        let again = shared.clone();
        assert_eq!(again.into_owned(), owned);
        assert_eq!(shared.into_owned(), owned);
        // Borrowed postings pass through into_shared untouched.
        assert!(matches!(Postings::Borrowed(&owned).into_shared(), Postings::Borrowed(_)));

        assert!(Postings::empty().is_empty());
        assert_eq!(Postings::empty().len(), 0);
    }

    #[test]
    fn union_of_stays_borrowed_when_it_can() {
        let a = PostingList::from_ids(ids(&[1, 3]));
        let b = PostingList::from_ids(ids(&[2, 3]));
        assert!(matches!(Postings::union_of(vec![]), Postings::Borrowed(_)));
        assert!(matches!(Postings::union_of(vec![&a]), Postings::Borrowed(_)));
        let merged = Postings::union_of(vec![&a, &b]);
        assert!(matches!(merged, Postings::Owned(_)));
        assert_eq!(merged.into_owned().doc_ids(), ids(&[1, 2, 3]).as_slice());
    }

    proptest! {
        /// Galloping/linear intersection agrees with the naive owned
        /// implementation on arbitrary inputs, in both argument orders.
        #[test]
        fn intersect_matches_naive(a in proptest::collection::vec(0u32..500, 0..300),
                                   b in proptest::collection::vec(0u32..500, 0..40)) {
            let pa = PostingList::from_ids(a.iter().map(|&i| FileId(i)));
            let pb = PostingList::from_ids(b.iter().map(|&i| FileId(i)));
            let naive = pa.intersect(&pb);
            let mut out = Vec::new();
            pa.as_view().intersect_into(pb.as_view(), &mut out);
            prop_assert_eq!(out.as_slice(), naive.doc_ids());
            pb.as_view().intersect_into(pa.as_view(), &mut out);
            prop_assert_eq!(out.as_slice(), naive.doc_ids());
        }

        /// The k-way heap union agrees with folding `union_with` pairwise.
        #[test]
        fn kway_union_matches_pairwise_fold(
            lists in proptest::collection::vec(
                proptest::collection::vec(0u32..300, 0..60), 0..8)
        ) {
            let owned: Vec<PostingList> =
                lists.iter().map(|l| PostingList::from_ids(l.iter().map(|&i| FileId(i)))).collect();
            let mut folded = PostingList::new();
            for list in &owned {
                folded.union_with(list);
            }
            let views: Vec<PostingView<'_>> = owned.iter().map(PostingList::as_view).collect();
            let mut out = Vec::new();
            union_into(&views, &mut out);
            prop_assert_eq!(out.as_slice(), folded.doc_ids());
        }

        /// difference_into agrees with the naive owned difference.
        #[test]
        fn difference_matches_naive(a in proptest::collection::vec(0u32..300, 0..100),
                                    b in proptest::collection::vec(0u32..300, 0..100)) {
            let pa = PostingList::from_ids(a.iter().map(|&i| FileId(i)));
            let pb = PostingList::from_ids(b.iter().map(|&i| FileId(i)));
            let naive = pa.difference(&pb);
            let mut out = Vec::new();
            pa.as_view().difference_into(pb.as_view(), &mut out);
            prop_assert_eq!(out.as_slice(), naive.doc_ids());
        }
    }
}
