//! Build-pipeline metrics: publishing a [`CounterSnapshot`] from a
//! checkpointed build into a [`MetricsRegistry`].
//!
//! The build counters (items extracted, retried, dead-lettered; checkpoint
//! writes; lease reclaims) are accumulated lock-free inside
//! `dsearch_core::pipeline` while the build runs.  Serving processes that
//! also build — or a `!metrics`-style exposition after `dsearch build` —
//! publish them under the `dsearch_build_*` family with this adapter, so
//! one scrape shows query and build health side by side.

use dsearch_core::pipeline::CounterSnapshot;

use crate::metrics::MetricsRegistry;

/// Metric names of the build-counter family, in snapshot-field order.
pub const BUILD_METRICS: [&str; 5] = [
    "dsearch_build_items_ok",
    "dsearch_build_items_retried",
    "dsearch_build_items_dead",
    "dsearch_build_checkpoint_writes",
    "dsearch_build_lease_reclaims",
];

/// Adds a build's counter totals to the registry's `dsearch_build_*`
/// counters.  Counters are monotone: publishing two builds sums them, the
/// Prometheus convention for restart-free accumulation.
pub fn publish_build_counters(registry: &MetricsRegistry, snapshot: &CounterSnapshot) {
    let values = [
        snapshot.items_ok,
        snapshot.items_retried,
        snapshot.items_dead,
        snapshot.checkpoint_writes,
        snapshot.lease_reclaims,
    ];
    for (name, value) in BUILD_METRICS.iter().zip(values) {
        registry.counter(name).add(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_every_counter_under_the_build_family() {
        let registry = MetricsRegistry::new();
        let snapshot = CounterSnapshot {
            items_ok: 10,
            items_retried: 3,
            items_dead: 1,
            checkpoint_writes: 4,
            lease_reclaims: 2,
        };
        publish_build_counters(&registry, &snapshot);
        assert_eq!(registry.counter("dsearch_build_items_ok").value(), 10);
        assert_eq!(registry.counter("dsearch_build_items_retried").value(), 3);
        assert_eq!(registry.counter("dsearch_build_items_dead").value(), 1);
        assert_eq!(registry.counter("dsearch_build_checkpoint_writes").value(), 4);
        assert_eq!(registry.counter("dsearch_build_lease_reclaims").value(), 2);

        // A second build accumulates instead of resetting.
        publish_build_counters(&registry, &snapshot);
        assert_eq!(registry.counter("dsearch_build_items_ok").value(), 20);

        let text = registry.render_prometheus();
        for name in BUILD_METRICS {
            assert!(text.contains(name), "exposition missing {name}");
        }
    }
}
