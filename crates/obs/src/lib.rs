//! Observability substrate shared by every dsearch serving process.
//!
//! Three pieces, each usable on its own:
//!
//! * [`metrics`] — a process-wide registry of named counters, gauges and
//!   log₂-bucketed latency histograms.  Every mutation is a relaxed atomic
//!   operation: recording a sample on the query hot path takes no lock and
//!   allocates nothing.  The registry renders Prometheus-style text
//!   exposition (the `!metrics` command) and produces point-in-time
//!   [`MetricsSnapshot`]s that support window deltas.
//! * [`trace`] — a cheap per-query [`QueryTrace`]: a fixed-capacity stack of
//!   `(stage, duration)` spans (parse, queue_wait, batch_fill, …) threaded
//!   from admission through evaluation to serialization, plus per-shard
//!   timing blocks at the router so a scatter-gathered response can report
//!   where time went shard by shard.
//! * [`slowlog`] — a threshold-armed ring buffer of rendered traces (the
//!   `!trace on|off|<n>` / `!slow` commands).  The non-slow path costs one
//!   relaxed atomic load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use build::{publish_build_counters, BUILD_METRICS};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use slowlog::{SlowLog, DEFAULT_SLOW_CAPACITY};
pub use trace::{next_trace_id, parse_compact_stages, QueryTrace, ShardSpan, Span, Stage};
