//! Lock-free metrics: counters, gauges and log₂-bucketed histograms behind a
//! process-wide registry.
//!
//! Recording is always a handful of relaxed atomic operations — no mutex, no
//! allocation — so metrics can sit directly on the query hot path.  The only
//! mutex in this module guards *registration* (looking a metric up by name),
//! which callers do once at startup and keep the returned [`Arc`].
//!
//! Histograms bucket durations by the bit length of their nanosecond value:
//! bucket `b` (for `b ≥ 1`) covers `[2^(b-1), 2^b)` ns and bucket 0 holds
//! exact zeros.  A percentile read reports the bucket's upper bound clamped
//! to the largest observed sample, so a histogram-derived percentile `h`
//! relates to the exact percentile `e` as `e ≤ h ≤ 2e` — at most one bucket
//! of error, never an underestimate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dsearch_core::timing::LatencySummary;

/// Number of histogram buckets: one per possible bit length of a `u64`
/// nanosecond value, plus bucket 0 for exact zeros.
pub const BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (active connections, queue depth).
///
/// Decrements saturate at zero so a spurious extra decrement can never wrap
/// the gauge to `u64::MAX`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero.
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Sets the gauge to an absolute value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index of a nanosecond value: its bit length, clamped to the last
/// bucket.  Zero lands in bucket 0.
#[must_use]
pub fn bucket_index(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket in nanoseconds.
#[must_use]
pub fn bucket_upper(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b if b >= BUCKETS - 1 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A log₂-bucketed latency histogram on atomics.
///
/// Unlike the old mutex-guarded `LatencyRing`, concurrent recorders never
/// contend: `record` is three-or-four relaxed atomic RMW operations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&self, sample: Duration) {
        let ns = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        self.record_ns(ns);
    }

    /// Records one sample given directly in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a sum pegged at u64::MAX is obviously
        // broken in a report, a wrapped one silently lies.  The peg is
        // best-effort (checked after a plain `fetch_add`) so the hot path
        // never pays a compare-exchange loop; the overflow branch fires once
        // per ~584 years of accumulated nanoseconds.
        let before = self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if before.checked_add(ns).is_none() {
            self.sum_ns.store(u64::MAX, Ordering::Relaxed);
        }
        // `fetch_max` is a compare-exchange loop on most targets; after
        // warm-up almost no sample is a new maximum, so gate it on a load.
        if self.max_ns.load(Ordering::Relaxed) < ns {
            self.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    /// The `q`-th percentile (0–100) as a duration (bucket upper bound,
    /// clamped to the observed maximum).
    #[must_use]
    pub fn percentile(&self, q: f64) -> Duration {
        self.snapshot().percentile(q)
    }

    /// Standard percentile summary of everything recorded so far.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        self.snapshot().summary()
    }
}

/// A point-in-time copy of a [`Histogram`], supporting percentile reads and
/// window deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds (saturating).
    pub sum_ns: u64,
    /// Largest observed sample in nanoseconds.
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// The `q`-th percentile (0–100) by nearest rank over the buckets.  The
    /// reported value is the containing bucket's upper bound clamped to the
    /// observed maximum, so it never underestimates the exact percentile and
    /// overestimates it by at most 2×.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= rank {
                return Duration::from_nanos(bucket_upper(bucket).min(self.max_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// Standard percentile summary of the snapshot.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            samples: usize::try_from(self.count).unwrap_or(usize::MAX),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
            max: Duration::from_nanos(self.max_ns),
        }
    }

    /// The samples recorded between `earlier` and this snapshot.  The delta's
    /// `max_ns` is this snapshot's (the true window maximum is not
    /// recoverable from two cumulative states).
    #[must_use]
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            max_ns: self.max_ns,
        }
    }
}

/// One registered metric's identity: a name plus at most one label pair
/// (`{stage="parse"}`, `{shard="127.0.0.1:7471"}`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    label: Option<(String, String)>,
}

impl Key {
    fn sample_suffix(&self) -> String {
        match &self.label {
            None => String::new(),
            Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
        }
    }
}

/// A registry of named metrics.
///
/// Registration (`counter` / `gauge` / `histogram` / `labeled_histogram`) is
/// idempotent: asking for the same name twice returns the same underlying
/// metric, so independent subsystems can share families.  Registration takes
/// a mutex; the returned `Arc` is then used lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(Key, Arc<Counter>)>>,
    gauges: Mutex<Vec<(Key, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(Key, Arc<Histogram>)>>,
}

fn intern<T: Default>(table: &Mutex<Vec<(Key, Arc<T>)>>, key: Key) -> Arc<T> {
    let mut table = table.lock().expect("metrics registry poisoned");
    if let Some((_, existing)) = table.iter().find(|(k, _)| *k == key) {
        return Arc::clone(existing);
    }
    let created = Arc::new(T::default());
    table.push((key, Arc::clone(&created)));
    created
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or looks up) a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, Key { name: name.to_owned(), label: None })
    }

    /// Registers (or looks up) one member of a labeled counter family,
    /// e.g. `replica_opens_total{replica="127.0.0.1:7471"}`.
    #[must_use]
    pub fn labeled_counter(&self, name: &str, label: &str, value: &str) -> Arc<Counter> {
        intern(
            &self.counters,
            Key { name: name.to_owned(), label: Some((label.to_owned(), value.to_owned())) },
        )
    }

    /// Registers (or looks up) a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, Key { name: name.to_owned(), label: None })
    }

    /// Registers (or looks up) one member of a labeled gauge family,
    /// e.g. `replica_state{replica="127.0.0.1:7471"}`.
    #[must_use]
    pub fn labeled_gauge(&self, name: &str, label: &str, value: &str) -> Arc<Gauge> {
        intern(
            &self.gauges,
            Key { name: name.to_owned(), label: Some((label.to_owned(), value.to_owned())) },
        )
    }

    /// Registers (or looks up) an unlabeled histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, Key { name: name.to_owned(), label: None })
    }

    /// Registers (or looks up) one member of a labeled histogram family,
    /// e.g. `stage_latency_ns{stage="parse"}`.
    #[must_use]
    pub fn labeled_histogram(&self, name: &str, label: &str, value: &str) -> Arc<Histogram> {
        intern(
            &self.histograms,
            Key { name: name.to_owned(), label: Some((label.to_owned(), value.to_owned())) },
        )
    }

    /// Point-in-time snapshot of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, c)| (k.clone(), c.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, g)| (k.clone(), g.value()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }

    /// Renders Prometheus-style text exposition: one `# TYPE` line per metric
    /// family, then the samples.  Histograms emit cumulative `_bucket{le=…}`
    /// lines (non-empty buckets plus `+Inf`), `_sum` and `_count`.  All
    /// durations are integer nanoseconds, hence the `_ns` naming convention.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    counters: Vec<(Key, u64)>,
    gauges: Vec<(Key, u64)>,
    histograms: Vec<(Key, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a named counter (zero when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k.name == name && k.label.is_none())
            .map_or(0, |(_, v)| *v)
    }

    /// Value of a named gauge (zero when absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.iter().find(|(k, _)| k.name == name && k.label.is_none()).map_or(0, |(_, v)| *v)
    }

    /// Value of one member of a labeled counter family (zero when absent).
    #[must_use]
    pub fn labeled_counter(&self, name: &str, label: (&str, &str)) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| {
                k.name == name
                    && k.label.as_ref().map(|(lk, lv)| (lk.as_str(), lv.as_str())) == Some(label)
            })
            .map_or(0, |(_, v)| *v)
    }

    /// Value of one member of a labeled gauge family (zero when absent).
    #[must_use]
    pub fn labeled_gauge(&self, name: &str, label: (&str, &str)) -> u64 {
        self.gauges
            .iter()
            .find(|(k, _)| {
                k.name == name
                    && k.label.as_ref().map(|(lk, lv)| (lk.as_str(), lv.as_str())) == Some(label)
            })
            .map_or(0, |(_, v)| *v)
    }

    /// Snapshot of a named histogram, honouring an optional label pair.
    #[must_use]
    pub fn histogram(&self, name: &str, label: Option<(&str, &str)>) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| {
                k.name == name
                    && k.label.as_ref().map(|(lk, lv)| (lk.as_str(), lv.as_str())) == label
            })
            .map(|(_, h)| h)
    }

    /// The counter increments and histogram samples recorded between
    /// `earlier` and this snapshot.  Gauges keep their current value (a gauge
    /// delta is not meaningful).  Metrics absent from `earlier` are treated
    /// as having started at zero.
    #[must_use]
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let base = earlier.counters.iter().find(|(ek, _)| ek == k).map_or(0, |(_, ev)| *ev);
                (k.clone(), v.saturating_sub(base))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| match earlier.histograms.iter().find(|(ek, _)| ek == k) {
                Some((_, base)) => (k.clone(), h.delta_since(base)),
                None => (k.clone(), h.clone()),
            })
            .collect();
        MetricsSnapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Renders the snapshot as Prometheus-style text exposition.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counters: Vec<_> = self.counters.iter().collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut previous_family = None::<&str>;
        for (key, value) in counters {
            if previous_family != Some(key.name.as_str()) {
                out.push_str(&format!("# TYPE {} counter\n", key.name));
                previous_family = Some(key.name.as_str());
            }
            out.push_str(&format!("{}{} {}\n", key.name, key.sample_suffix(), value));
        }
        let mut gauges: Vec<_> = self.gauges.iter().collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut previous_family = None::<&str>;
        for (key, value) in gauges {
            if previous_family != Some(key.name.as_str()) {
                out.push_str(&format!("# TYPE {} gauge\n", key.name));
                previous_family = Some(key.name.as_str());
            }
            out.push_str(&format!("{}{} {}\n", key.name, key.sample_suffix(), value));
        }
        let mut histograms: Vec<_> = self.histograms.iter().collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut previous_family = None::<&str>;
        for (key, hist) in histograms {
            if previous_family != Some(key.name.as_str()) {
                out.push_str(&format!("# TYPE {} histogram\n", key.name));
                previous_family = Some(key.name.as_str());
            }
            let label_prefix = match &key.label {
                None => String::new(),
                Some((k, v)) => format!("{k}=\"{v}\","),
            };
            let mut cumulative = 0u64;
            for (bucket, &n) in hist.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative = cumulative.saturating_add(n);
                out.push_str(&format!(
                    "{}_bucket{{{}le=\"{}\"}} {}\n",
                    key.name,
                    label_prefix,
                    bucket_upper(bucket),
                    cumulative
                ));
            }
            out.push_str(&format!(
                "{}_bucket{{{}le=\"+Inf\"}} {}\n",
                key.name, label_prefix, hist.count
            ));
            out.push_str(&format!("{}_sum{} {}\n", key.name, key.sample_suffix(), hist.sum_ns));
            out.push_str(&format!("{}_count{} {}\n", key.name, key.sample_suffix(), hist.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("queries_total");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        // Idempotent registration: same underlying atomic.
        assert_eq!(registry.counter("queries_total").value(), 5);

        let g = registry.gauge("conns_active");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.value(), 1);
        g.dec();
        g.dec(); // saturates at zero instead of wrapping
        assert_eq!(g.value(), 0);
        g.set(7);
        assert_eq!(g.value(), 7);
    }

    #[test]
    fn bucket_bounds_cover_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(63), u64::MAX);
        // Every value falls inside its bucket's range.
        for ns in [0u64, 1, 2, 3, 7, 8, 1000, 123_456_789, u64::MAX] {
            let b = bucket_index(ns);
            assert!(ns <= bucket_upper(b), "{ns} above upper of bucket {b}");
            if b > 1 {
                assert!(ns > bucket_upper(b - 1), "{ns} not above bucket {}", b - 1);
            }
        }
    }

    #[test]
    fn histogram_percentiles_never_underestimate() {
        let h = Histogram::new();
        let samples: Vec<u64> = (1..=1000).map(|i| i * 137).collect();
        for &ns in &samples {
            h.record_ns(ns);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [50.0, 95.0, 99.0, 99.9] {
            let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
            let exact = sorted[rank - 1];
            let hist = h.percentile(q).as_nanos() as u64;
            assert!(hist >= exact, "p{q}: hist {hist} < exact {exact}");
            assert!(hist <= exact.saturating_mul(2), "p{q}: hist {hist} > 2x exact {exact}");
        }
        assert_eq!(h.summary().max, Duration::from_nanos(137_000));
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_percentile_clamps_to_observed_max() {
        let h = Histogram::new();
        h.record_ns(1_000); // bucket 10, upper bound 1023
        assert_eq!(h.percentile(99.0), Duration::from_nanos(1_000));
        let empty = Histogram::new();
        assert_eq!(empty.percentile(50.0), Duration::ZERO);
        assert_eq!(empty.summary(), LatencySummary::default());
    }

    #[test]
    fn snapshot_deltas_subtract_windows() {
        let h = Histogram::new();
        h.record_ns(10);
        h.record_ns(20);
        let first = h.snapshot();
        h.record_ns(1_000_000);
        let second = h.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.count, 1);
        assert_eq!(delta.sum_ns, 1_000_000);
        assert_eq!(delta.percentile(50.0), Duration::from_nanos(1_000_000));
    }

    #[test]
    fn registry_snapshot_reads_and_deltas() {
        let registry = MetricsRegistry::new();
        registry.counter("queries_total").add(10);
        registry.gauge("conns_active").set(3);
        registry.labeled_histogram("stage_ns", "stage", "parse").record_ns(500);
        let first = registry.snapshot();
        registry.counter("queries_total").add(5);
        registry.labeled_histogram("stage_ns", "stage", "parse").record_ns(700);
        let second = registry.snapshot();
        assert_eq!(second.counter("queries_total"), 15);
        assert_eq!(second.gauge("conns_active"), 3);
        let delta = second.delta_since(&first);
        assert_eq!(delta.counter("queries_total"), 5);
        assert_eq!(delta.histogram("stage_ns", Some(("stage", "parse"))).unwrap().count, 1);
        assert!(second.histogram("stage_ns", Some(("stage", "merge"))).is_none());
        assert!(second.histogram("stage_ns", None).is_none());
        assert_eq!(second.counter("missing"), 0);
    }

    #[test]
    fn labeled_counters_and_gauges_intern_per_label_value() {
        let registry = MetricsRegistry::new();
        registry.labeled_counter("replica_opens_total", "replica", "a").add(2);
        registry.labeled_counter("replica_opens_total", "replica", "b").inc();
        registry.labeled_gauge("replica_state", "replica", "a").set(2);
        registry.labeled_gauge("replica_state", "replica", "b").set(0);
        // Idempotent per (name, label value); distinct values are distinct.
        assert_eq!(registry.labeled_counter("replica_opens_total", "replica", "a").value(), 2);
        assert_eq!(registry.labeled_counter("replica_opens_total", "replica", "b").value(), 1);
        // The unlabeled member is a different metric entirely.
        assert_eq!(registry.counter("replica_opens_total").value(), 0);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.labeled_counter("replica_opens_total", ("replica", "a")), 2);
        assert_eq!(snapshot.labeled_gauge("replica_state", ("replica", "a")), 2);
        assert_eq!(snapshot.labeled_gauge("replica_state", ("replica", "missing")), 0);
        let text = registry.render_prometheus();
        assert!(text.contains("replica_opens_total{replica=\"a\"} 2\n"), "{text}");
        assert!(text.contains("replica_state{replica=\"b\"} 0\n"), "{text}");
        assert_eq!(text.matches("# TYPE replica_state gauge").count(), 1);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let registry = MetricsRegistry::new();
        registry.counter("queries_total").add(42);
        registry.gauge("conns_active").set(2);
        registry.labeled_histogram("stage_ns", "stage", "parse").record_ns(900);
        registry.labeled_histogram("stage_ns", "stage", "merge").record_ns(100);
        registry.histogram("query_ns").record_ns(5_000);
        let text = registry.render_prometheus();

        assert!(text.contains("# TYPE queries_total counter\n"));
        assert!(text.contains("queries_total 42\n"));
        assert!(text.contains("# TYPE conns_active gauge\n"));
        assert!(text.contains("conns_active 2\n"));
        // One TYPE line per family, even with two labeled members.
        assert_eq!(text.matches("# TYPE stage_ns histogram").count(), 1);
        assert!(text.contains("stage_ns_bucket{stage=\"parse\",le=\"1023\"} 1\n"));
        assert!(text.contains("stage_ns_bucket{stage=\"parse\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("stage_ns_sum{stage=\"parse\"} 900\n"));
        assert!(text.contains("stage_ns_count{stage=\"merge\"} 1\n"));
        assert!(text.contains("query_ns_bucket{le=\"8191\"} 1\n"));
        assert!(text.contains("query_ns_count 1\n"));
        // Every non-comment line is `name[{labels}] <integer>`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            value.parse::<u64>().unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        }
    }
}
