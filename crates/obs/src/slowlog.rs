//! The slow-query log behind `!trace` / `!slow`.
//!
//! A [`SlowLog`] holds a threshold and a bounded ring of rendered trace
//! reports.  Checking whether a finished query is slow costs one relaxed
//! atomic load — the mutex-guarded ring is only touched for queries that
//! actually exceed the threshold (and for `!slow` dumps).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Default ring capacity: the last 32 slow queries.
pub const DEFAULT_SLOW_CAPACITY: usize = 32;

/// Sentinel meaning "tracing disarmed".
const OFF: u64 = u64::MAX;

/// A threshold-armed ring buffer of slow-query reports.
#[derive(Debug)]
pub struct SlowLog {
    threshold_ns: AtomicU64,
    entries: Mutex<VecDeque<String>>,
    capacity: usize,
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::new(DEFAULT_SLOW_CAPACITY)
    }
}

impl SlowLog {
    /// Creates a disarmed log keeping the last `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            threshold_ns: AtomicU64::new(OFF),
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Arms the log: queries taking at least `threshold` get recorded.
    /// `Duration::ZERO` records every query (`!trace on`).
    pub fn arm(&self, threshold: Duration) {
        let ns = u64::try_from(threshold.as_nanos()).unwrap_or(OFF - 1).min(OFF - 1);
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Disarms the log (`!trace off`).  Existing entries are kept.
    pub fn disarm(&self) {
        self.threshold_ns.store(OFF, Ordering::Relaxed);
    }

    /// The current threshold, or `None` when disarmed.
    #[must_use]
    pub fn threshold(&self) -> Option<Duration> {
        match self.threshold_ns.load(Ordering::Relaxed) {
            OFF => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Whether a query of this total duration should be logged.  This is the
    /// hot-path check: one atomic load, no lock.
    #[must_use]
    pub fn should_log(&self, total: Duration) -> bool {
        let threshold = self.threshold_ns.load(Ordering::Relaxed);
        threshold != OFF && u64::try_from(total.as_nanos()).unwrap_or(u64::MAX) >= threshold
    }

    /// Logs a pre-rendered report line, evicting the oldest entry when full.
    pub fn push(&self, entry: String) {
        let mut entries = self.entries.lock().expect("slow log poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// Renders and logs a report only if `total` exceeds the threshold; the
    /// render closure runs only on the slow path.
    pub fn observe(&self, total: Duration, render: impl FnOnce() -> String) {
        if self.should_log(total) {
            self.push(render());
        }
    }

    /// Copies out the retained entries, oldest first (`!slow`).
    #[must_use]
    pub fn dump(&self) -> Vec<String> {
        self.entries.lock().expect("slow log poisoned").iter().cloned().collect()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow log poisoned").len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_log_records_nothing() {
        let log = SlowLog::new(4);
        assert_eq!(log.threshold(), None);
        assert!(!log.should_log(Duration::from_secs(100)));
        log.observe(Duration::from_secs(100), || unreachable!("render on cold path"));
        assert!(log.is_empty());
    }

    #[test]
    fn armed_log_applies_the_threshold() {
        let log = SlowLog::new(4);
        log.arm(Duration::from_micros(100));
        assert_eq!(log.threshold(), Some(Duration::from_micros(100)));
        assert!(!log.should_log(Duration::from_micros(99)));
        assert!(log.should_log(Duration::from_micros(100)));
        log.observe(Duration::from_micros(50), || unreachable!("below threshold"));
        log.observe(Duration::from_micros(150), || "slow one".to_string());
        assert_eq!(log.dump(), vec!["slow one"]);
        // Zero threshold records everything (`!trace on`).
        log.arm(Duration::ZERO);
        assert!(log.should_log(Duration::ZERO));
        // Disarming keeps the history for later `!slow` inspection.
        log.disarm();
        assert!(!log.should_log(Duration::from_secs(1)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let log = SlowLog::new(3);
        log.arm(Duration::ZERO);
        for i in 0..5 {
            log.push(format!("q{i}"));
        }
        assert_eq!(log.dump(), vec!["q2", "q3", "q4"]);
    }
}
