//! Per-query stage tracing.
//!
//! A [`QueryTrace`] is a fixed-capacity stack of `(stage, duration)` spans —
//! no allocation on the serving hot path — built up as a query moves through
//! admission, batching, evaluation and serialization.  At the router it
//! additionally carries one [`ShardSpan`] per backend so a scatter-gathered
//! response can attribute its latency shard by shard.
//!
//! Traces cross the wire in a compact text form (`parse:412;postings:9800`,
//! integer nanoseconds) carried in the line protocol's `stages=` field, and
//! queries fan out to remote shards under a `@<hex id>` prefix so the two
//! sides of a distributed trace can be joined.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Maximum number of top-level spans a trace holds; later records are
/// silently dropped (every current pipeline records at most 8).
pub const MAX_SPANS: usize = 12;

/// A pipeline stage a query passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Query-string parsing (and canonicalisation).
    Parse,
    /// Time between submission to the admission queue and a worker draining
    /// the job.
    QueueWait,
    /// Time a drained batch lingered waiting for more jobs to arrive.
    BatchFill,
    /// Acquiring the index snapshot for the batch.
    SnapshotLoad,
    /// Posting-list lookups (term and prefix resolution, decode).
    Postings,
    /// Set operations over the postings: intersect, union, difference,
    /// ranking.
    IntersectMerge,
    /// Rendering the response text.
    Serialize,
    /// Router only: fanning a query out to every shard and gathering the
    /// replies (wall time of the whole scatter, shard RTTs run inside it).
    Scatter,
    /// Router only: one shard's request round trip (labelled per shard in a
    /// [`ShardSpan`]).
    ShardRtt,
    /// Router only: k-way merge of the per-shard rankings.
    Merge,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::Parse,
        Stage::QueueWait,
        Stage::BatchFill,
        Stage::SnapshotLoad,
        Stage::Postings,
        Stage::IntersectMerge,
        Stage::Serialize,
        Stage::Scatter,
        Stage::ShardRtt,
        Stage::Merge,
    ];

    /// The stage's wire / metrics name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::BatchFill => "batch_fill",
            Stage::SnapshotLoad => "snapshot_load",
            Stage::Postings => "postings",
            Stage::IntersectMerge => "intersect_merge",
            Stage::Serialize => "serialize",
            Stage::Scatter => "scatter",
            Stage::ShardRtt => "shard_rtt",
            Stage::Merge => "merge",
        }
    }

    /// Parses a wire name back to a stage.
    #[must_use]
    pub fn parse(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.as_str() == name)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timed stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which stage.
    pub stage: Stage,
    /// How long it took.
    pub dur: Duration,
}

/// One shard's contribution to a routed query: its round-trip time and the
/// stage breakdown the shard reported about itself.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardSpan {
    /// Shard identifier (its address for remote shards).
    pub shard: String,
    /// Round trip as observed from the router.
    pub rtt: Duration,
    /// The shard's own stage spans (empty when the shard predates tracing).
    pub stages: Vec<Span>,
}

/// A query's timing record.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    id: u64,
    spans: [Option<Span>; MAX_SPANS],
    len: usize,
    shards: Vec<ShardSpan>,
}

impl QueryTrace {
    /// Creates an empty trace with the given id (see [`next_trace_id`]).
    #[must_use]
    pub fn new(id: u64) -> Self {
        QueryTrace { id, ..QueryTrace::default() }
    }

    /// The trace id (zero when the query was never assigned one).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Re-brands the trace with a different id (used when one batch's shared
    /// timing record is fanned out to per-query traced responses).
    pub fn set_id(&mut self, id: u64) {
        self.id = id;
    }

    /// Records a stage duration.  Recording a stage twice accumulates into
    /// the existing span; once the (generous) span capacity is exhausted,
    /// further new stages are dropped rather than reallocating.  Zero
    /// durations are dropped outright: a stage that did no work attributes
    /// nothing, and recording it would only pollute the stage histograms
    /// (e.g. `postings` on a cache hit) with meaningless zeros.
    pub fn record(&mut self, stage: Stage, dur: Duration) {
        if dur.is_zero() {
            return;
        }
        for span in self.spans.iter_mut().take(self.len).flatten() {
            if span.stage == stage {
                span.dur = span.dur.saturating_add(dur);
                return;
            }
        }
        if self.len < MAX_SPANS {
            self.spans[self.len] = Some(Span { stage, dur });
            self.len += 1;
        }
    }

    /// The recorded top-level spans, in recording order.
    pub fn spans(&self) -> impl Iterator<Item = Span> + '_ {
        self.spans.iter().take(self.len).flatten().copied()
    }

    /// Duration of one stage, if recorded.
    #[must_use]
    pub fn get(&self, stage: Stage) -> Option<Duration> {
        self.spans().find(|s| s.stage == stage).map(|s| s.dur)
    }

    /// Sum of all top-level spans — the portion of a query's wall time the
    /// trace can attribute to named stages.  Shard spans are excluded: their
    /// RTTs run concurrently inside the scatter span.
    #[must_use]
    pub fn attributed(&self) -> Duration {
        self.spans().fold(Duration::ZERO, |acc, s| acc.saturating_add(s.dur))
    }

    /// Attaches one shard's timing block (router only).
    pub fn push_shard(&mut self, shard: ShardSpan) {
        self.shards.push(shard);
    }

    /// The per-shard timing blocks.
    #[must_use]
    pub fn shards(&self) -> &[ShardSpan] {
        &self.shards
    }

    /// Renders the top-level spans in the compact wire form:
    /// `parse:412;queue_wait:1200` (integer nanoseconds, no spaces, so the
    /// whole breakdown fits in one `stages=` status-line field).
    #[must_use]
    pub fn render_compact(&self) -> String {
        render_spans_compact(self.spans())
    }
}

/// Renders spans in the compact `stage:ns;stage:ns` wire form.
#[must_use]
pub fn render_spans_compact(spans: impl IntoIterator<Item = Span>) -> String {
    let mut out = String::new();
    for span in spans {
        if !out.is_empty() {
            out.push(';');
        }
        out.push_str(span.stage.as_str());
        out.push(':');
        out.push_str(&u64::try_from(span.dur.as_nanos()).unwrap_or(u64::MAX).to_string());
    }
    out
}

/// Parses the compact `stage:ns;stage:ns` form back into spans.  Unknown
/// stage names and malformed segments are skipped, so the format can grow
/// stages without breaking old readers.
#[must_use]
pub fn parse_compact_stages(text: &str) -> Vec<Span> {
    text.split(';')
        .filter_map(|segment| {
            let (name, ns) = segment.split_once(':')?;
            Some(Span { stage: Stage::parse(name)?, dur: Duration::from_nanos(ns.parse().ok()?) })
        })
        .collect()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Produces a fresh process-unique trace id: a counter mixed through
/// splitmix64 and seeded from the clock and pid, so ids from different
/// router processes are unlikely to collide in shared logs.  Never zero
/// (zero means "untraced").
#[must_use]
pub fn next_trace_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        splitmix64(clock ^ (u64::from(std::process::id()) << 32))
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    splitmix64(seed.wrapping_add(n)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_round_trip_their_names() {
        for stage in Stage::ALL {
            assert_eq!(Stage::parse(stage.as_str()), Some(stage));
            assert_eq!(stage.to_string(), stage.as_str());
        }
        assert_eq!(Stage::parse("bogus"), None);
    }

    #[test]
    fn traces_record_accumulate_and_attribute() {
        let mut trace = QueryTrace::new(7);
        assert_eq!(trace.id(), 7);
        trace.record(Stage::Parse, Duration::from_nanos(400));
        trace.record(Stage::Postings, Duration::from_nanos(1_000));
        trace.record(Stage::Postings, Duration::from_nanos(500)); // accumulates
        assert_eq!(trace.get(Stage::Postings), Some(Duration::from_nanos(1_500)));
        assert_eq!(trace.get(Stage::Merge), None);
        assert_eq!(trace.attributed(), Duration::from_nanos(1_900));
        let stages: Vec<Stage> = trace.spans().map(|s| s.stage).collect();
        assert_eq!(stages, vec![Stage::Parse, Stage::Postings]);
    }

    #[test]
    fn full_traces_drop_new_stages_without_panicking() {
        let mut trace = QueryTrace::default();
        for i in 0..(MAX_SPANS * 2) {
            let stage = Stage::ALL[i % Stage::ALL.len()];
            trace.record(stage, Duration::from_nanos(1));
        }
        assert!(trace.spans().count() <= MAX_SPANS);
    }

    #[test]
    fn compact_form_round_trips() {
        let mut trace = QueryTrace::new(1);
        trace.record(Stage::Parse, Duration::from_nanos(412));
        trace.record(Stage::QueueWait, Duration::from_nanos(1_200));
        let text = trace.render_compact();
        assert_eq!(text, "parse:412;queue_wait:1200");
        let spans = parse_compact_stages(&text);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], Span { stage: Stage::Parse, dur: Duration::from_nanos(412) });
        assert_eq!(spans[1], Span { stage: Stage::QueueWait, dur: Duration::from_nanos(1_200) });
        // Unknown stages and garbage segments are skipped, not fatal.
        let lenient = parse_compact_stages("parse:10;warp_drive:5;;nonsense;merge:abc");
        assert_eq!(lenient.len(), 1);
        assert_eq!(lenient[0].stage, Stage::Parse);
        assert!(parse_compact_stages("").is_empty());
    }

    #[test]
    fn shard_spans_attach_and_stay_out_of_attribution() {
        let mut trace = QueryTrace::new(2);
        trace.record(Stage::Scatter, Duration::from_micros(10));
        trace.push_shard(ShardSpan {
            shard: "127.0.0.1:7471".into(),
            rtt: Duration::from_micros(9),
            stages: vec![Span { stage: Stage::Postings, dur: Duration::from_micros(4) }],
        });
        assert_eq!(trace.shards().len(), 1);
        assert_eq!(trace.attributed(), Duration::from_micros(10));
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id}");
        }
    }
}
