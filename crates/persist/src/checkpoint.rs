//! Build checkpoints and the dead-letter queue — the on-disk state that makes
//! an index build crash-safe and resumable.
//!
//! Two JSON files live next to the segments inside an index-store directory:
//!
//! * `checkpoint.json` ([`BuildCheckpoint`]) — the durable progress record of
//!   a pipeline build: which files have been extracted and sealed into which
//!   partial segments, plus a fingerprint of the corpus the build ran over.
//!   It is written atomically (write-then-rename) and only *after* the
//!   segment it references is safely on disk, so at every instant the
//!   checkpoint describes data that actually exists.  A crash between a
//!   segment commit and the checkpoint write leaves an orphan segment in the
//!   manifest; [`BuildCheckpoint::reconcile`] detects and drops it on resume.
//! * `dlq.json` ([`DeadLetterQueue`]) — files that repeatedly failed
//!   extraction (or failed permanently) are quarantined here with their final
//!   error instead of poisoning the build.  `dsearch dlq list` inspects the
//!   queue; `dsearch dlq replay` re-runs the quarantined items.
//!
//! Both formats are versioned independently of the segment format; segments
//! referenced by a checkpoint are ordinary v2 segments readable by every
//! existing load path.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::error::PersistError;
use crate::store::IndexStore;

/// File name of the build checkpoint inside a store directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// File name of the dead-letter queue inside a store directory.
pub const DLQ_FILE: &str = "dlq.json";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Atomically writes `json` to `dir/name` via a temp file and rename, so a
/// crash mid-write can never leave a truncated file behind.
fn write_atomic(dir: &Path, name: &str, json: &str) -> Result<(), PersistError> {
    let tmp = dir.join(format!("{name}.tmp"));
    fs::write(&tmp, json)?;
    fs::rename(&tmp, dir.join(name))?;
    Ok(())
}

/// The durable progress record of a checkpointed index build.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildCheckpoint {
    /// Checkpoint format version.
    pub version: u32,
    /// FNV fingerprint of the corpus file list (paths + sizes) the build ran
    /// over; a resume against a changed corpus is refused.
    pub corpus_fingerprint: u64,
    /// File ids (Stage 1 walk order is deterministic, so ids are stable
    /// across runs) whose terms are sealed in one of [`Self::segments`].
    pub completed: Vec<u32>,
    /// Segment file names owned by this build, in seal order.
    pub segments: Vec<String>,
    /// `true` once every work item has been extracted or dead-lettered.
    pub complete: bool,
}

impl BuildCheckpoint {
    /// Creates an empty checkpoint for a fresh build over a corpus with the
    /// given fingerprint.
    #[must_use]
    pub fn new(corpus_fingerprint: u64) -> Self {
        BuildCheckpoint {
            version: CHECKPOINT_VERSION,
            corpus_fingerprint,
            completed: Vec::new(),
            segments: Vec::new(),
            complete: false,
        }
    }

    /// Loads the checkpoint from a store directory, or `None` when no build
    /// has checkpointed there.
    ///
    /// # Errors
    ///
    /// Fails when the file exists but is unreadable, corrupt, or of an
    /// unsupported version.
    pub fn load(store_root: &Path) -> Result<Option<Self>, PersistError> {
        let path = store_root.join(CHECKPOINT_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let json = fs::read_to_string(&path)?;
        let checkpoint: BuildCheckpoint = serde_json::from_str(&json)
            .map_err(|e| PersistError::Corrupt(format!("checkpoint: {e}")))?;
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: checkpoint.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        Ok(Some(checkpoint))
    }

    /// Atomically writes the checkpoint into a store directory.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be written.
    pub fn save(&self, store_root: &Path) -> Result<(), PersistError> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| PersistError::Corrupt(format!("checkpoint serialisation: {e}")))?;
        write_atomic(store_root, CHECKPOINT_FILE, &json)
    }

    /// Removes the checkpoint file (start of a fresh build).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors other than the file already being absent.
    pub fn remove(store_root: &Path) -> Result<(), PersistError> {
        match fs::remove_file(store_root.join(CHECKPOINT_FILE)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Reconciles the store manifest with this checkpoint: any segment the
    /// manifest lists but the checkpoint does not is an orphan from a crash
    /// between a segment commit and the checkpoint write — its items were
    /// never marked completed, so the segment is dropped (and its items will
    /// be re-extracted).  Returns the number of orphans removed.
    ///
    /// # Errors
    ///
    /// Fails when the checkpoint references a segment the manifest lost
    /// (store corruption) or the pruned manifest cannot be written.
    pub fn reconcile(&self, store: &mut IndexStore) -> Result<usize, PersistError> {
        let live: Vec<String> =
            store.manifest().segments.iter().map(|s| s.file_name.clone()).collect();
        for name in &self.segments {
            if !live.iter().any(|l| l == name) {
                return Err(PersistError::Corrupt(format!(
                    "checkpoint references segment {name} missing from the store manifest"
                )));
            }
        }
        let orphans = live.len() - self.segments.len();
        if orphans > 0 {
            store.retain_segments(|name| self.segments.iter().any(|s| s == name))?;
        }
        Ok(orphans)
    }
}

/// One quarantined work item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadLetter {
    /// Path of the file that failed, relative to the indexed root.
    pub path: String,
    /// File id the failed item had in the build that quarantined it.
    pub file_id: u32,
    /// Extraction attempts made before giving up.
    pub attempts: u32,
    /// The final error, rendered.
    pub error: String,
}

/// The on-disk dead-letter queue of a store.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadLetterQueue {
    /// Quarantined items, in the order they died.
    pub entries: Vec<DeadLetter>,
}

impl DeadLetterQueue {
    /// Loads the DLQ from a store directory (empty when absent).
    ///
    /// # Errors
    ///
    /// Fails when the file exists but is unreadable or corrupt.
    pub fn load(store_root: &Path) -> Result<Self, PersistError> {
        let path = store_root.join(DLQ_FILE);
        if !path.exists() {
            return Ok(DeadLetterQueue::default());
        }
        let json = fs::read_to_string(&path)?;
        serde_json::from_str(&json).map_err(|e| PersistError::Corrupt(format!("dlq: {e}")))
    }

    /// Atomically writes the DLQ into a store directory.  An empty queue
    /// removes the file instead of leaving an empty husk behind.
    ///
    /// # Errors
    ///
    /// Fails when the file cannot be written or removed.
    pub fn save(&self, store_root: &Path) -> Result<(), PersistError> {
        if self.entries.is_empty() {
            match fs::remove_file(store_root.join(DLQ_FILE)) {
                Ok(()) => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| PersistError::Corrupt(format!("dlq serialisation: {e}")))?;
        write_atomic(store_root, DLQ_FILE, &json)
    }

    /// Number of quarantined items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when `path` is quarantined.
    #[must_use]
    pub fn contains(&self, path: &str) -> bool {
        self.entries.iter().any(|e| e.path == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_index::{DocTable, FileId, InMemoryIndex};
    use dsearch_text::Term;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let mut path = std::env::temp_dir();
            let unique = format!(
                "dsearch-ckpt-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            );
            path.push(unique.replace(['(', ')', ' '], ""));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_index() -> (InMemoryIndex, DocTable) {
        let mut docs = DocTable::new();
        let id = docs.insert("a.txt");
        let mut index = InMemoryIndex::new();
        index.insert_file(id, [Term::from("alpha")]);
        let _ = FileId(0);
        (index, docs)
    }

    #[test]
    fn checkpoint_round_trips_and_is_absent_initially() {
        let dir = TempDir::new("roundtrip");
        assert_eq!(BuildCheckpoint::load(&dir.0).unwrap(), None);

        let mut ckpt = BuildCheckpoint::new(0xfeed);
        ckpt.completed = vec![0, 2, 5];
        ckpt.segments = vec!["segment-000001.dsg".into()];
        ckpt.save(&dir.0).unwrap();

        let loaded = BuildCheckpoint::load(&dir.0).unwrap().unwrap();
        assert_eq!(loaded, ckpt);
        assert!(!loaded.complete);

        BuildCheckpoint::remove(&dir.0).unwrap();
        assert_eq!(BuildCheckpoint::load(&dir.0).unwrap(), None);
        // Removing twice is fine.
        BuildCheckpoint::remove(&dir.0).unwrap();
    }

    #[test]
    fn corrupt_and_versioned_checkpoints_are_rejected() {
        let dir = TempDir::new("corrupt");
        fs::write(dir.0.join(CHECKPOINT_FILE), "{ nope").unwrap();
        assert!(matches!(BuildCheckpoint::load(&dir.0), Err(PersistError::Corrupt(_))));

        let bad = BuildCheckpoint { version: 99, ..BuildCheckpoint::new(1) };
        fs::write(dir.0.join(CHECKPOINT_FILE), serde_json::to_string(&bad).unwrap()).unwrap();
        assert!(matches!(
            BuildCheckpoint::load(&dir.0),
            Err(PersistError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn dlq_round_trips_and_empty_save_removes_the_file() {
        let dir = TempDir::new("dlq");
        assert!(DeadLetterQueue::load(&dir.0).unwrap().is_empty());

        let dlq = DeadLetterQueue {
            entries: vec![DeadLetter {
                path: "bad.txt".into(),
                file_id: 7,
                attempts: 4,
                error: "i/o error: boom".into(),
            }],
        };
        dlq.save(&dir.0).unwrap();
        let loaded = DeadLetterQueue::load(&dir.0).unwrap();
        assert_eq!(loaded, dlq);
        assert_eq!(loaded.len(), 1);
        assert!(loaded.contains("bad.txt"));
        assert!(!loaded.contains("good.txt"));

        DeadLetterQueue::default().save(&dir.0).unwrap();
        assert!(!dir.0.join(DLQ_FILE).exists());
        // Saving empty twice is fine.
        DeadLetterQueue::default().save(&dir.0).unwrap();
    }

    #[test]
    fn reconcile_drops_orphan_segments_and_detects_missing_ones() {
        let dir = TempDir::new("reconcile");
        let mut store = IndexStore::open(dir.0.join("s")).unwrap();
        let (index, docs) = sample_index();
        let (first, _) = store.commit_named(&index, &docs).unwrap();
        // Simulate a crash after a second commit but before the checkpoint
        // write: the manifest has an orphan the checkpoint never recorded.
        let (_orphan, _) = store.commit_named(&index, &docs).unwrap();
        assert_eq!(store.segment_count(), 2);

        let mut ckpt = BuildCheckpoint::new(1);
        ckpt.segments = vec![first.clone()];
        assert_eq!(ckpt.reconcile(&mut store).unwrap(), 1);
        assert_eq!(store.segment_count(), 1);
        assert_eq!(store.manifest().segments[0].file_name, first);

        // A checkpoint referencing a segment the manifest lost is corruption.
        ckpt.segments = vec!["segment-999999.dsg".into()];
        assert!(matches!(ckpt.reconcile(&mut store), Err(PersistError::Corrupt(_))));
    }
}
