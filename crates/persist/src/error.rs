//! Error type for persistence operations.

use std::fmt;

/// Errors produced while reading or writing persisted index data.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The data on disk is not a valid segment / manifest / signature file.
    Corrupt(String),
    /// The data was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// A failure reported by the virtual file system during incremental
    /// re-indexing.
    Vfs(dsearch_vfs::VfsError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt persisted data: {msg}"),
            PersistError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported format version {found} (expected {expected})")
            }
            PersistError::Vfs(e) => write!(f, "file system error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Vfs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<dsearch_vfs::VfsError> for PersistError {
    fn from(e: dsearch_vfs::VfsError) -> Self {
        PersistError::Vfs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_covers_all_variants() {
        let io = PersistError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(io.source().is_some());

        let corrupt = PersistError::Corrupt("bad magic".into());
        assert!(corrupt.to_string().contains("bad magic"));
        assert!(corrupt.source().is_none());

        let version = PersistError::UnsupportedVersion { found: 9, expected: 1 };
        assert!(version.to_string().contains('9'));

        let vfs = PersistError::from(dsearch_vfs::VfsError::NotFound(dsearch_vfs::VPath::new("x")));
        assert!(vfs.to_string().contains("file system"));
        assert!(vfs.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PersistError>();
    }
}
