//! Incremental re-indexing.
//!
//! A desktop index is rebuilt many times over its life, but between two runs
//! only a small fraction of the files change.  The incremental indexer keeps
//! a per-file signature (size + FNV-1a content hash) from the previous run,
//! walks the tree again, and classifies every file as *added*, *modified*,
//! *removed* or *unchanged*.  Only added and modified files are re-scanned;
//! removed and modified files have their old postings deleted first.
//!
//! Stage 1 (the directory walk) still visits every file — the paper measured
//! that at 2–5 % of the runtime, so re-walking is cheap — but Stage 2 (term
//! extraction, the dominant cost) now runs only on the changed subset.

use serde::{Deserialize, Serialize};

use dsearch_index::{DocTable, InMemoryIndex};
use dsearch_text::fnv::fnv1a_64;
use dsearch_text::tokenizer::Tokenizer;
use dsearch_text::wordlist::WordListBuilder;
use dsearch_text::FnvHashMap;
use dsearch_vfs::{FileSystem, VPath, Walker};

use crate::error::PersistError;

/// The signature used to decide whether a file changed between runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FileSignature {
    /// File size in bytes.
    pub size: u64,
    /// FNV-1a hash of the full contents.
    pub content_hash: u64,
}

impl FileSignature {
    /// Computes the signature of a byte buffer.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        FileSignature { size: bytes.len() as u64, content_hash: fnv1a_64(bytes) }
    }
}

/// The persisted map from file path to its last-indexed signature.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SignatureDb {
    entries: std::collections::BTreeMap<String, FileSignature>,
}

impl SignatureDb {
    /// Creates an empty signature database (first run).
    #[must_use]
    pub fn new() -> Self {
        SignatureDb::default()
    }

    /// Number of files tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no file has ever been indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded signature of `path`, if the file was indexed before.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<FileSignature> {
        self.entries.get(path).copied()
    }

    /// Records (or replaces) the signature of `path`.
    pub fn record(&mut self, path: impl Into<String>, signature: FileSignature) {
        self.entries.insert(path.into(), signature);
    }

    /// Forgets `path`; returns `true` when it was tracked.
    pub fn forget(&mut self, path: &str) -> bool {
        self.entries.remove(path).is_some()
    }

    /// Iterates over `(path, signature)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, FileSignature)> {
        self.entries.iter().map(|(p, s)| (p.as_str(), *s))
    }

    /// Serialises the database as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialisation failures (which cannot normally happen for
    /// this type).
    pub fn to_json(&self) -> Result<String, PersistError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| PersistError::Corrupt(format!("signature db serialisation: {e}")))
    }

    /// Restores a database from JSON.
    ///
    /// # Errors
    ///
    /// Fails when the JSON is malformed.
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        serde_json::from_str(json).map_err(|e| PersistError::Corrupt(format!("signature db: {e}")))
    }
}

/// The classification of the current file tree against the signature
/// database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChangeSet {
    /// Files present now but never indexed before.
    pub added: Vec<VPath>,
    /// Files whose contents differ from the recorded signature.
    pub modified: Vec<VPath>,
    /// Paths that were indexed before but no longer exist.
    pub removed: Vec<String>,
    /// Number of files whose signature is unchanged.
    pub unchanged: u64,
}

impl ChangeSet {
    /// Total number of files that need re-scanning.
    #[must_use]
    pub fn files_to_scan(&self) -> usize {
        self.added.len() + self.modified.len()
    }

    /// Returns `true` when nothing changed since the last run.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.added.is_empty() && self.modified.is_empty() && self.removed.is_empty()
    }
}

/// Statistics of one incremental update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateReport {
    /// Files newly indexed.
    pub added: u64,
    /// Files re-indexed because their contents changed.
    pub modified: u64,
    /// Files whose postings were removed because the file disappeared.
    pub removed: u64,
    /// Files skipped because they were unchanged.
    pub unchanged: u64,
    /// Bytes read from the changed files.
    pub bytes_scanned: u64,
    /// Postings removed from the index (for removed/modified files).
    pub postings_removed: u64,
    /// Postings added to the index.
    pub postings_added: u64,
}

impl UpdateReport {
    /// Fraction of the visited files that had to be re-scanned (0.0 – 1.0).
    #[must_use]
    pub fn rescan_ratio(&self) -> f64 {
        let total = self.added + self.modified + self.unchanged;
        if total == 0 {
            0.0
        } else {
            (self.added + self.modified) as f64 / total as f64
        }
    }
}

/// Re-indexes only the files that changed since the previous run.
#[derive(Debug, Clone, Default)]
pub struct IncrementalIndexer {
    tokenizer: Tokenizer,
    walker: Walker,
}

impl IncrementalIndexer {
    /// Creates an indexer with the default tokenizer and walker.
    #[must_use]
    pub fn new() -> Self {
        IncrementalIndexer::default()
    }

    /// Uses a custom tokenizer (lowercasing, term-length limits, …).
    #[must_use]
    pub fn with_tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Uses a custom directory walker (extension filters, size limits, …).
    #[must_use]
    pub fn with_walker(mut self, walker: Walker) -> Self {
        self.walker = walker;
        self
    }

    /// Classifies the tree under `root` against `signatures` without touching
    /// the index.
    ///
    /// Note that detecting *modification* requires reading the file to hash
    /// it; files whose size changed are classified as modified without
    /// hashing.
    ///
    /// # Errors
    ///
    /// Fails when the tree cannot be walked or a file cannot be read.
    pub fn diff<F: FileSystem + ?Sized>(
        &self,
        fs: &F,
        root: &VPath,
        signatures: &SignatureDb,
    ) -> Result<ChangeSet, PersistError> {
        let (files, _stats) = self.walker.walk(fs, root)?;
        let mut change = ChangeSet::default();
        let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for found in files {
            let path_str = found.path.as_str().to_owned();
            seen.insert(path_str.clone());
            match signatures.get(&path_str) {
                None => change.added.push(found.path),
                Some(old) if old.size != found.size => change.modified.push(found.path),
                Some(old) => {
                    let data = fs.read(&found.path)?;
                    if FileSignature::from_bytes(&data) == old {
                        change.unchanged += 1;
                    } else {
                        change.modified.push(found.path);
                    }
                }
            }
        }
        for (path, _) in signatures.iter() {
            if !seen.contains(path) {
                change.removed.push(path.to_owned());
            }
        }
        Ok(change)
    }

    /// Brings `index`, `docs` and `signatures` up to date with the tree under
    /// `root`.
    ///
    /// # Errors
    ///
    /// Fails when the tree cannot be walked or a changed file cannot be read.
    pub fn update<F: FileSystem + ?Sized>(
        &self,
        fs: &F,
        root: &VPath,
        index: &mut InMemoryIndex,
        docs: &mut DocTable,
        signatures: &mut SignatureDb,
    ) -> Result<UpdateReport, PersistError> {
        let change = self.diff(fs, root, signatures)?;
        let mut report = UpdateReport { unchanged: change.unchanged, ..UpdateReport::default() };

        // Path → id lookup for the documents we already know.
        let mut known: FnvHashMap<String, dsearch_index::FileId> = FnvHashMap::new();
        for (id, path) in docs.iter() {
            known.insert(path.to_owned(), id);
        }

        for path in &change.removed {
            if let Some(&id) = known.get(path.as_str()) {
                report.postings_removed += index.remove_file(id);
            }
            signatures.forget(path);
            report.removed += 1;
        }

        let mut reindex =
            |path: &VPath, is_new: bool, report: &mut UpdateReport| -> Result<(), PersistError> {
                let data = fs.read(path)?;
                let signature = FileSignature::from_bytes(&data);
                let path_str = path.as_str().to_owned();
                let id = match known.get(path_str.as_str()) {
                    Some(&id) => {
                        report.postings_removed += index.remove_file(id);
                        id
                    }
                    None => {
                        let id = docs.insert(path_str.clone());
                        known.insert(path_str.clone(), id);
                        id
                    }
                };
                let (terms, _stats) = self.tokenizer.tokenize(&data);
                let mut builder = WordListBuilder::with_capacity(terms.len() / 2 + 1);
                for t in terms {
                    builder.push(t);
                }
                let list = builder.finish();
                report.postings_added += list.len() as u64;
                report.bytes_scanned += data.len() as u64;
                index.insert_file(id, list.into_terms());
                signatures.record(path_str, signature);
                if is_new {
                    report.added += 1;
                } else {
                    report.modified += 1;
                }
                Ok(())
            };

        for path in &change.added {
            reindex(path, true, &mut report)?;
        }
        for path in &change.modified {
            reindex(path, false, &mut report)?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_text::Term;
    use dsearch_vfs::MemFs;

    fn setup() -> (MemFs, InMemoryIndex, DocTable, SignatureDb, IncrementalIndexer) {
        let fs = MemFs::new();
        fs.add_file(&VPath::new("docs/a.txt"), b"alpha beta".to_vec()).unwrap();
        fs.add_file(&VPath::new("docs/b.txt"), b"beta gamma".to_vec()).unwrap();
        (fs, InMemoryIndex::new(), DocTable::new(), SignatureDb::new(), IncrementalIndexer::new())
    }

    #[test]
    fn first_run_indexes_everything() {
        let (fs, mut index, mut docs, mut sigs, indexer) = setup();
        let report = indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();
        assert_eq!(report.added, 2);
        assert_eq!(report.modified, 0);
        assert_eq!(report.unchanged, 0);
        assert_eq!(index.file_count(), 2);
        assert_eq!(sigs.len(), 2);
        assert!(index.contains_term(&Term::from("alpha")));
        assert!((report.rescan_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn unchanged_tree_is_a_no_op() {
        let (fs, mut index, mut docs, mut sigs, indexer) = setup();
        indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();
        let before = index.clone();
        let report = indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();
        assert_eq!(report.added + report.modified + report.removed, 0);
        assert_eq!(report.unchanged, 2);
        assert_eq!(index, before);
        assert_eq!(report.rescan_ratio(), 0.0);
        let diff = indexer.diff(&fs, &VPath::root(), &sigs).unwrap();
        assert!(diff.is_clean());
        assert_eq!(diff.files_to_scan(), 0);
    }

    #[test]
    fn modified_file_is_reindexed_in_place() {
        let (fs, mut index, mut docs, mut sigs, indexer) = setup();
        indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();

        // Same size, different content: hash must catch it.
        fs.remove_file(&VPath::new("docs/a.txt")).unwrap();
        fs.add_file(&VPath::new("docs/a.txt"), b"alpha omega".to_vec()).unwrap();
        let report = indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();
        assert_eq!(report.modified, 1);
        assert_eq!(report.added, 0);
        assert!(index.contains_term(&Term::from("omega")));
        assert!(
            !index.contains_term(&Term::from("beta")) || {
                // "beta" must survive through b.txt only.
                index.postings(&Term::from("beta")).unwrap().len() == 1
            }
        );
        // The doc table did not grow: the path kept its id.
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn removed_file_loses_its_postings() {
        let (fs, mut index, mut docs, mut sigs, indexer) = setup();
        indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();
        fs.remove_file(&VPath::new("docs/b.txt")).unwrap();
        let report = indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();
        assert_eq!(report.removed, 1);
        assert!(!index.contains_term(&Term::from("gamma")));
        assert_eq!(index.postings(&Term::from("beta")).unwrap().len(), 1);
        assert_eq!(sigs.len(), 1);
    }

    #[test]
    fn added_file_joins_the_index() {
        let (fs, mut index, mut docs, mut sigs, indexer) = setup();
        indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();
        fs.add_file(&VPath::new("docs/c.txt"), b"delta".to_vec()).unwrap();
        let report = indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();
        assert_eq!(report.added, 1);
        assert_eq!(report.unchanged, 2);
        assert!(index.contains_term(&Term::from("delta")));
        assert_eq!(docs.len(), 3);
        assert!(report.rescan_ratio() > 0.3 && report.rescan_ratio() < 0.4);
    }

    #[test]
    fn incremental_result_matches_full_rebuild() {
        let (fs, mut index, mut docs, mut sigs, indexer) = setup();
        indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();
        // A mixed batch of changes.
        fs.remove_file(&VPath::new("docs/a.txt")).unwrap();
        fs.add_file(&VPath::new("docs/a.txt"), b"alpha rewritten entirely".to_vec()).unwrap();
        fs.add_file(&VPath::new("docs/new.txt"), b"fresh words".to_vec()).unwrap();
        fs.remove_file(&VPath::new("docs/b.txt")).unwrap();
        indexer.update(&fs, &VPath::root(), &mut index, &mut docs, &mut sigs).unwrap();

        // Full rebuild over the same final tree.
        let mut full_index = InMemoryIndex::new();
        let mut full_docs = DocTable::new();
        let mut full_sigs = SignatureDb::new();
        indexer
            .update(&fs, &VPath::root(), &mut full_index, &mut full_docs, &mut full_sigs)
            .unwrap();

        // Term → path sets must agree (ids may differ because the incremental
        // doc table keeps tombstoned entries).
        let to_paths = |idx: &InMemoryIndex, table: &DocTable| {
            let mut v: Vec<(String, Vec<String>)> = idx
                .iter()
                .map(|(t, p)| {
                    let mut paths: Vec<String> =
                        p.iter().filter_map(|id| table.path(id).map(str::to_owned)).collect();
                    paths.sort();
                    (t.as_str().to_owned(), paths)
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(to_paths(&index, &docs), to_paths(&full_index, &full_docs));
    }

    #[test]
    fn signature_db_round_trips_as_json() {
        let mut db = SignatureDb::new();
        db.record("a.txt", FileSignature::from_bytes(b"alpha"));
        db.record("b.txt", FileSignature { size: 9, content_hash: 42 });
        let json = db.to_json().unwrap();
        let restored = SignatureDb::from_json(&json).unwrap();
        assert_eq!(restored, db);
        assert_eq!(restored.get("b.txt"), Some(FileSignature { size: 9, content_hash: 42 }));
        assert_eq!(restored.iter().count(), 2);
        assert!(SignatureDb::from_json("{ nope").is_err());
    }

    #[test]
    fn signature_distinguishes_same_length_contents() {
        let a = FileSignature::from_bytes(b"abcd");
        let b = FileSignature::from_bytes(b"abce");
        assert_eq!(a.size, b.size);
        assert_ne!(a, b);
    }
}
