//! On-disk persistence and incremental re-indexing for `dsearch`.
//!
//! The paper regenerates the whole index on every run — reasonable for a
//! benchmark, not for a desktop-search engine a user actually runs.  This
//! crate adds the two pieces a deployed index generator needs around the
//! paper's pipeline, without changing the pipeline itself:
//!
//! * **Persistence** ([`segment`], [`store`]) — a compact binary segment
//!   format (delta-encoded, varint-compressed posting lists, FNV-1a
//!   checksummed) and an [`store::IndexStore`] directory layout that holds
//!   any number of segments plus a manifest.  Replicas produced by
//!   Implementation 3 can be committed as one segment each and either
//!   searched in place or compacted into a single segment later — the on-disk
//!   mirror of the paper's "Join Forces" decision.
//! * **Incremental re-indexing** ([`incremental`]) — per-file signatures
//!   (size + FNV-1a content hash) persisted in a [`incremental::SignatureDb`]
//!   let the next run re-scan only the files that were added, modified or
//!   removed since the previous run.
//!
//! # Example
//!
//! ```
//! use dsearch_index::{DocTable, InMemoryIndex};
//! use dsearch_persist::segment::{read_segment, write_segment};
//! use dsearch_text::Term;
//!
//! # fn main() -> Result<(), dsearch_persist::PersistError> {
//! let mut docs = DocTable::new();
//! let id = docs.insert("a.txt");
//! let mut index = InMemoryIndex::new();
//! index.insert_file(id, [Term::from("hello"), Term::from("world")]);
//!
//! let mut buffer = Vec::new();
//! write_segment(&index, &docs, &mut buffer)?;
//! let (restored, restored_docs) = read_segment(&buffer[..])?;
//! assert_eq!(restored, index);
//! assert_eq!(restored_docs.len(), docs.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod error;
pub mod incremental;
pub mod segment;
pub mod store;
pub mod varint;

pub use checkpoint::{BuildCheckpoint, DeadLetter, DeadLetterQueue, CHECKPOINT_FILE, DLQ_FILE};
pub use error::PersistError;
pub use incremental::{ChangeSet, FileSignature, IncrementalIndexer, SignatureDb, UpdateReport};
pub use segment::{read_segment, read_segment_sealed, write_segment, SegmentInfo};
pub use store::{IndexStore, StoreManifest};
