//! The binary segment format.
//!
//! One segment stores one complete index (terms, block-compressed posting
//! lists) together with its document table.  The version-3 layout is:
//!
//! ```text
//! magic   "DSG1"                            4 bytes
//! checksum FNV-1a(payload)                  8 bytes little-endian
//! payload:
//!   version                                 varint
//!   doc count                               varint
//!   per doc: path                           length-prefixed bytes
//!   doc-length count (v3)                   varint
//!   per length (v3, id ascending):          file id, length as varints
//!   term count                              varint
//!   per term (sorted ascending):
//!     term                                  length-prefixed bytes
//!     posting count                         varint
//!     skip entries (only when > 1 block):   per block: first, last, offset
//!                                           as varints
//!     block payload                         length-prefixed bytes
//!     frequency payload (v3)                length-prefixed bytes
//!     frequency offsets (v3, only when      per block: byte offset varint
//!       the frequency payload is non-empty)
//!     max score (v3)                        f32 bits as varint
//!     block score bounds (v3, only when     one u8 per block, raw
//!       max score > 0)
//! ```
//!
//! The per-term payload is **exactly** the in-memory
//! [`CompressedPostings`] representation (delta blocks, varint or bitpacked,
//! plus the v3 term-frequency payload and quantized per-block BM25 score
//! bounds, see `dsearch_index::block`), so serving a segment is decode-free:
//! the bytes are lifted straight into a [`SealedShard`] without touching a
//! single posting, and ranked queries prune with the persisted bounds.
//! Version-1 segments (per-id ascending varint deltas) and version-2
//! segments (no frequencies or scores — served unscored) are still
//! readable.  The checksum makes a truncated or bit-flipped segment a clean
//! [`PersistError::Corrupt`] instead of a garbage index.

use std::io::{Read, Write};

use dsearch_index::{
    CompressedPostings, DocTable, FileId, InMemoryIndex, PostingList, SealedShard, SkipEntry,
    BLOCK_SIZE,
};
use dsearch_text::fnv::fnv1a_64;
use dsearch_text::Term;

use crate::error::PersistError;
use crate::varint;

/// Magic bytes identifying a segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"DSG1";

/// Current segment format version (3 = term frequencies, document lengths
/// and block-max score bounds; 2 = block-compressed postings).
pub const SEGMENT_VERSION: u32 = 3;

/// Oldest version [`read_segment`] still understands.
pub const MIN_SEGMENT_VERSION: u32 = 1;

/// Longest path or term (in bytes) a segment will accept when reading;
/// protects against corrupt length prefixes.
const MAX_STRING_LEN: u64 = 64 * 1024;

/// Summary of a written segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SegmentInfo {
    /// Number of documents in the segment's doc table.
    pub doc_count: u64,
    /// Number of distinct terms.
    pub term_count: u64,
    /// Number of `(term, file)` postings.
    pub posting_count: u64,
    /// Encoded size in bytes (including header).
    pub bytes: u64,
}

/// Writes `index` and `docs` as one segment.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_segment<W: Write>(
    index: &InMemoryIndex,
    docs: &DocTable,
    mut writer: W,
) -> Result<SegmentInfo, PersistError> {
    let mut payload: Vec<u8> = Vec::new();
    varint::write_u32(&mut payload, SEGMENT_VERSION)?;

    varint::write_u64(&mut payload, docs.len() as u64)?;
    for (_, path) in docs.iter() {
        varint::write_bytes(&mut payload, path.as_bytes())?;
    }

    let mut doc_lens: Vec<(FileId, u32)> = index.doc_lens().collect();
    doc_lens.sort_unstable_by_key(|&(id, _)| id);
    varint::write_u64(&mut payload, doc_lens.len() as u64)?;
    for &(id, len) in &doc_lens {
        varint::write_u32(&mut payload, id.as_u32())?;
        varint::write_u32(&mut payload, len)?;
    }

    // Sealing computes the per-block BM25 score bounds exactly as the
    // serving path would, so persisted bounds match in-memory seals bit for
    // bit.
    let shard = SealedShard::from_index(index);
    varint::write_u64(&mut payload, shard.term_count() as u64)?;
    for (term, compressed) in shard.iter() {
        write_term_postings(&mut payload, term, compressed)?;
    }

    let checksum = fnv1a_64(&payload);
    writer.write_all(&SEGMENT_MAGIC)?;
    writer.write_all(&checksum.to_le_bytes())?;
    writer.write_all(&payload)?;

    Ok(SegmentInfo {
        doc_count: docs.len() as u64,
        term_count: shard.term_count() as u64,
        posting_count: shard.posting_count(),
        bytes: (SEGMENT_MAGIC.len() + 8 + payload.len()) as u64,
    })
}

fn write_term_postings(
    payload: &mut Vec<u8>,
    term: &Term,
    compressed: &CompressedPostings,
) -> Result<(), PersistError> {
    varint::write_bytes(payload, term.as_str().as_bytes())?;
    varint::write_u64(payload, compressed.len() as u64)?;
    for skip in compressed.skips() {
        varint::write_u32(payload, skip.first.as_u32())?;
        varint::write_u32(payload, skip.last.as_u32())?;
        varint::write_u32(payload, skip.offset)?;
    }
    varint::write_bytes(payload, compressed.data())?;
    varint::write_bytes(payload, compressed.freqs())?;
    for &offset in compressed.freq_offsets() {
        varint::write_u32(payload, offset)?;
    }
    varint::write_u32(payload, compressed.max_score().to_bits())?;
    payload.extend_from_slice(compressed.block_scores());
    Ok(())
}

fn read_term_postings(
    cursor: &mut &[u8],
    version: u32,
) -> Result<(Term, CompressedPostings), PersistError> {
    let term = varint::read_bytes(cursor, MAX_STRING_LEN)?;
    let term = String::from_utf8(term)
        .map_err(|_| PersistError::Corrupt("term is not valid UTF-8".into()))?;
    let term = Term::from(term);
    let posting_count = varint::read_u64(cursor)? as usize;
    if version == 1 {
        // Legacy per-id ascending deltas: decode, then compress.
        let mut ids = Vec::with_capacity(posting_count.min(1 << 20));
        let mut previous = 0u64;
        for i in 0..posting_count {
            let delta = varint::read_u64(cursor)?;
            let value = if i == 0 { delta } else { previous + delta };
            let id = u32::try_from(value)
                .map_err(|_| PersistError::Corrupt("file id does not fit in u32".into()))?;
            ids.push(FileId(id));
            previous = value;
        }
        return Ok((term, CompressedPostings::from_sorted(&ids)));
    }
    let block_count = posting_count.div_ceil(BLOCK_SIZE);
    let skip_count = if block_count > 1 { block_count } else { 0 };
    let mut skips = Vec::with_capacity(skip_count);
    for _ in 0..skip_count {
        let first = FileId(varint::read_u32(cursor)?);
        let last = FileId(varint::read_u32(cursor)?);
        let offset = varint::read_u32(cursor)?;
        skips.push(SkipEntry { first, last, offset });
    }
    // Encoded blocks never exceed ~5 bytes/id plus per-block headers.
    let data_bound = 6 * posting_count as u64 + 2 * block_count as u64 + 16;
    let data = varint::read_bytes(cursor, data_bound)?;
    if version == 2 {
        let compressed = CompressedPostings::from_parts(posting_count, skips, data)
            .map_err(|e| PersistError::Corrupt(e.to_string()))?;
        return Ok((term, compressed));
    }

    // Version 3: term frequencies and block-max score bounds.
    let freq_bound = 5 * posting_count as u64 + 2 * block_count as u64 + 16;
    let freqs = varint::read_bytes(cursor, freq_bound)?;
    let mut freq_offsets = Vec::new();
    if !freqs.is_empty() {
        freq_offsets.reserve(block_count);
        for _ in 0..block_count {
            freq_offsets.push(varint::read_u32(cursor)?);
        }
    }
    let max_score = f32::from_bits(varint::read_u32(cursor)?);
    let mut block_scores = Vec::new();
    if max_score > 0.0 {
        if cursor.len() < block_count {
            return Err(PersistError::Corrupt("truncated block score bounds".into()));
        }
        block_scores.extend_from_slice(&cursor[..block_count]);
        *cursor = &cursor[block_count..];
    }
    let compressed = CompressedPostings::from_parts_scored(
        posting_count,
        skips,
        data,
        freqs,
        freq_offsets,
        block_scores,
        max_score,
    )
    .map_err(|e| PersistError::Corrupt(e.to_string()))?;
    Ok((term, compressed))
}

/// Shared front matter: magic, checksum verification, version, doc table,
/// document lengths (v3).  Returns the doc table, the recorded lengths
/// (empty for v1/v2 — those segments serve unscored), the remaining payload
/// cursor and the version.
#[allow(clippy::type_complexity)]
fn read_segment_header(
    payload: &[u8],
) -> Result<(DocTable, Vec<(FileId, u32)>, &[u8], u32), PersistError> {
    let mut cursor = payload;
    let version = varint::read_u32(&mut cursor)?;
    if !(MIN_SEGMENT_VERSION..=SEGMENT_VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion { found: version, expected: SEGMENT_VERSION });
    }
    let doc_count = varint::read_u64(&mut cursor)?;
    let mut docs = DocTable::with_capacity(doc_count as usize);
    for _ in 0..doc_count {
        let path = varint::read_bytes(&mut cursor, MAX_STRING_LEN)?;
        let path = String::from_utf8(path)
            .map_err(|_| PersistError::Corrupt("document path is not valid UTF-8".into()))?;
        docs.insert(path);
    }
    let mut doc_lens = Vec::new();
    if version >= 3 {
        let len_count = varint::read_u64(&mut cursor)?;
        if len_count > doc_count {
            return Err(PersistError::Corrupt("more document lengths than documents".into()));
        }
        doc_lens.reserve(len_count as usize);
        let mut previous: Option<u32> = None;
        for _ in 0..len_count {
            let id = varint::read_u32(&mut cursor)?;
            let len = varint::read_u32(&mut cursor)?;
            if previous.is_some_and(|p| p >= id) {
                return Err(PersistError::Corrupt(
                    "document lengths are not strictly ascending by id".into(),
                ));
            }
            previous = Some(id);
            doc_lens.push((FileId(id), len));
        }
    }
    Ok((docs, doc_lens, cursor, version))
}

fn read_payload<R: Read>(mut reader: R) -> Result<Vec<u8>, PersistError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != SEGMENT_MAGIC {
        return Err(PersistError::Corrupt("bad segment magic".into()));
    }
    let mut checksum_bytes = [0u8; 8];
    reader.read_exact(&mut checksum_bytes)?;
    let expected_checksum = u64::from_le_bytes(checksum_bytes);

    let mut payload = Vec::new();
    reader.read_to_end(&mut payload)?;
    if fnv1a_64(&payload) != expected_checksum {
        return Err(PersistError::Corrupt("segment checksum mismatch".into()));
    }
    Ok(payload)
}

/// Reads one segment, reconstructing the mutable index and its document
/// table (the incremental re-indexing path; serving should prefer
/// [`read_segment_sealed`]).
///
/// # Errors
///
/// Fails on I/O errors, a wrong magic number, a checksum mismatch, an
/// unsupported version or any malformed length/delta.
pub fn read_segment<R: Read>(reader: R) -> Result<(InMemoryIndex, DocTable), PersistError> {
    let payload = read_payload(reader)?;
    let (docs, doc_lens, mut cursor, version) = read_segment_header(&payload)?;

    let term_count = varint::read_u64(&mut cursor)?;
    let mut index = InMemoryIndex::with_capacity(term_count as usize);
    for _ in 0..term_count {
        let (term, compressed) = read_term_postings(&mut cursor, version)?;
        // Bulk insert: one map operation per term, never a per-id add loop.
        index.insert_term_list(term, decompress_list(&compressed)?);
    }
    for (file, len) in doc_lens {
        index.note_doc_len(file, len);
    }
    // Restore the file counter from the doc table, as the JSON snapshot does.
    for _ in 0..docs.len() {
        index.note_file_done();
    }

    ensure_drained(cursor)?;
    Ok((index, docs))
}

/// Reads one segment straight into a [`SealedShard`] — the decode-free
/// serving path: version-2 block payloads are lifted as-is, no posting is
/// ever decompressed.
///
/// # Errors
///
/// Fails like [`read_segment`].
pub fn read_segment_sealed<R: Read>(reader: R) -> Result<(SealedShard, DocTable), PersistError> {
    let payload = read_payload(reader)?;
    let (docs, doc_lens, mut cursor, version) = read_segment_header(&payload)?;

    let term_count = varint::read_u64(&mut cursor)?;
    let mut entries = Vec::with_capacity(term_count as usize);
    for _ in 0..term_count {
        entries.push(read_term_postings(&mut cursor, version)?);
    }
    ensure_drained(cursor)?;
    let shard = SealedShard::from_entries_scored(entries, docs.len() as u64, doc_lens)
        .map_err(PersistError::Corrupt)?;
    Ok((shard, docs))
}

fn decompress_list(compressed: &CompressedPostings) -> Result<PostingList, PersistError> {
    let mut ids = Vec::new();
    compressed.decode_into(&mut ids);
    if ids.windows(2).any(|w| w[0] >= w[1]) {
        return Err(PersistError::Corrupt("posting ids are not strictly ascending".into()));
    }
    let mut tfs = Vec::new();
    compressed.decode_freqs_into(&mut tfs);
    Ok(PostingList::from_sorted_counted(ids, tfs))
}

fn ensure_drained(cursor: &[u8]) -> Result<(), PersistError> {
    if cursor.is_empty() {
        Ok(())
    } else {
        Err(PersistError::Corrupt(format!("{} trailing bytes after segment payload", cursor.len())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> (InMemoryIndex, DocTable) {
        let mut docs = DocTable::new();
        let a = docs.insert("dir/a.txt");
        let b = docs.insert("dir/b.txt");
        let c = docs.insert("c.md");
        let mut index = InMemoryIndex::new();
        index.insert_file(a, [Term::from("alpha"), Term::from("beta")]);
        index.insert_file(b, [Term::from("beta"), Term::from("gamma")]);
        index.insert_file(c, [Term::from("alpha"), Term::from("gamma"), Term::from("delta")]);
        (index, docs)
    }

    #[test]
    fn round_trip_preserves_index_and_docs() {
        let (index, docs) = sample();
        let mut buf = Vec::new();
        let info = write_segment(&index, &docs, &mut buf).unwrap();
        assert_eq!(info.doc_count, 3);
        assert_eq!(info.term_count, 4);
        assert_eq!(info.posting_count, 7);
        assert_eq!(info.bytes, buf.len() as u64);

        let (restored, restored_docs) = read_segment(&buf[..]).unwrap();
        assert_eq!(restored, index);
        assert_eq!(restored_docs.len(), docs.len());
        for (id, path) in docs.iter() {
            assert_eq!(restored_docs.path(id), Some(path));
        }
        assert_eq!(restored.file_count(), 3);
    }

    #[test]
    fn counted_round_trip_preserves_tfs_lens_and_scores() {
        let mut docs = DocTable::new();
        let a = docs.insert("a.txt");
        let b = docs.insert("b.txt");
        let mut index = InMemoryIndex::new();
        index.insert_file_counted(a, [(Term::from("alpha"), 4u32), (Term::from("beta"), 1)]);
        index.insert_file_counted(b, [(Term::from("alpha"), 1u32)]);

        let mut buf = Vec::new();
        write_segment(&index, &docs, &mut buf).unwrap();

        // Mutable path: tfs and doc lens restored exactly.
        let (restored, _) = read_segment(&buf[..]).unwrap();
        assert_eq!(restored, index);
        assert_eq!(restored.postings(&Term::from("alpha")).unwrap().tf_of(a), Some(4));
        assert_eq!(restored.doc_len(a), Some(5));
        assert_eq!(restored.doc_len(b), Some(1));

        // Sealed path: identical to sealing the source index, including the
        // persisted block-max score bounds and rebuilt norms.
        let (shard, _) = read_segment_sealed(&buf[..]).unwrap();
        assert_eq!(shard, SealedShard::from_index(&index));
        assert!(shard.has_scoring());
        assert!(shard.postings(&Term::from("alpha")).unwrap().max_score() > 0.0);
    }

    #[test]
    fn v2_segments_are_still_readable_as_unscored() {
        // Hand-build a version-2 payload: no doc-length section, no
        // frequency or score sections after each term's block payload.
        let mut payload = Vec::new();
        crate::varint::write_u32(&mut payload, 2).unwrap();
        crate::varint::write_u64(&mut payload, 2).unwrap();
        crate::varint::write_bytes(&mut payload, b"a.txt").unwrap();
        crate::varint::write_bytes(&mut payload, b"b.txt").unwrap();
        crate::varint::write_u64(&mut payload, 1).unwrap();
        let compressed = CompressedPostings::from_sorted(&[FileId(0), FileId(1)]);
        crate::varint::write_bytes(&mut payload, b"alpha").unwrap();
        crate::varint::write_u64(&mut payload, compressed.len() as u64).unwrap();
        assert!(compressed.skips().is_empty());
        crate::varint::write_bytes(&mut payload, compressed.data()).unwrap();

        let mut buf = Vec::new();
        buf.extend_from_slice(&SEGMENT_MAGIC);
        buf.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);

        let (index, docs) = read_segment(&buf[..]).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(index.postings(&Term::from("alpha")).unwrap().tf_of(FileId(0)), Some(1));
        assert_eq!(index.doc_len(FileId(0)), None);

        let (shard, _) = read_segment_sealed(&buf[..]).unwrap();
        assert!(!shard.has_scoring());
        assert_eq!(shard.postings(&Term::from("alpha")).unwrap().max_score(), 0.0);
    }

    #[test]
    fn empty_index_round_trips() {
        let mut buf = Vec::new();
        let info = write_segment(&InMemoryIndex::new(), &DocTable::new(), &mut buf).unwrap();
        assert_eq!(info.term_count, 0);
        let (restored, docs) = read_segment(&buf[..]).unwrap();
        assert!(restored.is_empty());
        assert!(docs.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (index, docs) = sample();
        let mut buf = Vec::new();
        write_segment(&index, &docs, &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_segment(&buf[..]), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn bit_flip_in_payload_is_caught_by_checksum() {
        let (index, docs) = sample();
        let mut buf = Vec::new();
        write_segment(&index, &docs, &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert!(matches!(read_segment(&buf[..]), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn truncated_segment_is_an_error() {
        let (index, docs) = sample();
        let mut buf = Vec::new();
        write_segment(&index, &docs, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_segment(&buf[..]).is_err());
        assert!(read_segment(&buf[..6]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected_even_with_matching_length() {
        // Appending bytes invalidates the checksum; the reader reports
        // corruption rather than silently ignoring the tail.
        let (index, docs) = sample();
        let mut buf = Vec::new();
        write_segment(&index, &docs, &mut buf).unwrap();
        buf.extend_from_slice(b"junk");
        assert!(read_segment(&buf[..]).is_err());
    }

    proptest! {
        /// Any index built from en-bloc file insertions survives a
        /// write → read round trip exactly.
        #[test]
        fn arbitrary_indices_round_trip(
            files in proptest::collection::vec(
                proptest::collection::vec("[a-f]{1,4}", 1..10),
                0..40,
            )
        ) {
            let mut docs = DocTable::new();
            let mut index = InMemoryIndex::new();
            for (i, words) in files.iter().enumerate() {
                let id = docs.insert(format!("f{i}.txt"));
                let mut uniq = words.clone();
                uniq.sort();
                uniq.dedup();
                index.insert_file(id, uniq.iter().map(|w| Term::from(w.as_str())));
            }
            let mut buf = Vec::new();
            let info = write_segment(&index, &docs, &mut buf).unwrap();
            prop_assert_eq!(info.doc_count, docs.len() as u64);
            let (restored, restored_docs) = read_segment(&buf[..]).unwrap();
            prop_assert_eq!(&restored, &index);
            prop_assert_eq!(restored_docs.len(), docs.len());
        }
    }
}
