//! The binary segment format.
//!
//! One segment stores one complete index (terms, block-compressed posting
//! lists) together with its document table.  The version-2 layout is:
//!
//! ```text
//! magic   "DSG1"                            4 bytes
//! checksum FNV-1a(payload)                  8 bytes little-endian
//! payload:
//!   version                                 varint
//!   doc count                               varint
//!   per doc: path                           length-prefixed bytes
//!   term count                              varint
//!   per term (sorted ascending):
//!     term                                  length-prefixed bytes
//!     posting count                         varint
//!     skip entries (only when > 1 block):   per block: first, last, offset
//!                                           as varints
//!     block payload                         length-prefixed bytes
//! ```
//!
//! The per-term payload is **exactly** the in-memory
//! [`CompressedPostings`] representation (delta blocks, varint or bitpacked,
//! see `dsearch_index::block`), so serving a segment is decode-free: the
//! bytes are lifted straight into a [`SealedShard`] without touching a
//! single posting.  Version-1 segments (per-id ascending varint deltas) are
//! still readable.  The checksum makes a truncated or bit-flipped segment a
//! clean [`PersistError::Corrupt`] instead of a garbage index.

use std::io::{Read, Write};

use dsearch_index::{
    CompressedPostings, DocTable, FileId, InMemoryIndex, PostingList, SealedShard, SkipEntry,
    BLOCK_SIZE,
};
use dsearch_text::fnv::fnv1a_64;
use dsearch_text::Term;

use crate::error::PersistError;
use crate::varint;

/// Magic bytes identifying a segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"DSG1";

/// Current segment format version (2 = block-compressed postings).
pub const SEGMENT_VERSION: u32 = 2;

/// Oldest version [`read_segment`] still understands.
pub const MIN_SEGMENT_VERSION: u32 = 1;

/// Longest path or term (in bytes) a segment will accept when reading;
/// protects against corrupt length prefixes.
const MAX_STRING_LEN: u64 = 64 * 1024;

/// Summary of a written segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SegmentInfo {
    /// Number of documents in the segment's doc table.
    pub doc_count: u64,
    /// Number of distinct terms.
    pub term_count: u64,
    /// Number of `(term, file)` postings.
    pub posting_count: u64,
    /// Encoded size in bytes (including header).
    pub bytes: u64,
}

/// Writes `index` and `docs` as one segment.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_segment<W: Write>(
    index: &InMemoryIndex,
    docs: &DocTable,
    mut writer: W,
) -> Result<SegmentInfo, PersistError> {
    let mut payload: Vec<u8> = Vec::new();
    varint::write_u32(&mut payload, SEGMENT_VERSION)?;

    varint::write_u64(&mut payload, docs.len() as u64)?;
    for (_, path) in docs.iter() {
        varint::write_bytes(&mut payload, path.as_bytes())?;
    }

    let entries = index.to_sorted_entries();
    varint::write_u64(&mut payload, entries.len() as u64)?;
    let mut posting_count = 0u64;
    for (term, ids) in &entries {
        let compressed = CompressedPostings::from_sorted(ids);
        write_term_postings(&mut payload, term, &compressed)?;
        posting_count += ids.len() as u64;
    }

    let checksum = fnv1a_64(&payload);
    writer.write_all(&SEGMENT_MAGIC)?;
    writer.write_all(&checksum.to_le_bytes())?;
    writer.write_all(&payload)?;

    Ok(SegmentInfo {
        doc_count: docs.len() as u64,
        term_count: entries.len() as u64,
        posting_count,
        bytes: (SEGMENT_MAGIC.len() + 8 + payload.len()) as u64,
    })
}

fn write_term_postings(
    payload: &mut Vec<u8>,
    term: &Term,
    compressed: &CompressedPostings,
) -> Result<(), PersistError> {
    varint::write_bytes(payload, term.as_str().as_bytes())?;
    varint::write_u64(payload, compressed.len() as u64)?;
    for skip in compressed.skips() {
        varint::write_u32(payload, skip.first.as_u32())?;
        varint::write_u32(payload, skip.last.as_u32())?;
        varint::write_u32(payload, skip.offset)?;
    }
    varint::write_bytes(payload, compressed.data())?;
    Ok(())
}

fn read_term_postings(
    cursor: &mut &[u8],
    version: u32,
) -> Result<(Term, CompressedPostings), PersistError> {
    let term = varint::read_bytes(cursor, MAX_STRING_LEN)?;
    let term = String::from_utf8(term)
        .map_err(|_| PersistError::Corrupt("term is not valid UTF-8".into()))?;
    let term = Term::from(term);
    let posting_count = varint::read_u64(cursor)? as usize;
    if version == 1 {
        // Legacy per-id ascending deltas: decode, then compress.
        let mut ids = Vec::with_capacity(posting_count.min(1 << 20));
        let mut previous = 0u64;
        for i in 0..posting_count {
            let delta = varint::read_u64(cursor)?;
            let value = if i == 0 { delta } else { previous + delta };
            let id = u32::try_from(value)
                .map_err(|_| PersistError::Corrupt("file id does not fit in u32".into()))?;
            ids.push(FileId(id));
            previous = value;
        }
        return Ok((term, CompressedPostings::from_sorted(&ids)));
    }
    let block_count = posting_count.div_ceil(BLOCK_SIZE);
    let skip_count = if block_count > 1 { block_count } else { 0 };
    let mut skips = Vec::with_capacity(skip_count);
    for _ in 0..skip_count {
        let first = FileId(varint::read_u32(cursor)?);
        let last = FileId(varint::read_u32(cursor)?);
        let offset = varint::read_u32(cursor)?;
        skips.push(SkipEntry { first, last, offset });
    }
    // Encoded blocks never exceed ~5 bytes/id plus per-block headers.
    let data_bound = 6 * posting_count as u64 + 2 * block_count as u64 + 16;
    let data = varint::read_bytes(cursor, data_bound)?;
    let compressed = CompressedPostings::from_parts(posting_count, skips, data)
        .map_err(|e| PersistError::Corrupt(e.to_string()))?;
    Ok((term, compressed))
}

/// Shared front matter: magic, checksum verification, version, doc table.
/// Returns the doc table, the remaining payload cursor and the version.
fn read_segment_header(payload: &[u8]) -> Result<(DocTable, &[u8], u32), PersistError> {
    let mut cursor = payload;
    let version = varint::read_u32(&mut cursor)?;
    if !(MIN_SEGMENT_VERSION..=SEGMENT_VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion { found: version, expected: SEGMENT_VERSION });
    }
    let doc_count = varint::read_u64(&mut cursor)?;
    let mut docs = DocTable::with_capacity(doc_count as usize);
    for _ in 0..doc_count {
        let path = varint::read_bytes(&mut cursor, MAX_STRING_LEN)?;
        let path = String::from_utf8(path)
            .map_err(|_| PersistError::Corrupt("document path is not valid UTF-8".into()))?;
        docs.insert(path);
    }
    Ok((docs, cursor, version))
}

fn read_payload<R: Read>(mut reader: R) -> Result<Vec<u8>, PersistError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != SEGMENT_MAGIC {
        return Err(PersistError::Corrupt("bad segment magic".into()));
    }
    let mut checksum_bytes = [0u8; 8];
    reader.read_exact(&mut checksum_bytes)?;
    let expected_checksum = u64::from_le_bytes(checksum_bytes);

    let mut payload = Vec::new();
    reader.read_to_end(&mut payload)?;
    if fnv1a_64(&payload) != expected_checksum {
        return Err(PersistError::Corrupt("segment checksum mismatch".into()));
    }
    Ok(payload)
}

/// Reads one segment, reconstructing the mutable index and its document
/// table (the incremental re-indexing path; serving should prefer
/// [`read_segment_sealed`]).
///
/// # Errors
///
/// Fails on I/O errors, a wrong magic number, a checksum mismatch, an
/// unsupported version or any malformed length/delta.
pub fn read_segment<R: Read>(reader: R) -> Result<(InMemoryIndex, DocTable), PersistError> {
    let payload = read_payload(reader)?;
    let (docs, mut cursor, version) = read_segment_header(&payload)?;

    let term_count = varint::read_u64(&mut cursor)?;
    let mut index = InMemoryIndex::with_capacity(term_count as usize);
    for _ in 0..term_count {
        let (term, compressed) = read_term_postings(&mut cursor, version)?;
        // Bulk insert: one map operation per term, never a per-id add loop.
        index.insert_term_list(term, decompress_list(&compressed)?);
    }
    // Restore the file counter from the doc table, as the JSON snapshot does.
    for _ in 0..docs.len() {
        index.note_file_done();
    }

    ensure_drained(cursor)?;
    Ok((index, docs))
}

/// Reads one segment straight into a [`SealedShard`] — the decode-free
/// serving path: version-2 block payloads are lifted as-is, no posting is
/// ever decompressed.
///
/// # Errors
///
/// Fails like [`read_segment`].
pub fn read_segment_sealed<R: Read>(reader: R) -> Result<(SealedShard, DocTable), PersistError> {
    let payload = read_payload(reader)?;
    let (docs, mut cursor, version) = read_segment_header(&payload)?;

    let term_count = varint::read_u64(&mut cursor)?;
    let mut entries = Vec::with_capacity(term_count as usize);
    for _ in 0..term_count {
        entries.push(read_term_postings(&mut cursor, version)?);
    }
    ensure_drained(cursor)?;
    let shard =
        SealedShard::from_entries(entries, docs.len() as u64).map_err(PersistError::Corrupt)?;
    Ok((shard, docs))
}

fn decompress_list(compressed: &CompressedPostings) -> Result<PostingList, PersistError> {
    let mut ids = Vec::new();
    compressed.decode_into(&mut ids);
    if ids.windows(2).any(|w| w[0] >= w[1]) {
        return Err(PersistError::Corrupt("posting ids are not strictly ascending".into()));
    }
    Ok(PostingList::from_sorted(ids))
}

fn ensure_drained(cursor: &[u8]) -> Result<(), PersistError> {
    if cursor.is_empty() {
        Ok(())
    } else {
        Err(PersistError::Corrupt(format!("{} trailing bytes after segment payload", cursor.len())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> (InMemoryIndex, DocTable) {
        let mut docs = DocTable::new();
        let a = docs.insert("dir/a.txt");
        let b = docs.insert("dir/b.txt");
        let c = docs.insert("c.md");
        let mut index = InMemoryIndex::new();
        index.insert_file(a, [Term::from("alpha"), Term::from("beta")]);
        index.insert_file(b, [Term::from("beta"), Term::from("gamma")]);
        index.insert_file(c, [Term::from("alpha"), Term::from("gamma"), Term::from("delta")]);
        (index, docs)
    }

    #[test]
    fn round_trip_preserves_index_and_docs() {
        let (index, docs) = sample();
        let mut buf = Vec::new();
        let info = write_segment(&index, &docs, &mut buf).unwrap();
        assert_eq!(info.doc_count, 3);
        assert_eq!(info.term_count, 4);
        assert_eq!(info.posting_count, 7);
        assert_eq!(info.bytes, buf.len() as u64);

        let (restored, restored_docs) = read_segment(&buf[..]).unwrap();
        assert_eq!(restored, index);
        assert_eq!(restored_docs.len(), docs.len());
        for (id, path) in docs.iter() {
            assert_eq!(restored_docs.path(id), Some(path));
        }
        assert_eq!(restored.file_count(), 3);
    }

    #[test]
    fn empty_index_round_trips() {
        let mut buf = Vec::new();
        let info = write_segment(&InMemoryIndex::new(), &DocTable::new(), &mut buf).unwrap();
        assert_eq!(info.term_count, 0);
        let (restored, docs) = read_segment(&buf[..]).unwrap();
        assert!(restored.is_empty());
        assert!(docs.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let (index, docs) = sample();
        let mut buf = Vec::new();
        write_segment(&index, &docs, &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_segment(&buf[..]), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn bit_flip_in_payload_is_caught_by_checksum() {
        let (index, docs) = sample();
        let mut buf = Vec::new();
        write_segment(&index, &docs, &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert!(matches!(read_segment(&buf[..]), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn truncated_segment_is_an_error() {
        let (index, docs) = sample();
        let mut buf = Vec::new();
        write_segment(&index, &docs, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_segment(&buf[..]).is_err());
        assert!(read_segment(&buf[..6]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected_even_with_matching_length() {
        // Appending bytes invalidates the checksum; the reader reports
        // corruption rather than silently ignoring the tail.
        let (index, docs) = sample();
        let mut buf = Vec::new();
        write_segment(&index, &docs, &mut buf).unwrap();
        buf.extend_from_slice(b"junk");
        assert!(read_segment(&buf[..]).is_err());
    }

    proptest! {
        /// Any index built from en-bloc file insertions survives a
        /// write → read round trip exactly.
        #[test]
        fn arbitrary_indices_round_trip(
            files in proptest::collection::vec(
                proptest::collection::vec("[a-f]{1,4}", 1..10),
                0..40,
            )
        ) {
            let mut docs = DocTable::new();
            let mut index = InMemoryIndex::new();
            for (i, words) in files.iter().enumerate() {
                let id = docs.insert(format!("f{i}.txt"));
                let mut uniq = words.clone();
                uniq.sort();
                uniq.dedup();
                index.insert_file(id, uniq.iter().map(|w| Term::from(w.as_str())));
            }
            let mut buf = Vec::new();
            let info = write_segment(&index, &docs, &mut buf).unwrap();
            prop_assert_eq!(info.doc_count, docs.len() as u64);
            let (restored, restored_docs) = read_segment(&buf[..]).unwrap();
            prop_assert_eq!(&restored, &index);
            prop_assert_eq!(restored_docs.len(), docs.len());
        }
    }
}
