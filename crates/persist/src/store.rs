//! The on-disk index store.
//!
//! An [`IndexStore`] is a directory containing numbered segment files plus a
//! JSON manifest:
//!
//! ```text
//! index-store/
//!   manifest.json
//!   segment-000001.dsg
//!   segment-000002.dsg
//! ```
//!
//! Each call to [`IndexStore::commit`] writes one segment.  Implementation 3
//! (replicate, never join) maps naturally onto this layout: every replica is
//! committed as its own segment and queries load them all; [`IndexStore::compact`]
//! performs the join later, off the indexing critical path — the on-disk
//! version of the paper's trade-off between Implementations 2 and 3.

use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use dsearch_index::{join_all, DocTable, InMemoryIndex, SealedShard};

use crate::error::PersistError;
use crate::segment::{read_segment, read_segment_sealed, write_segment, SegmentInfo};

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// One segment's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestSegment {
    /// File name of the segment, relative to the store directory.
    pub file_name: String,
    /// Size/shape summary captured at commit time.
    pub info: SegmentInfo,
}

/// The store manifest: the list of live segments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreManifest {
    /// Manifest format version.
    pub version: u32,
    /// Monotonic counter used to name the next segment.
    pub next_segment: u64,
    /// Live segments in commit order.
    pub segments: Vec<ManifestSegment>,
}

impl Default for StoreManifest {
    fn default() -> Self {
        StoreManifest { version: MANIFEST_VERSION, next_segment: 1, segments: Vec::new() }
    }
}

impl StoreManifest {
    /// Total postings across all live segments.
    #[must_use]
    pub fn total_postings(&self) -> u64 {
        self.segments.iter().map(|s| s.info.posting_count).sum()
    }

    /// Total documents across all live segments.
    #[must_use]
    pub fn total_docs(&self) -> u64 {
        self.segments.iter().map(|s| s.info.doc_count).sum()
    }
}

/// A directory of index segments plus a manifest.
#[derive(Debug)]
pub struct IndexStore {
    root: PathBuf,
    manifest: StoreManifest,
}

impl IndexStore {
    /// Opens a store at `root`, creating the directory and an empty manifest
    /// when none exists.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created or the existing manifest is
    /// unreadable or of an unsupported version.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let manifest_path = root.join("manifest.json");
        let manifest = if manifest_path.exists() {
            let data = fs::read_to_string(&manifest_path)?;
            let manifest: StoreManifest = serde_json::from_str(&data)
                .map_err(|e| PersistError::Corrupt(format!("manifest: {e}")))?;
            if manifest.version != MANIFEST_VERSION {
                return Err(PersistError::UnsupportedVersion {
                    found: manifest.version,
                    expected: MANIFEST_VERSION,
                });
            }
            manifest
        } else {
            StoreManifest::default()
        };
        let mut store = IndexStore { root, manifest };
        if !manifest_path.exists() {
            store.write_manifest()?;
        }
        Ok(store)
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The current manifest.
    #[must_use]
    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    /// Number of live segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.manifest.segments.len()
    }

    fn write_manifest(&mut self) -> Result<(), PersistError> {
        let json = serde_json::to_string_pretty(&self.manifest)
            .map_err(|e| PersistError::Corrupt(format!("manifest serialisation: {e}")))?;
        // Write-then-rename so a crash mid-write never leaves a truncated
        // manifest behind.
        let tmp = self.root.join("manifest.json.tmp");
        fs::write(&tmp, json)?;
        fs::rename(&tmp, self.root.join("manifest.json"))?;
        Ok(())
    }

    /// Commits `index` (and its doc table) as a new segment.
    ///
    /// # Errors
    ///
    /// Fails when the segment or the updated manifest cannot be written.
    pub fn commit(
        &mut self,
        index: &InMemoryIndex,
        docs: &DocTable,
    ) -> Result<SegmentInfo, PersistError> {
        self.commit_named(index, docs).map(|(_, info)| info)
    }

    /// Commits `index` as a new segment and also returns the segment's file
    /// name — the handle a build checkpoint records so crash recovery can
    /// tell this build's segments from orphans.
    ///
    /// # Errors
    ///
    /// Fails when the segment or the updated manifest cannot be written.
    pub fn commit_named(
        &mut self,
        index: &InMemoryIndex,
        docs: &DocTable,
    ) -> Result<(String, SegmentInfo), PersistError> {
        let file_name = format!("segment-{:06}.dsg", self.manifest.next_segment);
        let path = self.root.join(&file_name);
        let mut file = fs::File::create(&path)?;
        let info = write_segment(index, docs, &mut file)?;
        file.sync_all()?;
        self.manifest.next_segment += 1;
        self.manifest.segments.push(ManifestSegment { file_name: file_name.clone(), info });
        self.write_manifest()?;
        Ok((file_name, info))
    }

    /// Keeps only the segments whose file name satisfies `keep`; the rest are
    /// dropped from the manifest and their files deleted (best effort).
    ///
    /// # Errors
    ///
    /// Fails when the pruned manifest cannot be written; the manifest is left
    /// unchanged in that case.
    pub fn retain_segments(&mut self, keep: impl Fn(&str) -> bool) -> Result<usize, PersistError> {
        let (kept, dropped): (Vec<_>, Vec<_>) = std::mem::take(&mut self.manifest.segments)
            .into_iter()
            .partition(|s| keep(&s.file_name));
        let removed = dropped.len();
        self.manifest.segments = kept;
        if removed > 0 {
            if let Err(e) = self.write_manifest() {
                self.manifest.segments.extend(dropped);
                return Err(e);
            }
            for entry in dropped {
                let _ = fs::remove_file(self.root.join(&entry.file_name));
            }
        }
        Ok(removed)
    }

    /// Removes every live segment (a fresh build taking ownership of the
    /// store).
    ///
    /// # Errors
    ///
    /// Fails when the emptied manifest cannot be written.
    pub fn clear_segments(&mut self) -> Result<usize, PersistError> {
        self.retain_segments(|_| false)
    }

    /// Loads one segment by its position in the manifest.
    ///
    /// # Errors
    ///
    /// Fails when `position` is out of range or the segment file is missing
    /// or corrupt.
    pub fn load_segment(&self, position: usize) -> Result<(InMemoryIndex, DocTable), PersistError> {
        let entry = self.manifest.segments.get(position).ok_or_else(|| {
            PersistError::Corrupt(format!(
                "segment index {position} out of range ({} segments)",
                self.manifest.segments.len()
            ))
        })?;
        let file = fs::File::open(self.root.join(&entry.file_name))?;
        read_segment(std::io::BufReader::new(file))
    }

    /// Loads every live segment.
    ///
    /// # Errors
    ///
    /// Fails when any segment is missing or corrupt.
    pub fn load_all(&self) -> Result<Vec<(InMemoryIndex, DocTable)>, PersistError> {
        (0..self.segment_count()).map(|i| self.load_segment(i)).collect()
    }

    /// Loads one segment straight into its sealed (block-compressed) serving
    /// form — no posting is decompressed on the way.
    ///
    /// # Errors
    ///
    /// Fails when `position` is out of range or the segment file is missing
    /// or corrupt.
    pub fn load_segment_sealed(
        &self,
        position: usize,
    ) -> Result<(SealedShard, DocTable), PersistError> {
        let entry = self.manifest.segments.get(position).ok_or_else(|| {
            PersistError::Corrupt(format!(
                "segment index {position} out of range ({} segments)",
                self.manifest.segments.len()
            ))
        })?;
        let file = fs::File::open(self.root.join(&entry.file_name))?;
        read_segment_sealed(std::io::BufReader::new(file))
    }

    /// Loads every live segment in sealed form (the snapshot reload path).
    ///
    /// # Errors
    ///
    /// Fails when any segment is missing or corrupt.
    pub fn load_all_sealed(&self) -> Result<Vec<(SealedShard, DocTable)>, PersistError> {
        (0..self.segment_count()).map(|i| self.load_segment_sealed(i)).collect()
    }

    /// Loads all segments and joins them into one index.
    ///
    /// Document tables are concatenated in segment order; document ids are
    /// only meaningful when every segment was produced from the same doc
    /// table (the normal case: replicas of one run).
    ///
    /// # Errors
    ///
    /// Fails when any segment is missing or corrupt.
    pub fn load_joined(&self) -> Result<(InMemoryIndex, DocTable), PersistError> {
        let mut indices = Vec::with_capacity(self.segment_count());
        let mut docs = DocTable::new();
        for (i, (index, segment_docs)) in self.load_all()?.into_iter().enumerate() {
            indices.push(index);
            if i == 0 || docs.is_empty() || segment_docs.len() > docs.len() {
                docs = segment_docs;
            }
        }
        Ok((join_all(indices), docs))
    }

    /// Replaces every live segment with a single segment holding `index`.
    ///
    /// This is the incremental-indexing commit: the caller loaded the joined
    /// index, brought it up to date, and stores the result as the new sole
    /// segment.  Old segment files are deleted after the new one is safely on
    /// disk.
    ///
    /// # Errors
    ///
    /// Fails when the new segment or the manifest cannot be written; the old
    /// segments are left untouched in that case.
    pub fn replace_all(
        &mut self,
        index: &InMemoryIndex,
        docs: &DocTable,
    ) -> Result<SegmentInfo, PersistError> {
        let old_segments = std::mem::take(&mut self.manifest.segments);
        match self.commit(index, docs) {
            Ok(info) => {
                for entry in &old_segments {
                    let _ = fs::remove_file(self.root.join(&entry.file_name));
                }
                Ok(info)
            }
            Err(e) => {
                // Restore the manifest view of the old segments.
                self.manifest.segments = old_segments;
                Err(e)
            }
        }
    }

    /// Replaces every live segment with one joined segment.
    ///
    /// Returns the new segment's summary.  The replaced segment files are
    /// deleted from disk.
    ///
    /// # Errors
    ///
    /// Fails when a segment cannot be read or the new segment cannot be
    /// written; in that case the old segments are left untouched.
    pub fn compact(&mut self) -> Result<SegmentInfo, PersistError> {
        let (joined, docs) = self.load_joined()?;
        let old_segments = std::mem::take(&mut self.manifest.segments);
        let info = self.commit(&joined, &docs)?;
        for entry in old_segments {
            // Best effort: a segment that cannot be removed is orphaned but
            // harmless (it is no longer referenced by the manifest).
            let _ = fs::remove_file(self.root.join(&entry.file_name));
        }
        Ok(info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_index::FileId;
    use dsearch_text::Term;

    /// Minimal scoped temp dir (std-only, no extra dependency).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let mut path = std::env::temp_dir();
            let unique = format!(
                "dsearch-store-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            );
            path.push(unique.replace(['(', ')', ' '], ""));
            let _ = fs::remove_dir_all(&path);
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample(offset: u32) -> (InMemoryIndex, DocTable) {
        let mut docs = DocTable::new();
        let mut index = InMemoryIndex::new();
        for i in 0..4u32 {
            let _ = docs.insert(format!("doc{}.txt", offset + i));
            index.insert_file(
                FileId(offset + i),
                [Term::from(format!("word{}", i % 3)), Term::from("common")],
            );
        }
        (index, docs)
    }

    #[test]
    fn open_creates_directory_and_manifest() {
        let dir = TempDir::new("open");
        let store_root = dir.path().join("store");
        let store = IndexStore::open(&store_root).unwrap();
        assert!(store_root.join("manifest.json").exists());
        assert_eq!(store.segment_count(), 0);
        assert_eq!(store.root(), store_root.as_path());
        assert_eq!(store.manifest().total_docs(), 0);
    }

    #[test]
    fn commit_and_reload_round_trips() {
        let dir = TempDir::new("commit");
        let mut store = IndexStore::open(dir.path().join("s")).unwrap();
        let (index, docs) = sample(0);
        let info = store.commit(&index, &docs).unwrap();
        assert_eq!(info.doc_count, 4);
        assert_eq!(store.segment_count(), 1);

        let (loaded, loaded_docs) = store.load_segment(0).unwrap();
        assert_eq!(loaded, index);
        assert_eq!(loaded_docs.len(), docs.len());
        assert!(store.load_segment(1).is_err());
    }

    #[test]
    fn store_reopens_with_existing_segments() {
        let dir = TempDir::new("reopen");
        let root = dir.path().join("s");
        {
            let mut store = IndexStore::open(&root).unwrap();
            let (index, docs) = sample(0);
            store.commit(&index, &docs).unwrap();
        }
        let store = IndexStore::open(&root).unwrap();
        assert_eq!(store.segment_count(), 1);
        assert_eq!(store.manifest().total_docs(), 4);
        let (index, _) = store.load_segment(0).unwrap();
        assert!(index.contains_term(&Term::from("common")));
    }

    #[test]
    fn multiple_segments_join_like_replicas() {
        let dir = TempDir::new("join");
        let mut store = IndexStore::open(dir.path().join("s")).unwrap();
        // Two replicas that share one logical doc table (ids 0..8).
        let mut docs = DocTable::new();
        for i in 0..8 {
            docs.insert(format!("doc{i}.txt"));
        }
        let mut replica_a = InMemoryIndex::new();
        let mut replica_b = InMemoryIndex::new();
        for i in 0..8u32 {
            let target = if i % 2 == 0 { &mut replica_a } else { &mut replica_b };
            target.insert_file(FileId(i), [Term::from("common"), Term::from(format!("w{i}"))]);
        }
        store.commit(&replica_a, &docs).unwrap();
        store.commit(&replica_b, &docs).unwrap();
        assert_eq!(store.segment_count(), 2);

        let (joined, joined_docs) = store.load_joined().unwrap();
        assert_eq!(joined.postings(&Term::from("common")).unwrap().len(), 8);
        assert_eq!(joined_docs.len(), 8);

        let info = store.compact().unwrap();
        assert_eq!(store.segment_count(), 1);
        assert_eq!(info.doc_count, 8);
        let (compacted, _) = store.load_segment(0).unwrap();
        assert_eq!(compacted, joined);
        // Old segment files are gone.
        let remaining: Vec<_> = fs::read_dir(store.root())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".dsg"))
            .collect();
        assert_eq!(remaining.len(), 1);
    }

    #[test]
    fn replace_all_swaps_the_store_contents() {
        let dir = TempDir::new("replace");
        let mut store = IndexStore::open(dir.path().join("s")).unwrap();
        let (first, first_docs) = sample(0);
        store.commit(&first, &first_docs).unwrap();
        store.commit(&first, &first_docs).unwrap();
        assert_eq!(store.segment_count(), 2);

        let mut new_docs = DocTable::new();
        new_docs.insert("only.txt");
        let mut new_index = InMemoryIndex::new();
        new_index.insert_file(FileId(0), [Term::from("fresh")]);
        let info = store.replace_all(&new_index, &new_docs).unwrap();
        assert_eq!(info.doc_count, 1);
        assert_eq!(store.segment_count(), 1);
        let (loaded, loaded_docs) = store.load_segment(0).unwrap();
        assert_eq!(loaded, new_index);
        assert_eq!(loaded_docs.len(), 1);
        // Only one segment file remains on disk.
        let remaining = fs::read_dir(store.root())
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".dsg"))
            .count();
        assert_eq!(remaining, 1);
    }

    #[test]
    fn corrupt_manifest_is_reported() {
        let dir = TempDir::new("corrupt");
        let root = dir.path().join("s");
        IndexStore::open(&root).unwrap();
        fs::write(root.join("manifest.json"), b"{ not json").unwrap();
        assert!(matches!(IndexStore::open(&root), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn unsupported_manifest_version_is_rejected() {
        let dir = TempDir::new("version");
        let root = dir.path().join("s");
        IndexStore::open(&root).unwrap();
        let manifest = StoreManifest { version: 99, ..StoreManifest::default() };
        fs::write(root.join("manifest.json"), serde_json::to_string(&manifest).unwrap()).unwrap();
        assert!(matches!(
            IndexStore::open(&root),
            Err(PersistError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn missing_segment_file_is_an_error() {
        let dir = TempDir::new("missing");
        let mut store = IndexStore::open(dir.path().join("s")).unwrap();
        let (index, docs) = sample(0);
        store.commit(&index, &docs).unwrap();
        fs::remove_file(store.root().join(&store.manifest().segments[0].file_name)).unwrap();
        assert!(store.load_segment(0).is_err());
        assert!(store.load_joined().is_err());
    }
}
