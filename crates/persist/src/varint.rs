//! LEB128 variable-length integer encoding.
//!
//! Posting lists are stored as delta-encoded varints, the classic inverted-
//! index compression: file ids within one posting list are ascending, so the
//! gaps are small and most encode in a single byte.

use std::io::{Read, Write};

use crate::error::PersistError;

/// Appends a `u64` in LEB128 encoding.
pub fn write_u64<W: Write>(writer: &mut W, mut value: u64) -> Result<(), PersistError> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            writer.write_all(&[byte])?;
            return Ok(());
        }
        writer.write_all(&[byte | 0x80])?;
    }
}

/// Appends a `u32` in LEB128 encoding.
pub fn write_u32<W: Write>(writer: &mut W, value: u32) -> Result<(), PersistError> {
    write_u64(writer, u64::from(value))
}

/// Reads a LEB128-encoded `u64`.
///
/// # Errors
///
/// Fails on I/O errors, on truncated input and on encodings longer than ten
/// bytes (which cannot come from [`write_u64`]).
pub fn read_u64<R: Read>(reader: &mut R) -> Result<u64, PersistError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(PersistError::Corrupt("varint overflows u64".into()));
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(PersistError::Corrupt("varint longer than 10 bytes".into()));
        }
    }
}

/// Reads a LEB128-encoded `u32`.
///
/// # Errors
///
/// Fails like [`read_u64`], and additionally when the decoded value does not
/// fit in a `u32`.
pub fn read_u32<R: Read>(reader: &mut R) -> Result<u32, PersistError> {
    let value = read_u64(reader)?;
    u32::try_from(value)
        .map_err(|_| PersistError::Corrupt(format!("value {value} does not fit in u32")))
}

/// Writes a length-prefixed byte string.
pub fn write_bytes<W: Write>(writer: &mut W, bytes: &[u8]) -> Result<(), PersistError> {
    write_u64(writer, bytes.len() as u64)?;
    writer.write_all(bytes)?;
    Ok(())
}

/// Reads a length-prefixed byte string, rejecting lengths above `max_len`.
///
/// # Errors
///
/// Fails on I/O errors, truncated input, or a declared length above
/// `max_len` (a corruption guard so a bad length cannot trigger a huge
/// allocation).
pub fn read_bytes<R: Read>(reader: &mut R, max_len: u64) -> Result<Vec<u8>, PersistError> {
    let len = read_u64(reader)?;
    if len > max_len {
        return Err(PersistError::Corrupt(format!(
            "declared length {len} exceeds limit {max_len}"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(value: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, value).unwrap();
        read_u64(&mut &buf[..]).unwrap()
    }

    #[test]
    fn small_values_use_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert_eq!(buf.len(), 1);
            assert_eq!(round_trip(v), v);
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [127, 128, 16_383, 16_384, u64::from(u32::MAX), u64::MAX] {
            assert_eq!(round_trip(v), v);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        buf.pop();
        assert!(read_u64(&mut &buf[..]).is_err());
        assert!(read_u64(&mut &[][..]).is_err());
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        let eleven_bytes = [0x80u8; 11];
        assert!(matches!(read_u64(&mut &eleven_bytes[..]), Err(PersistError::Corrupt(_))));
        // A tenth byte with bits beyond 64 set also overflows.
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x7f);
        assert!(read_u64(&mut &overflow[..]).is_err());
    }

    #[test]
    fn u32_reader_rejects_oversized_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1).unwrap();
        assert!(matches!(read_u32(&mut &buf[..]), Err(PersistError::Corrupt(_))));
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        assert_eq!(read_u32(&mut &buf[..]).unwrap(), u32::MAX);
    }

    #[test]
    fn byte_strings_round_trip_and_enforce_limit() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello world").unwrap();
        assert_eq!(read_bytes(&mut &buf[..], 1024).unwrap(), b"hello world");
        assert!(matches!(read_bytes(&mut &buf[..], 4), Err(PersistError::Corrupt(_))));
        let mut empty = Vec::new();
        write_bytes(&mut empty, b"").unwrap();
        assert_eq!(read_bytes(&mut &empty[..], 10).unwrap(), Vec::<u8>::new());
    }

    proptest! {
        #[test]
        fn any_u64_round_trips(value in any::<u64>()) {
            prop_assert_eq!(round_trip(value), value);
        }

        #[test]
        fn sequences_round_trip(values in proptest::collection::vec(any::<u64>(), 0..200)) {
            let mut buf = Vec::new();
            for &v in &values {
                write_u64(&mut buf, v).unwrap();
            }
            let mut reader = &buf[..];
            for &v in &values {
                prop_assert_eq!(read_u64(&mut reader).unwrap(), v);
            }
            prop_assert!(reader.is_empty());
        }

        #[test]
        fn arbitrary_byte_strings_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut buf = Vec::new();
            write_bytes(&mut buf, &bytes).unwrap();
            prop_assert_eq!(read_bytes(&mut &buf[..], 4096).unwrap(), bytes);
        }
    }
}
