//! Search-query layer for `dsearch`.
//!
//! The paper's future-work section ("we will analyze how to integrate the
//! search query functionality and parallelize it as well, for instance by
//! using multiple indices") is implemented here:
//!
//! * [`query::Query`] — a small boolean query language (`AND`/`OR`/`NOT`,
//!   implicit `AND` between words, trailing-`*` prefix queries);
//! * [`search::SingleIndexSearcher`] — evaluates queries against one joined
//!   index (the result of Implementations 1 and 2);
//! * [`search::MultiIndexSearcher`] — evaluates queries against the un-joined
//!   replica set of Implementation 3, optionally fanning the replicas out to
//!   multiple threads;
//! * [`results::SearchResults`] — ranked hits with their file paths.
//!
//! # Example
//!
//! ```
//! use dsearch_index::{DocTable, InMemoryIndex};
//! use dsearch_query::{Query, SearchBackend, SingleIndexSearcher};
//! use dsearch_text::Term;
//!
//! let mut docs = DocTable::new();
//! let a = docs.insert("a.txt");
//! let b = docs.insert("b.txt");
//! let mut index = InMemoryIndex::new();
//! index.insert_file(a, [Term::from("rust"), Term::from("search")]);
//! index.insert_file(b, [Term::from("rust")]);
//!
//! let searcher = SingleIndexSearcher::new(&index, &docs);
//! let results = searcher.search(&Query::parse("rust AND search").unwrap());
//! assert_eq!(results.len(), 1);
//! assert_eq!(&*results.hits()[0].path, "a.txt");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod query;
pub mod results;
pub mod search;
pub mod topk;

pub use dsearch_index::{PostingView, Postings};
pub use query::{ParseError, Query, QueryGroup, QueryTerm};
pub use results::{merge_ranked, Hit, RankedHit, SearchResults};
pub use search::{MultiIndexSearcher, SearchBackend, SingleIndexSearcher};
pub use topk::{scorable, search_topk, PruneStats};
