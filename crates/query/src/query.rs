//! Boolean query parsing.
//!
//! The query language is deliberately small — it matches what a desktop
//! search box needs:
//!
//! * words separated by whitespace are combined with an implicit `AND`;
//! * the keywords `AND` and `OR` (upper-case) combine terms explicitly;
//! * `OR` binds *looser* than `AND`, so `a b OR c` parses as `(a AND b) OR c`;
//! * `NOT word` (or `-word`) excludes documents containing `word` from the
//!   current group;
//! * a trailing `*` makes a word a prefix query: `index*` matches `index`,
//!   `indexes`, `indexing`, ….
//!
//! Query words go through the same [`Normalizer`] as indexed terms so `"Rust"`
//! finds documents containing `rust`.

use serde::{Deserialize, Serialize};

use dsearch_text::normalize::Normalizer;
use dsearch_text::Term;

/// Errors from [`Query::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The query contained no searchable terms.
    Empty,
    /// An `AND`/`OR`/`NOT` operator had a missing operand.
    DanglingOperator(String),
    /// A group consists only of exclusions (`NOT a NOT b`), which cannot be
    /// evaluated against an inverted index without a full document scan.
    ExclusionOnly,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => f.write_str("query contains no searchable terms"),
            ParseError::DanglingOperator(op) => {
                write!(f, "operator {op} is missing an operand")
            }
            ParseError::ExclusionOnly => {
                f.write_str("query group contains only NOT terms; add at least one required term")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// One required term of a query group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryTerm {
    /// Matches documents containing exactly this term.
    Exact(Term),
    /// Matches documents containing any term starting with this prefix.
    Prefix(String),
}

impl QueryTerm {
    /// Renders the term the way the user typed it.
    #[must_use]
    pub fn display_text(&self) -> String {
        match self {
            QueryTerm::Exact(t) => t.as_str().to_owned(),
            QueryTerm::Prefix(p) => format!("{p}*"),
        }
    }
}

/// One `AND` group of a query: every required term must match and no excluded
/// term may match.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryGroup {
    required: Vec<QueryTerm>,
    excluded: Vec<Term>,
}

impl QueryGroup {
    /// Builds a group from required terms only.
    #[must_use]
    pub fn of_terms<I: IntoIterator<Item = Term>>(terms: I) -> Self {
        QueryGroup {
            required: terms.into_iter().map(QueryTerm::Exact).collect(),
            excluded: Vec::new(),
        }
    }

    /// The terms a matching document must contain.
    #[must_use]
    pub fn required(&self) -> &[QueryTerm] {
        &self.required
    }

    /// The terms a matching document must **not** contain.
    #[must_use]
    pub fn excluded(&self) -> &[Term] {
        &self.excluded
    }

    /// Number of required terms (the ranking weight of the group).
    #[must_use]
    pub fn len(&self) -> usize {
        self.required.len()
    }

    /// Returns `true` when the group has no required terms.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.required.is_empty()
    }
}

/// A parsed boolean query in disjunctive normal form: an `OR` of `AND` groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Each group is a conjunction; a document matches the query when it
    /// matches at least one group.
    groups: Vec<QueryGroup>,
}

impl Query {
    /// Parses a query string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Empty`] when no searchable terms remain after
    /// normalisation, [`ParseError::DanglingOperator`] when `AND`/`OR`/`NOT`
    /// has no operand, and [`ParseError::ExclusionOnly`] when a group has no
    /// required term.
    pub fn parse(raw: &str) -> Result<Self, ParseError> {
        let normalizer = Normalizer::default();
        let mut groups: Vec<QueryGroup> = Vec::new();
        let mut current = QueryGroup::default();
        let mut pending_operator: Option<String> = None;
        let mut negate_next = false;

        let finish_group =
            |current: &mut QueryGroup, groups: &mut Vec<QueryGroup>| -> Result<(), ParseError> {
                if current.required.is_empty() && !current.excluded.is_empty() {
                    return Err(ParseError::ExclusionOnly);
                }
                if !current.required.is_empty() {
                    groups.push(std::mem::take(current));
                }
                Ok(())
            };

        for token in raw.split_whitespace() {
            match token {
                "OR" => {
                    if (current.required.is_empty() && current.excluded.is_empty())
                        || pending_operator.is_some()
                    {
                        return Err(ParseError::DanglingOperator("OR".into()));
                    }
                    finish_group(&mut current, &mut groups)?;
                    pending_operator = Some("OR".into());
                }
                "AND" => {
                    // Bare leading `AND`, and doubled operators (`a AND AND b`),
                    // are user errors rather than something to guess through.
                    if (current.required.is_empty() && current.excluded.is_empty())
                        || pending_operator.is_some()
                    {
                        return Err(ParseError::DanglingOperator("AND".into()));
                    }
                    pending_operator = Some("AND".into());
                }
                "NOT" => {
                    negate_next = true;
                    pending_operator = Some("NOT".into());
                }
                word => {
                    let mut negated = negate_next;
                    negate_next = false;
                    let mut text = word;
                    if let Some(rest) = text.strip_prefix('-') {
                        negated = true;
                        text = rest;
                    }
                    let prefix = text.ends_with('*') && !negated;
                    let text = text.trim_end_matches('*');
                    let Some(term) = normalizer.normalize(text) else { continue };
                    if negated {
                        current.excluded.push(term);
                    } else if prefix {
                        current.required.push(QueryTerm::Prefix(term.into_string()));
                    } else {
                        current.required.push(QueryTerm::Exact(term));
                    }
                    pending_operator = None;
                }
            }
        }
        if negate_next {
            return Err(ParseError::DanglingOperator("NOT".into()));
        }
        if let Some(op) = pending_operator {
            return Err(ParseError::DanglingOperator(op));
        }
        if !current.required.is_empty() || !current.excluded.is_empty() {
            finish_group(&mut current, &mut groups)?;
        }
        if groups.is_empty() {
            return Err(ParseError::Empty);
        }
        Ok(Query { groups })
    }

    /// Builds a conjunction-only query from terms (no parsing).
    #[must_use]
    pub fn all_of<I: IntoIterator<Item = Term>>(terms: I) -> Self {
        Query { groups: vec![QueryGroup::of_terms(terms)] }
    }

    /// Builds a disjunction-only query from terms.
    #[must_use]
    pub fn any_of<I: IntoIterator<Item = Term>>(terms: I) -> Self {
        Query { groups: terms.into_iter().map(|t| QueryGroup::of_terms([t])).collect() }
    }

    /// The OR-of-AND groups.
    #[must_use]
    pub fn groups(&self) -> &[QueryGroup] {
        &self.groups
    }

    /// Every distinct exact term mentioned anywhere in the query (required or
    /// excluded); prefix patterns are not included.
    #[must_use]
    pub fn terms(&self) -> Vec<&Term> {
        let mut all: Vec<&Term> = Vec::new();
        for group in &self.groups {
            for term in &group.required {
                if let QueryTerm::Exact(t) = term {
                    all.push(t);
                }
            }
            all.extend(group.excluded.iter());
        }
        all.sort();
        all.dedup();
        all
    }

    /// Returns `true` when any group uses a prefix pattern.
    #[must_use]
    pub fn has_prefix_terms(&self) -> bool {
        self.groups.iter().any(|g| g.required.iter().any(|t| matches!(t, QueryTerm::Prefix(_))))
    }

    /// Returns `true` when any group excludes terms.
    #[must_use]
    pub fn has_exclusions(&self) -> bool {
        self.groups.iter().any(|g| !g.excluded.is_empty())
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rendered: Vec<String> = self
            .groups
            .iter()
            .map(|g| {
                let mut parts: Vec<String> =
                    g.required.iter().map(QueryTerm::display_text).collect();
                parts.extend(g.excluded.iter().map(|t| format!("NOT {}", t.as_str())));
                parts.join(" AND ")
            })
            .collect();
        f.write_str(&rendered.join(" OR "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_and_between_words() {
        let q = Query::parse("rust search engine").unwrap();
        assert_eq!(q.groups().len(), 1);
        assert_eq!(q.groups()[0].len(), 3);
        assert_eq!(q.to_string(), "rust AND search AND engine");
    }

    #[test]
    fn or_splits_groups() {
        let q = Query::parse("rust search OR java").unwrap();
        assert_eq!(q.groups().len(), 2);
        assert_eq!(q.to_string(), "rust AND search OR java");
    }

    #[test]
    fn explicit_and_is_allowed() {
        let q = Query::parse("rust AND search").unwrap();
        assert_eq!(q.groups().len(), 1);
        assert_eq!(q.groups()[0].len(), 2);
    }

    #[test]
    fn words_are_normalised() {
        let q = Query::parse("RuSt, (Search)").unwrap();
        let words: Vec<String> =
            q.groups()[0].required().iter().map(QueryTerm::display_text).collect();
        assert_eq!(words, ["rust", "search"]);
    }

    #[test]
    fn not_keyword_and_dash_exclude_terms() {
        let q = Query::parse("rust NOT java").unwrap();
        assert_eq!(q.groups().len(), 1);
        assert_eq!(q.groups()[0].len(), 1);
        assert_eq!(q.groups()[0].excluded(), &[Term::from("java")]);
        assert!(q.has_exclusions());
        assert_eq!(q.to_string(), "rust AND NOT java");

        let dash = Query::parse("rust -java").unwrap();
        assert_eq!(dash, q);
    }

    #[test]
    fn exclusions_attach_to_their_group() {
        let q = Query::parse("rust NOT java OR python").unwrap();
        assert_eq!(q.groups().len(), 2);
        assert_eq!(q.groups()[0].excluded().len(), 1);
        assert!(q.groups()[1].excluded().is_empty());
    }

    #[test]
    fn prefix_star_is_recognised() {
        let q = Query::parse("index* generator").unwrap();
        assert!(q.has_prefix_terms());
        assert_eq!(q.groups()[0].required().len(), 2);
        assert!(matches!(&q.groups()[0].required()[0], QueryTerm::Prefix(p) if p == "index"));
        assert_eq!(q.to_string(), "index* AND generator");
        assert!(!Query::parse("plain words").unwrap().has_prefix_terms());
    }

    #[test]
    fn exclusion_only_queries_are_rejected() {
        assert_eq!(Query::parse("NOT rust").unwrap_err(), ParseError::ExclusionOnly);
        assert_eq!(Query::parse("-rust -java").unwrap_err(), ParseError::ExclusionOnly);
        assert!(ParseError::ExclusionOnly.to_string().contains("NOT"));
    }

    #[test]
    fn empty_and_punctuation_only_queries_error() {
        assert_eq!(Query::parse("").unwrap_err(), ParseError::Empty);
        assert_eq!(Query::parse("!!! ...").unwrap_err(), ParseError::Empty);
        assert!(Query::parse("").unwrap_err().to_string().contains("no searchable"));
    }

    #[test]
    fn dangling_operators_error() {
        assert!(matches!(Query::parse("rust OR"), Err(ParseError::DanglingOperator(_))));
        assert!(matches!(Query::parse("OR rust"), Err(ParseError::DanglingOperator(_))));
        assert!(matches!(Query::parse("rust AND"), Err(ParseError::DanglingOperator(_))));
        assert!(matches!(Query::parse("AND rust"), Err(ParseError::DanglingOperator(_))));
        assert!(matches!(Query::parse("rust NOT"), Err(ParseError::DanglingOperator(_))));
    }

    #[test]
    fn bare_operators_are_rejected() {
        for raw in ["AND", "OR", "NOT", "AND OR", "NOT AND"] {
            assert!(
                matches!(Query::parse(raw), Err(ParseError::DanglingOperator(_))),
                "{raw:?} must be rejected as a dangling operator"
            );
        }
        // `NOT foo` with no left side cannot be evaluated against an
        // inverted index; it is rejected (not mis-parsed as a match-all).
        assert_eq!(Query::parse("NOT foo").unwrap_err(), ParseError::ExclusionOnly);
    }

    #[test]
    fn doubled_operators_are_rejected() {
        for raw in
            ["rust AND AND search", "rust AND OR search", "rust OR OR search", "rust OR AND search"]
        {
            let err = Query::parse(raw).unwrap_err();
            assert!(
                matches!(err, ParseError::DanglingOperator(_)),
                "{raw:?} must be rejected, got {err:?}"
            );
        }
        // The error message names the offending operator.
        let err = Query::parse("rust AND AND search").unwrap_err();
        assert!(err.to_string().contains("AND"));
    }

    #[test]
    fn operator_after_not_still_parses() {
        // Hardening must not break legitimate combinations.
        let q = Query::parse("rust AND NOT java OR go").unwrap();
        assert_eq!(q.groups().len(), 2);
        assert_eq!(q.groups()[0].excluded(), &[Term::from("java")]);
    }

    #[test]
    fn constructors_and_terms() {
        let q = Query::all_of([Term::from("a"), Term::from("b")]);
        assert_eq!(q.groups().len(), 1);
        let q = Query::any_of([Term::from("a"), Term::from("b"), Term::from("a")]);
        assert_eq!(q.groups().len(), 3);
        assert_eq!(q.terms().len(), 2);
        let q = Query::parse("alpha NOT beta gamma*").unwrap();
        // terms() lists exact terms (required and excluded), not prefixes.
        let names: Vec<&str> = q.terms().iter().map(|t| t.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
    }

    #[test]
    fn serde_roundtrip() {
        let q = Query::parse("alpha beta OR gamma NOT delta OR pre*").unwrap();
        let json = serde_json::to_string(&q).unwrap();
        assert_eq!(serde_json::from_str::<Query>(&json).unwrap(), q);
    }
}
