//! Search results.

use serde::{Deserialize, Serialize};

use dsearch_index::FileId;

/// One matching file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hit {
    /// The matching file's id.
    pub file_id: FileId,
    /// The matching file's path.
    pub path: String,
    /// Number of query terms the file matched (the ranking key).
    pub matched_terms: usize,
}

/// An ordered list of hits.
///
/// Hits are sorted by descending `matched_terms`, ties broken by ascending
/// file id so results are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchResults {
    hits: Vec<Hit>,
}

impl SearchResults {
    /// Builds results from unsorted hits.
    #[must_use]
    pub fn new(mut hits: Vec<Hit>) -> Self {
        hits.sort_by(|a, b| {
            b.matched_terms.cmp(&a.matched_terms).then_with(|| a.file_id.cmp(&b.file_id))
        });
        SearchResults { hits }
    }

    /// The hits, best first.
    #[must_use]
    pub fn hits(&self) -> &[Hit] {
        &self.hits
    }

    /// Number of hits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Returns `true` when nothing matched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// The matching file ids, best first.
    #[must_use]
    pub fn file_ids(&self) -> Vec<FileId> {
        self.hits.iter().map(|h| h.file_id).collect()
    }

    /// The matching paths, best first.
    #[must_use]
    pub fn paths(&self) -> Vec<&str> {
        self.hits.iter().map(|h| h.path.as_str()).collect()
    }

    /// Truncates the results to the best `n` hits.
    pub fn truncate(&mut self, n: usize) {
        self.hits.truncate(n);
    }
}

impl IntoIterator for SearchResults {
    type Item = Hit;
    type IntoIter = std::vec::IntoIter<Hit>;

    fn into_iter(self) -> Self::IntoIter {
        self.hits.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(id: u32, matched: usize) -> Hit {
        Hit { file_id: FileId(id), path: format!("f{id}.txt"), matched_terms: matched }
    }

    #[test]
    fn sorts_by_matched_terms_then_id() {
        let results = SearchResults::new(vec![hit(3, 1), hit(1, 2), hit(2, 2)]);
        assert_eq!(results.file_ids(), vec![FileId(1), FileId(2), FileId(3)]);
        assert_eq!(results.hits()[0].matched_terms, 2);
        assert_eq!(results.paths()[2], "f3.txt");
    }

    #[test]
    fn empty_results() {
        let results = SearchResults::default();
        assert!(results.is_empty());
        assert_eq!(results.len(), 0);
        assert!(results.file_ids().is_empty());
    }

    #[test]
    fn truncate_keeps_best() {
        let mut results = SearchResults::new(vec![hit(1, 3), hit(2, 2), hit(3, 1)]);
        results.truncate(2);
        assert_eq!(results.len(), 2);
        assert_eq!(results.hits()[1].file_id, FileId(2));
    }

    #[test]
    fn into_iterator_yields_sorted_hits() {
        let results = SearchResults::new(vec![hit(2, 1), hit(1, 5)]);
        let collected: Vec<Hit> = results.into_iter().collect();
        assert_eq!(collected[0].file_id, FileId(1));
    }
}
