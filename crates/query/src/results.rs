//! Search results, and the cross-shard merge of per-shard result sets.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dsearch_index::FileId;

/// One matching file.
///
/// The path is an `Arc<str>` so converting results to their cross-shard
/// [`RankedHit`] form ([`SearchResults::ranked`]) is a reference-count bump
/// per hit, not a string copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hit {
    /// The matching file's id.
    pub file_id: FileId,
    /// The matching file's path.
    pub path: Arc<str>,
    /// Number of query terms the file matched (the secondary ranking key).
    pub matched_terms: usize,
    /// BM25 relevance score (`0.0` for unranked boolean evaluation).
    pub score: f32,
}

/// Maps a score to a `u32` whose unsigned order equals [`f32::total_cmp`]
/// order, so float-keyed heap entries and hash-map keys stay `Ord`/`Eq`.
fn score_rank_bits(score: f32) -> u32 {
    let bits = score.to_bits();
    if bits & 0x8000_0000 == 0 {
        bits | 0x8000_0000
    } else {
        !bits
    }
}

/// The shared result order: descending score, then descending
/// `matched_terms`, then ascending path (ids are shard-local, so the path is
/// the tie-break that survives re-sharding), then ascending file id.
fn rank_cmp(a: &Hit, b: &Hit) -> std::cmp::Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| b.matched_terms.cmp(&a.matched_terms))
        .then_with(|| a.path.cmp(&b.path))
        .then_with(|| a.file_id.cmp(&b.file_id))
}

/// An ordered list of hits.
///
/// Hits are sorted by descending score, then descending `matched_terms`,
/// ties broken by ascending path (then file id) so results are deterministic
/// and agree with the cross-shard [`merge_ranked`] order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchResults {
    hits: Vec<Hit>,
}

impl SearchResults {
    /// Builds results from unsorted hits.
    #[must_use]
    pub fn new(mut hits: Vec<Hit>) -> Self {
        hits.sort_by(rank_cmp);
        SearchResults { hits }
    }

    /// The hits, best first.
    #[must_use]
    pub fn hits(&self) -> &[Hit] {
        &self.hits
    }

    /// Number of hits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Returns `true` when nothing matched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// The matching file ids, best first.
    #[must_use]
    pub fn file_ids(&self) -> Vec<FileId> {
        self.hits.iter().map(|h| h.file_id).collect()
    }

    /// The matching paths, best first.
    #[must_use]
    pub fn paths(&self) -> Vec<&str> {
        self.hits.iter().map(|h| &*h.path).collect()
    }

    /// Truncates the results to the best `n` hits.
    pub fn truncate(&mut self, n: usize) {
        self.hits.truncate(n);
    }

    /// Converts the hits into the path-keyed form that crosses shard
    /// boundaries (shard-local file ids do not survive the wire).  Paths are
    /// shared `Arc<str>`s, so this clones no string data.
    #[must_use]
    pub fn ranked(&self) -> Vec<RankedHit> {
        self.hits
            .iter()
            .map(|h| RankedHit {
                path: Arc::clone(&h.path),
                matched_terms: h.matched_terms,
                score: h.score,
            })
            .collect()
    }
}

impl IntoIterator for SearchResults {
    type Item = Hit;
    type IntoIter = std::vec::IntoIter<Hit>;

    fn into_iter(self) -> Self::IntoIter {
        self.hits.into_iter()
    }
}

/// A ranked hit as it travels between shards.
///
/// File ids are shard-local (two `dsearch serve` processes both start at id
/// 0), so cross-shard results are keyed on the path instead.  The merge order
/// is descending score, then descending `matched_terms`, with ties broken by
/// ascending path — deterministic whatever order the shards assigned their
/// ids in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedHit {
    /// The matching file's path.
    pub path: Arc<str>,
    /// Number of query terms the file matched (the secondary ranking key).
    pub matched_terms: usize,
    /// BM25 relevance score (`0.0` for unranked boolean evaluation).
    pub score: f32,
}

impl RankedHit {
    /// Builds a hit (convenience for tests and fixtures).
    #[must_use]
    pub fn new(path: impl Into<Arc<str>>, matched_terms: usize, score: f32) -> Self {
        RankedHit { path: path.into(), matched_terms, score }
    }

    /// The cross-shard merge key: descending score, then descending
    /// `matched_terms`, ties broken by ascending path.  The score is mapped
    /// to its total-order bits so the key is `Ord` despite the float.
    #[must_use]
    pub fn merge_key(&self) -> (Reverse<u32>, Reverse<usize>, &str) {
        (Reverse(score_rank_bits(self.score)), Reverse(self.matched_terms), &*self.path)
    }
}

/// Merges per-shard ranked result lists into one list in merge-key order
/// (descending score, then descending `matched_terms`, path ascending within
/// a rank), keeping at most `limit` hits.
///
/// This is the scatter-gather counterpart of the k-way posting-list union in
/// `dsearch_index::union_into`: a min-heap over one cursor per shard, so each
/// output hit costs `O(log k)`.  Shard inputs need not be pre-sorted (each
/// list is normalised first).  A path reported by several shards — replicated
/// shards, or a re-routed query racing a rebalance — is kept once with its
/// best merge key: the heap yields hits best-first, so the first occurrence
/// of a path is the one to keep.  Best-first also means the merge can stop as
/// soon as `limit` hits are out, instead of materialising everything and
/// truncating (pass `usize::MAX` for an unbounded merge).
#[must_use]
pub fn merge_ranked(mut parts: Vec<Vec<RankedHit>>, limit: usize) -> Vec<RankedHit> {
    /// Heap entry: the hit's merge key plus its (shard, position) cursor.
    type Cursor<'a> = Reverse<((Reverse<u32>, Reverse<usize>, &'a str), usize, usize)>;

    for part in &mut parts {
        part.sort_by(|a, b| a.merge_key().cmp(&b.merge_key()));
    }
    let mut heap: BinaryHeap<Cursor<'_>> = BinaryHeap::with_capacity(parts.len());
    for (shard, part) in parts.iter().enumerate() {
        if let Some(first) = part.first() {
            heap.push(Reverse((first.merge_key(), shard, 0)));
        }
    }
    let mut out: Vec<RankedHit> = Vec::new();
    let mut seen: HashSet<&str> = HashSet::new();
    while out.len() < limit {
        let Some(Reverse((_, shard, pos))) = heap.pop() else { break };
        let hit = &parts[shard][pos];
        if seen.insert(&*hit.path) {
            out.push(hit.clone());
        }
        if let Some(next) = parts[shard].get(pos + 1) {
            heap.push(Reverse((next.merge_key(), shard, pos + 1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(id: u32, matched: usize) -> Hit {
        Hit {
            file_id: FileId(id),
            path: format!("f{id}.txt").into(),
            matched_terms: matched,
            score: 0.0,
        }
    }

    fn scored_hit(id: u32, matched: usize, score: f32) -> Hit {
        Hit {
            file_id: FileId(id),
            path: format!("f{id}.txt").into(),
            matched_terms: matched,
            score,
        }
    }

    #[test]
    fn sorts_by_matched_terms_then_path() {
        let results = SearchResults::new(vec![hit(3, 1), hit(1, 2), hit(2, 2)]);
        assert_eq!(results.file_ids(), vec![FileId(1), FileId(2), FileId(3)]);
        assert_eq!(results.hits()[0].matched_terms, 2);
        assert_eq!(results.paths()[2], "f3.txt");
    }

    #[test]
    fn score_dominates_matched_terms() {
        let results = SearchResults::new(vec![
            scored_hit(1, 3, 0.5),
            scored_hit(2, 1, 2.5),
            scored_hit(3, 2, 2.5),
        ]);
        // Highest score first; within a score tie, more matched terms first.
        assert_eq!(results.file_ids(), vec![FileId(3), FileId(2), FileId(1)]);
    }

    #[test]
    fn empty_results() {
        let results = SearchResults::default();
        assert!(results.is_empty());
        assert_eq!(results.len(), 0);
        assert!(results.file_ids().is_empty());
    }

    #[test]
    fn truncate_keeps_best() {
        let mut results = SearchResults::new(vec![hit(1, 3), hit(2, 2), hit(3, 1)]);
        results.truncate(2);
        assert_eq!(results.len(), 2);
        assert_eq!(results.hits()[1].file_id, FileId(2));
    }

    #[test]
    fn into_iterator_yields_sorted_hits() {
        let results = SearchResults::new(vec![hit(2, 1), hit(1, 5)]);
        let collected: Vec<Hit> = results.into_iter().collect();
        assert_eq!(collected[0].file_id, FileId(1));
    }

    fn ranked(path: &str, matched: usize) -> RankedHit {
        RankedHit::new(path, matched, 0.0)
    }

    #[test]
    fn ranked_conversion_preserves_order_and_shares_paths() {
        let results = SearchResults::new(vec![scored_hit(3, 1, 0.25), scored_hit(1, 2, 1.5)]);
        let ranked = results.ranked();
        assert_eq!(
            ranked,
            vec![RankedHit::new("f1.txt", 2, 1.5), RankedHit::new("f3.txt", 1, 0.25)]
        );
        // The conversion shares the hit's path allocation instead of cloning.
        assert!(Arc::ptr_eq(&ranked[0].path, &results.hits()[0].path));
    }

    #[test]
    fn merge_ranked_interleaves_shards_best_first() {
        let merged = merge_ranked(
            vec![
                vec![ranked("a.txt", 2), ranked("c.txt", 1)],
                vec![ranked("b.txt", 2), ranked("d.txt", 1)],
            ],
            usize::MAX,
        );
        assert_eq!(
            merged,
            vec![ranked("a.txt", 2), ranked("b.txt", 2), ranked("c.txt", 1), ranked("d.txt", 1)]
        );
    }

    #[test]
    fn merge_ranked_orders_by_score_before_matched_terms() {
        let merged = merge_ranked(
            vec![
                vec![RankedHit::new("a.txt", 3, 0.5), RankedHit::new("c.txt", 1, 4.0)],
                vec![RankedHit::new("b.txt", 1, 2.0)],
            ],
            usize::MAX,
        );
        assert_eq!(
            merged,
            vec![
                RankedHit::new("c.txt", 1, 4.0),
                RankedHit::new("b.txt", 1, 2.0),
                RankedHit::new("a.txt", 3, 0.5)
            ]
        );
    }

    #[test]
    fn merge_ranked_dedupes_by_path_keeping_best_rank() {
        // The same path reported by two shards (replication) keeps its
        // highest-ranked occurrence, whichever shard reported it.
        let merged = merge_ranked(
            vec![vec![ranked("a.txt", 1), ranked("b.txt", 1)], vec![ranked("a.txt", 3)]],
            usize::MAX,
        );
        assert_eq!(merged, vec![ranked("a.txt", 3), ranked("b.txt", 1)]);
        let scored = merge_ranked(
            vec![vec![RankedHit::new("a.txt", 1, 0.5)], vec![RankedHit::new("a.txt", 1, 1.5)]],
            usize::MAX,
        );
        assert_eq!(scored, vec![RankedHit::new("a.txt", 1, 1.5)]);
    }

    #[test]
    fn merge_ranked_stops_at_the_limit() {
        let merged = merge_ranked(
            vec![
                vec![ranked("a.txt", 3), ranked("c.txt", 1)],
                vec![ranked("b.txt", 2), ranked("d.txt", 1)],
            ],
            2,
        );
        assert_eq!(merged, vec![ranked("a.txt", 3), ranked("b.txt", 2)]);
        assert!(merge_ranked(vec![vec![ranked("a.txt", 1)]], 0).is_empty());
    }

    #[test]
    fn merge_ranked_normalises_unsorted_inputs() {
        // Per-shard inputs sorted by shard-local file id (the wire order) may
        // have path ties in any order; the merge re-sorts each part.
        let merged = merge_ranked(vec![vec![ranked("z.txt", 1), ranked("a.txt", 2)], vec![]], 8);
        assert_eq!(merged, vec![ranked("a.txt", 2), ranked("z.txt", 1)]);
        assert!(merge_ranked(vec![], usize::MAX).is_empty());
        assert!(merge_ranked(vec![vec![], vec![]], usize::MAX).is_empty());
    }

    #[test]
    fn score_rank_bits_orders_like_total_cmp() {
        let values = [f32::NEG_INFINITY, -1.5, -0.0, 0.0, 0.25, 1.0, f32::INFINITY];
        for a in values {
            for b in values {
                assert_eq!(
                    score_rank_bits(a).cmp(&score_rank_bits(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }
}
