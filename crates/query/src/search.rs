//! Query evaluation over single and replicated indices.
//!
//! [`SingleIndexSearcher`] serves the common case (Implementations 1 and 2
//! end with one index).  [`MultiIndexSearcher`] serves Implementation 3: the
//! replicas are never joined, so a query is evaluated against every replica
//! and the partial results are combined — optionally with one thread per
//! replica, which is the parallel-query idea the paper sketches as future
//! work.
//!
//! # The cursor evaluation path
//!
//! [`SearchBackend::postings`] returns a [`Postings`] — borrowed straight
//! out of the index whenever possible (a raw slice *or* a block-compressed
//! list of a sealed shard), materialised only when several shards or
//! prefix-matched terms had to be merged.  The default
//! [`SearchBackend::search`] evaluates each `AND` group over
//! [`PostingsCursor`]s:
//!
//! 1. every required term's postings are fetched (a group with any unknown
//!    term is dead and skipped outright);
//! 2. the lists are ordered by ascending length, so the intermediate result
//!    can never exceed the rarest term's list (selectivity ordering);
//! 3. intersections run through [`intersect_cursors_into`]: two uncompressed
//!    lists take the tuned slice path (linear merge or gallop), while any
//!    compressed operand leapfrogs by `seek`, skipping whole blocks of the
//!    longer list via its skip table without decoding them;
//! 4. `NOT` terms are subtracted the same way via
//!    [`difference_cursors_into`];
//! 5. everything writes into one pair of scratch buffers reused across every
//!    operator of the query.
//!
//! A single-term group never copies an uncompressed posting list at all (the
//! hits are read directly off the borrowed slice); a compressed single-term
//! result is decoded exactly once, straight into the scratch buffer.

use dsearch_index::{
    difference_cursors_into, intersect_cursors_into, DocTable, FileId, InMemoryIndex, IndexSet,
    PostingCursor, Postings, PostingsCursor, SliceCursor,
};
use dsearch_text::Term;

use crate::query::{Query, QueryTerm};
use crate::results::{Hit, SearchResults};

/// When the rarest required list of an `AND` group has at most this many ids,
/// skip the generic leapfrog/scratch-swap machinery: copy the tiny list once
/// and probe each remaining list with a single forward-only `seek` per id.
/// The generic path costs two cursor setups plus a buffer swap per operator,
/// which dominates sub-microsecond queries (the PR 4 `1 ∩ 20k` regression).
const TINY_AND: usize = 4;

/// Anything queries can be evaluated against.
pub trait SearchBackend {
    /// The posting list for one term (empty when the term is unknown).
    ///
    /// Implementations should borrow from their underlying index whenever
    /// they can — [`Postings::Owned`] is for lookups that had to merge.
    fn postings(&self, term: &Term) -> Postings<'_>;

    /// The union of the posting lists of every indexed term starting with
    /// `prefix` (used for `word*` queries).
    fn prefix_postings(&self, prefix: &str) -> Postings<'_>;

    /// The path registered for a file id.
    fn path_of(&self, id: FileId) -> Option<&str>;

    /// Cooperative cancellation checkpoint, consulted by the default
    /// evaluator between query groups and between posting-cursor operator
    /// passes.  A backend with a deadline returns `true` to stop evaluation
    /// mid-flight (a huge `OR` over cold postings must not run to completion
    /// after its budget is gone); the partial result it yields is the
    /// caller's to discard.  The default never cancels.
    fn should_cancel(&self) -> bool {
        false
    }

    /// Evaluates a query, producing ranked results.
    fn search(&self, query: &Query) -> SearchResults {
        let hits = self
            .matched_ids(query)
            .into_iter()
            .map(|(id, matched_terms)| Hit {
                file_id: id,
                path: self.path_of(id).map_or_else(|| "<unknown>".into(), std::sync::Arc::from),
                matched_terms,
                score: 0.0,
            })
            .collect();
        SearchResults::new(hits)
    }

    /// Boolean query evaluation: the deduplicated matching file ids, sorted
    /// ascending, each with the matched-term count of its best `OR` group.
    /// This is the engine under [`SearchBackend::search`]; the BM25 scorer
    /// reuses it to enumerate candidates without materialising paths.
    fn matched_ids(&self, query: &Query) -> Vec<(FileId, usize)> {
        let mut matched: Vec<(FileId, usize)> = Vec::new();
        // One pair of scratch buffers, reused by every AND/NOT operator of
        // every group; `acc` holds the running result once an operator ran.
        let mut acc: Vec<FileId> = Vec::new();
        let mut next: Vec<FileId> = Vec::new();
        'groups: for group in query.groups() {
            if self.should_cancel() {
                break 'groups;
            }
            // Fetch all required lists up front; any empty list kills the
            // whole conjunction before a single merge step runs.
            let mut lists: Vec<Postings<'_>> = Vec::with_capacity(group.required().len());
            let mut dead = false;
            for term in group.required() {
                let postings = match term {
                    QueryTerm::Exact(term) => self.postings(term),
                    QueryTerm::Prefix(prefix) => self.prefix_postings(prefix),
                };
                if postings.is_empty() {
                    dead = true;
                    break;
                }
                lists.push(postings);
            }
            if dead || lists.is_empty() {
                continue;
            }
            // Selectivity ordering: intersect smallest-first so every
            // intermediate result is bounded by the rarest term's list.
            lists.sort_by_key(Postings::len);

            // `in_scratch` tracks whether the running result lives in `acc`
            // or is still the (borrowed, undecoded) smallest input list.
            let mut in_scratch = false;
            if lists.len() >= 2 && lists[0].len() <= TINY_AND {
                // Tiny-slice fast path: the rarest list bounds the result to
                // a handful of ids, so probe each other list directly —
                // `acc` ids ascend, so one cursor per list seeks forward.
                lists[0].copy_into(&mut acc);
                in_scratch = true;
                for postings in lists.iter().skip(1) {
                    if acc.is_empty() {
                        break;
                    }
                    let mut cursor = postings.cursor();
                    acc.retain(|&id| cursor.seek(id) == Some(id));
                }
            } else {
                for postings in lists.iter().skip(1) {
                    // Each pass is a full posting-cursor sweep: check the
                    // budget between them so a long conjunction stops as
                    // soon as it is dead work.
                    if self.should_cancel() {
                        break 'groups;
                    }
                    let current = if in_scratch {
                        PostingsCursor::Slice(SliceCursor::new(&acc))
                    } else {
                        lists[0].cursor()
                    };
                    intersect_cursors_into(current, postings.cursor(), &mut next);
                    std::mem::swap(&mut acc, &mut next);
                    in_scratch = true;
                    if acc.is_empty() {
                        break;
                    }
                }
            }
            // NOT terms: subtract the postings of every excluded term.
            for term in group.excluded() {
                if in_scratch && acc.is_empty() {
                    break;
                }
                if self.should_cancel() {
                    break 'groups;
                }
                let excluded = self.postings(term);
                if excluded.is_empty() {
                    continue;
                }
                let current = if in_scratch {
                    PostingsCursor::Slice(SliceCursor::new(&acc))
                } else {
                    lists[0].cursor()
                };
                difference_cursors_into(current, excluded.cursor(), &mut next);
                std::mem::swap(&mut acc, &mut next);
                in_scratch = true;
            }
            if !in_scratch {
                // Single required term, no operator ran.  A borrowed slice is
                // read in place; a compressed list decodes exactly once into
                // the reused scratch buffer.
                match lists[0].try_view() {
                    Some(view) => {
                        matched.extend(view.iter().map(|id| (id, group.len())));
                        continue;
                    }
                    None => lists[0].copy_into(&mut acc),
                }
            }
            matched.extend(acc.iter().map(|&id| (id, group.len())));
        }
        // A document matching several OR groups keeps its best (highest
        // matched-term) group.
        matched.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| b.1.cmp(&a.1)));
        matched.dedup_by_key(|(id, _)| *id);
        matched
    }
}

/// Searches one joined index.
#[derive(Debug, Clone, Copy)]
pub struct SingleIndexSearcher<'a> {
    index: &'a InMemoryIndex,
    docs: &'a DocTable,
}

impl<'a> SingleIndexSearcher<'a> {
    /// Creates a searcher over `index` with paths resolved through `docs`.
    #[must_use]
    pub fn new(index: &'a InMemoryIndex, docs: &'a DocTable) -> Self {
        SingleIndexSearcher { index, docs }
    }
}

impl SearchBackend for SingleIndexSearcher<'_> {
    fn postings(&self, term: &Term) -> Postings<'_> {
        // The exact-term fast path: a borrow, never a clone.
        match self.index.postings(term) {
            Some(list) => Postings::Borrowed(list),
            None => Postings::empty(),
        }
    }

    fn prefix_postings(&self, prefix: &str) -> Postings<'_> {
        Postings::union_of(self.index.prefix_lists(prefix))
    }

    fn path_of(&self, id: FileId) -> Option<&str> {
        self.docs.path(id)
    }
}

/// Searches the un-joined replica set of Implementation 3.
#[derive(Debug, Clone, Copy)]
pub struct MultiIndexSearcher<'a> {
    set: &'a IndexSet,
    docs: &'a DocTable,
    parallel: bool,
}

impl<'a> MultiIndexSearcher<'a> {
    /// Creates a sequential multi-index searcher.
    #[must_use]
    pub fn new(set: &'a IndexSet, docs: &'a DocTable) -> Self {
        MultiIndexSearcher { set, docs, parallel: false }
    }

    /// Makes term lookups fan out with one thread per replica.
    ///
    /// Worth it only for large replica counts or long queries; provided to
    /// reproduce the paper's "search can work with multiple indices in
    /// parallel" claim.  Applies to exact-term *and* prefix lookups.
    #[must_use]
    pub fn with_parallel_lookup(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Number of replicas consulted per lookup.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.set.replica_count()
    }
}

impl SearchBackend for MultiIndexSearcher<'_> {
    fn postings(&self, term: &Term) -> Postings<'_> {
        // A term living in at most one replica stays borrowed; only genuine
        // cross-replica overlap pays for a k-way merge.
        self.set.term_postings(term, self.parallel)
    }

    fn prefix_postings(&self, prefix: &str) -> Postings<'_> {
        self.set.prefix_term_postings(prefix, self.parallel)
    }

    fn path_of(&self, id: FileId) -> Option<&str> {
        self.docs.path(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds one joined index and an equivalent 3-replica set over the same
    /// tiny document collection.
    fn fixture() -> (InMemoryIndex, IndexSet, DocTable) {
        let docs_content: &[(&str, &[&str])] = &[
            ("a.txt", &["rust", "parallel", "index"]),
            ("b.txt", &["rust", "search"]),
            ("c.txt", &["java", "search", "index"]),
            ("d.txt", &["rust", "java"]),
            ("e.txt", &["parallel", "search", "rust"]),
        ];
        let mut table = DocTable::new();
        let mut joined = InMemoryIndex::new();
        let mut replicas: Vec<InMemoryIndex> = (0..3).map(|_| InMemoryIndex::new()).collect();
        for (i, (path, words)) in docs_content.iter().enumerate() {
            let id = table.insert(*path);
            let terms: Vec<Term> = words.iter().map(|w| Term::from(*w)).collect();
            joined.insert_file(id, terms.clone());
            replicas[i % 3].insert_file(id, terms);
        }
        (joined, IndexSet::new(replicas), table)
    }

    #[test]
    fn single_term_query() {
        let (index, _, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        let results = searcher.search(&Query::parse("rust").unwrap());
        assert_eq!(results.len(), 4);
        assert!(results.paths().contains(&"a.txt"));
        assert!(!results.paths().contains(&"c.txt"));
    }

    #[test]
    fn exact_term_lookup_is_borrowed() {
        let (index, set, docs) = fixture();
        let single = SingleIndexSearcher::new(&index, &docs);
        // Known term against one index: a borrow straight out of the map.
        assert!(matches!(single.postings(&Term::from("rust")), Postings::Borrowed(_)));
        // Unknown term: the static empty list, still no allocation.
        let missing = single.postings(&Term::from("cobol"));
        assert!(matches!(missing, Postings::Borrowed(list) if list.is_empty()));
        // A term living in exactly one replica stays borrowed even through
        // the multi-index searcher.
        let multi = MultiIndexSearcher::new(&set, &docs);
        assert!(matches!(
            multi.postings(&Term::from("java")),
            Postings::Borrowed(_) | Postings::Owned(_)
        ));
    }

    #[test]
    fn and_query_intersects() {
        let (index, _, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        let results = searcher.search(&Query::parse("rust search").unwrap());
        assert_eq!(results.paths(), vec!["b.txt", "e.txt"]);
    }

    #[test]
    fn or_query_unions_and_ranks_by_matched_terms() {
        let (index, _, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        let results = searcher.search(&Query::parse("rust parallel OR java").unwrap());
        // a.txt and e.txt match both terms of the first group (2 matched
        // terms); c.txt and d.txt match "java" (1 matched term).
        assert_eq!(results.len(), 4);
        assert_eq!(results.hits()[0].matched_terms, 2);
        assert!(results.paths()[..2].contains(&"a.txt"));
        assert!(results.paths()[..2].contains(&"e.txt"));
    }

    #[test]
    fn unknown_terms_produce_no_hits() {
        let (index, _, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        let results = searcher.search(&Query::parse("nonexistent").unwrap());
        assert!(results.is_empty());
        let results = searcher.search(&Query::parse("rust nonexistent").unwrap());
        assert!(results.is_empty());
    }

    #[test]
    fn multi_index_matches_single_index() {
        let (index, set, docs) = fixture();
        let single = SingleIndexSearcher::new(&index, &docs);
        let multi = MultiIndexSearcher::new(&set, &docs);
        let multi_par = MultiIndexSearcher::new(&set, &docs).with_parallel_lookup(true);
        assert_eq!(multi.replica_count(), 3);

        for raw in [
            "rust",
            "rust search",
            "index OR java",
            "parallel rust OR java search",
            "rust java index OR search",
        ] {
            let q = Query::parse(raw).unwrap();
            let expected = single.search(&q);
            assert_eq!(multi.search(&q), expected, "sequential multi, query {raw:?}");
            assert_eq!(multi_par.search(&q), expected, "parallel multi, query {raw:?}");
        }
    }

    #[test]
    fn not_terms_exclude_documents() {
        let (index, set, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        // All rust documents except the ones also mentioning java.
        let results = searcher.search(&Query::parse("rust NOT java").unwrap());
        assert_eq!(results.paths(), vec!["a.txt", "b.txt", "e.txt"]);
        // Dash syntax and multi-replica backend agree.
        let multi = MultiIndexSearcher::new(&set, &docs);
        assert_eq!(multi.search(&Query::parse("rust -java").unwrap()), results);
        // Excluding a term that never occurs changes nothing.
        let unchanged = searcher.search(&Query::parse("rust NOT cobol").unwrap());
        assert_eq!(unchanged.len(), 4);
        // Subtracting down to nothing short-circuits later exclusions.
        let none = searcher.search(&Query::parse("java NOT java NOT rust").unwrap());
        assert!(none.is_empty());
    }

    #[test]
    fn prefix_queries_expand_over_index_terms() {
        let (index, set, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        // "ja*" matches "java"; "par*" matches "parallel".
        let results = searcher.search(&Query::parse("ja*").unwrap());
        assert_eq!(results.paths(), vec!["c.txt", "d.txt"]);
        let results = searcher.search(&Query::parse("par* search").unwrap());
        assert_eq!(results.paths(), vec!["e.txt"]);
        // Prefix matching nothing yields no hits.
        assert!(searcher.search(&Query::parse("zz*").unwrap()).is_empty());
        // Multi-index prefix expansion covers every replica, sequentially
        // and with parallel lookup.
        let multi = MultiIndexSearcher::new(&set, &docs);
        let multi_par = MultiIndexSearcher::new(&set, &docs).with_parallel_lookup(true);
        let expected = searcher.search(&Query::parse("ja*").unwrap());
        assert_eq!(multi.search(&Query::parse("ja*").unwrap()), expected);
        assert_eq!(multi_par.search(&Query::parse("ja*").unwrap()), expected);
    }

    #[test]
    fn sealed_dictionary_does_not_change_results() {
        let (mut index, set, docs) = fixture();
        let queries =
            ["rust", "rust search", "ja* OR par*", "inde*", "rust NOT java", "s* r* OR p*"];
        let unsealed: Vec<SearchResults> = {
            let searcher = SingleIndexSearcher::new(&index, &docs);
            queries.iter().map(|q| searcher.search(&Query::parse(q).unwrap())).collect()
        };
        index.build_dictionary();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        for (raw, expected) in queries.iter().zip(unsealed) {
            assert_eq!(searcher.search(&Query::parse(raw).unwrap()), expected, "query {raw:?}");
        }
        // Multi-index searchers agree too (replicas unsealed).
        let multi = MultiIndexSearcher::new(&set, &docs);
        for raw in queries {
            assert_eq!(
                multi.search(&Query::parse(raw).unwrap()),
                searcher.search(&Query::parse(raw).unwrap()),
                "query {raw:?}"
            );
        }
    }

    #[test]
    fn duplicate_document_across_or_groups_is_reported_once() {
        let (index, _, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        // b.txt matches both groups.
        let results = searcher.search(&Query::parse("rust OR search").unwrap());
        let b_hits = results.paths().iter().filter(|p| **p == "b.txt").count();
        assert_eq!(b_hits, 1);
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn tiny_and_fast_path_matches_generic_intersection() {
        // One rare term (1–3 postings) against mid/common terms: the rare
        // side takes the TINY_AND seek path, and widening it past TINY_AND
        // exercises the generic leapfrog on the same corpus for comparison.
        let mut docs = DocTable::new();
        let mut index = InMemoryIndex::new();
        for d in 0..500u32 {
            let id = docs.insert(format!("doc{d:04}.txt"));
            let mut words = vec![Term::from("common")];
            if d % 2 == 0 {
                words.push(Term::from("even"));
            }
            if d % 181 == 0 {
                words.push(Term::from("rare"));
            }
            if d % 31 == 0 {
                words.push(Term::from("mid"));
            }
            index.insert_file(id, words);
        }
        let searcher = SingleIndexSearcher::new(&index, &docs);
        // rare: docs 0, 181, 362 → 3 ids ≤ TINY_AND; rare∩even = 0, 362.
        let results = searcher.search(&Query::parse("rare even common").unwrap());
        assert_eq!(results.paths(), vec!["doc0000.txt", "doc0362.txt"]);
        // A NOT after the tiny path still subtracts from the scratch result.
        let results = searcher.search(&Query::parse("rare even NOT mid").unwrap());
        assert_eq!(results.paths(), vec!["doc0362.txt"]);
        // mid (17 ids) ∩ even goes through the generic path; cross-check a
        // shared document against the tiny-path result above.
        let generic = searcher.search(&Query::parse("mid even common").unwrap());
        assert!(generic.paths().contains(&"doc0000.txt"));
        assert_eq!(generic.len(), 9, "mid ∩ even: d % 62 == 0");
    }

    #[test]
    fn cancellation_stops_evaluation_between_groups() {
        use std::cell::Cell;
        struct CancellingSearcher<'a> {
            inner: SingleIndexSearcher<'a>,
            budget: Cell<usize>,
        }
        impl SearchBackend for CancellingSearcher<'_> {
            fn postings(&self, term: &Term) -> Postings<'_> {
                self.inner.postings(term)
            }
            fn prefix_postings(&self, prefix: &str) -> Postings<'_> {
                self.inner.prefix_postings(prefix)
            }
            fn path_of(&self, id: FileId) -> Option<&str> {
                self.inner.path_of(id)
            }
            fn should_cancel(&self) -> bool {
                let left = self.budget.get();
                if left == 0 {
                    return true;
                }
                self.budget.set(left - 1);
                false
            }
        }
        let (index, _, docs) = fixture();
        let query = Query::parse("rust OR java").unwrap();
        // Budget 0: cancelled before the first group, nothing evaluates.
        let searcher = CancellingSearcher {
            inner: SingleIndexSearcher::new(&index, &docs),
            budget: Cell::new(0),
        };
        assert!(searcher.search(&query).is_empty());
        // Budget 1: the first OR group evaluates, the second is cut off —
        // the caller sees a strict subset it knows to discard.
        let searcher = CancellingSearcher {
            inner: SingleIndexSearcher::new(&index, &docs),
            budget: Cell::new(1),
        };
        let partial = searcher.search(&query);
        assert_eq!(partial.len(), 4, "only the rust group ran");
        // A backend that never cancels is unaffected.
        assert_eq!(SingleIndexSearcher::new(&index, &docs).search(&query).len(), 5);
    }

    #[test]
    fn path_of_unknown_id_is_placeholder() {
        let (index, _, _) = fixture();
        let empty_docs = DocTable::new();
        let searcher = SingleIndexSearcher::new(&index, &empty_docs);
        let results = searcher.search(&Query::parse("rust").unwrap());
        assert!(results.hits().iter().all(|h| &*h.path == "<unknown>"));
    }
}
