//! Query evaluation over single and replicated indices.
//!
//! [`SingleIndexSearcher`] serves the common case (Implementations 1 and 2
//! end with one index).  [`MultiIndexSearcher`] serves Implementation 3: the
//! replicas are never joined, so a query is evaluated against every replica
//! and the partial results are combined — optionally with one thread per
//! replica, which is the parallel-query idea the paper sketches as future
//! work.

use dsearch_index::{DocTable, FileId, InMemoryIndex, IndexSet, PostingList};
use dsearch_text::Term;

use crate::query::{Query, QueryTerm};
use crate::results::{Hit, SearchResults};

/// Anything queries can be evaluated against.
pub trait SearchBackend {
    /// The posting list for one term (empty when the term is unknown).
    fn postings(&self, term: &Term) -> PostingList;

    /// The union of the posting lists of every indexed term starting with
    /// `prefix` (used for `word*` queries).
    fn prefix_postings(&self, prefix: &str) -> PostingList;

    /// The path registered for a file id.
    fn path_of(&self, id: FileId) -> Option<&str>;

    /// Evaluates a query, producing ranked results.
    fn search(&self, query: &Query) -> SearchResults {
        let mut matched: Vec<(FileId, usize)> = Vec::new();
        for group in query.groups() {
            // AND within the group: intersect the posting lists, smallest
            // first would be the classic optimisation; lists here are small
            // enough that plain left-to-right intersection is fine.
            let mut iter = group.required().iter();
            let Some(first) = iter.next() else { continue };
            let mut acc = match first {
                QueryTerm::Exact(term) => self.postings(term),
                QueryTerm::Prefix(prefix) => self.prefix_postings(prefix),
            };
            for term in iter {
                if acc.is_empty() {
                    break;
                }
                let next = match term {
                    QueryTerm::Exact(term) => self.postings(term),
                    QueryTerm::Prefix(prefix) => self.prefix_postings(prefix),
                };
                acc = acc.intersect(&next);
            }
            // NOT terms: subtract the postings of every excluded term.
            for term in group.excluded() {
                if acc.is_empty() {
                    break;
                }
                acc = acc.difference(&self.postings(term));
            }
            for id in acc.iter() {
                matched.push((id, group.len()));
            }
        }
        // A document matching several OR groups keeps its best (highest
        // matched-term) group.
        matched.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| b.1.cmp(&a.1)));
        matched.dedup_by_key(|(id, _)| *id);

        let hits = matched
            .into_iter()
            .map(|(id, matched_terms)| Hit {
                file_id: id,
                path: self.path_of(id).unwrap_or("<unknown>").to_owned(),
                matched_terms,
            })
            .collect();
        SearchResults::new(hits)
    }
}

/// Searches one joined index.
#[derive(Debug, Clone, Copy)]
pub struct SingleIndexSearcher<'a> {
    index: &'a InMemoryIndex,
    docs: &'a DocTable,
}

impl<'a> SingleIndexSearcher<'a> {
    /// Creates a searcher over `index` with paths resolved through `docs`.
    #[must_use]
    pub fn new(index: &'a InMemoryIndex, docs: &'a DocTable) -> Self {
        SingleIndexSearcher { index, docs }
    }
}

impl SearchBackend for SingleIndexSearcher<'_> {
    fn postings(&self, term: &Term) -> PostingList {
        self.index.postings(term).cloned().unwrap_or_default()
    }

    fn prefix_postings(&self, prefix: &str) -> PostingList {
        let mut out = PostingList::new();
        for (term, list) in self.index.iter() {
            if term.as_str().starts_with(prefix) {
                out.union_with(list);
            }
        }
        out
    }

    fn path_of(&self, id: FileId) -> Option<&str> {
        self.docs.path(id)
    }
}

/// Searches the un-joined replica set of Implementation 3.
#[derive(Debug, Clone, Copy)]
pub struct MultiIndexSearcher<'a> {
    set: &'a IndexSet,
    docs: &'a DocTable,
    parallel: bool,
}

impl<'a> MultiIndexSearcher<'a> {
    /// Creates a sequential multi-index searcher.
    #[must_use]
    pub fn new(set: &'a IndexSet, docs: &'a DocTable) -> Self {
        MultiIndexSearcher { set, docs, parallel: false }
    }

    /// Makes term lookups fan out with one thread per replica.
    ///
    /// Worth it only for large replica counts or long queries; provided to
    /// reproduce the paper's "search can work with multiple indices in
    /// parallel" claim.
    #[must_use]
    pub fn with_parallel_lookup(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Number of replicas consulted per lookup.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.set.replica_count()
    }
}

impl SearchBackend for MultiIndexSearcher<'_> {
    fn postings(&self, term: &Term) -> PostingList {
        if !self.parallel || self.set.replica_count() <= 1 {
            return self.set.postings(term);
        }
        // One lookup thread per replica, merged at the end.
        let partials: Vec<PostingList> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .set
                .replicas()
                .iter()
                .map(|replica| {
                    scope.spawn(move || replica.postings(term).cloned().unwrap_or_default())
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("replica lookup panicked")).collect()
        });
        let mut out = PostingList::new();
        for p in &partials {
            out.union_with(p);
        }
        out
    }

    fn prefix_postings(&self, prefix: &str) -> PostingList {
        let mut out = PostingList::new();
        for replica in self.set.replicas() {
            for (term, list) in replica.iter() {
                if term.as_str().starts_with(prefix) {
                    out.union_with(list);
                }
            }
        }
        out
    }

    fn path_of(&self, id: FileId) -> Option<&str> {
        self.docs.path(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds one joined index and an equivalent 3-replica set over the same
    /// tiny document collection.
    fn fixture() -> (InMemoryIndex, IndexSet, DocTable) {
        let docs_content: &[(&str, &[&str])] = &[
            ("a.txt", &["rust", "parallel", "index"]),
            ("b.txt", &["rust", "search"]),
            ("c.txt", &["java", "search", "index"]),
            ("d.txt", &["rust", "java"]),
            ("e.txt", &["parallel", "search", "rust"]),
        ];
        let mut table = DocTable::new();
        let mut joined = InMemoryIndex::new();
        let mut replicas: Vec<InMemoryIndex> = (0..3).map(|_| InMemoryIndex::new()).collect();
        for (i, (path, words)) in docs_content.iter().enumerate() {
            let id = table.insert(*path);
            let terms: Vec<Term> = words.iter().map(|w| Term::from(*w)).collect();
            joined.insert_file(id, terms.clone());
            replicas[i % 3].insert_file(id, terms);
        }
        (joined, IndexSet::new(replicas), table)
    }

    #[test]
    fn single_term_query() {
        let (index, _, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        let results = searcher.search(&Query::parse("rust").unwrap());
        assert_eq!(results.len(), 4);
        assert!(results.paths().contains(&"a.txt"));
        assert!(!results.paths().contains(&"c.txt"));
    }

    #[test]
    fn and_query_intersects() {
        let (index, _, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        let results = searcher.search(&Query::parse("rust search").unwrap());
        assert_eq!(results.paths(), vec!["b.txt", "e.txt"]);
    }

    #[test]
    fn or_query_unions_and_ranks_by_matched_terms() {
        let (index, _, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        let results = searcher.search(&Query::parse("rust parallel OR java").unwrap());
        // a.txt and e.txt match both terms of the first group (2 matched
        // terms); c.txt and d.txt match "java" (1 matched term).
        assert_eq!(results.len(), 4);
        assert_eq!(results.hits()[0].matched_terms, 2);
        assert!(results.paths()[..2].contains(&"a.txt"));
        assert!(results.paths()[..2].contains(&"e.txt"));
    }

    #[test]
    fn unknown_terms_produce_no_hits() {
        let (index, _, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        let results = searcher.search(&Query::parse("nonexistent").unwrap());
        assert!(results.is_empty());
        let results = searcher.search(&Query::parse("rust nonexistent").unwrap());
        assert!(results.is_empty());
    }

    #[test]
    fn multi_index_matches_single_index() {
        let (index, set, docs) = fixture();
        let single = SingleIndexSearcher::new(&index, &docs);
        let multi = MultiIndexSearcher::new(&set, &docs);
        let multi_par = MultiIndexSearcher::new(&set, &docs).with_parallel_lookup(true);
        assert_eq!(multi.replica_count(), 3);

        for raw in [
            "rust",
            "rust search",
            "index OR java",
            "parallel rust OR java search",
            "rust java index OR search",
        ] {
            let q = Query::parse(raw).unwrap();
            let expected = single.search(&q);
            assert_eq!(multi.search(&q), expected, "sequential multi, query {raw:?}");
            assert_eq!(multi_par.search(&q), expected, "parallel multi, query {raw:?}");
        }
    }

    #[test]
    fn not_terms_exclude_documents() {
        let (index, set, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        // All rust documents except the ones also mentioning java.
        let results = searcher.search(&Query::parse("rust NOT java").unwrap());
        assert_eq!(results.paths(), vec!["a.txt", "b.txt", "e.txt"]);
        // Dash syntax and multi-replica backend agree.
        let multi = MultiIndexSearcher::new(&set, &docs);
        assert_eq!(multi.search(&Query::parse("rust -java").unwrap()), results);
        // Excluding a term that never occurs changes nothing.
        let unchanged = searcher.search(&Query::parse("rust NOT cobol").unwrap());
        assert_eq!(unchanged.len(), 4);
    }

    #[test]
    fn prefix_queries_expand_over_index_terms() {
        let (index, set, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        // "ja*" matches "java"; "par*" matches "parallel".
        let results = searcher.search(&Query::parse("ja*").unwrap());
        assert_eq!(results.paths(), vec!["c.txt", "d.txt"]);
        let results = searcher.search(&Query::parse("par* search").unwrap());
        assert_eq!(results.paths(), vec!["e.txt"]);
        // Prefix matching nothing yields no hits.
        assert!(searcher.search(&Query::parse("zz*").unwrap()).is_empty());
        // Multi-index prefix expansion covers every replica.
        let multi = MultiIndexSearcher::new(&set, &docs);
        assert_eq!(
            multi.search(&Query::parse("ja*").unwrap()),
            searcher.search(&Query::parse("ja*").unwrap())
        );
    }

    #[test]
    fn duplicate_document_across_or_groups_is_reported_once() {
        let (index, _, docs) = fixture();
        let searcher = SingleIndexSearcher::new(&index, &docs);
        // b.txt matches both groups.
        let results = searcher.search(&Query::parse("rust OR search").unwrap());
        let b_hits = results.paths().iter().filter(|p| **p == "b.txt").count();
        assert_eq!(b_hits, 1);
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn path_of_unknown_id_is_placeholder() {
        let (index, _, _) = fixture();
        let empty_docs = DocTable::new();
        let searcher = SingleIndexSearcher::new(&index, &empty_docs);
        let results = searcher.search(&Query::parse("rust").unwrap());
        assert!(results.hits().iter().all(|h| h.path == "<unknown>"));
    }
}
