//! BM25 top-k ranked retrieval with block-max (WAND) pruning.
//!
//! [`search_topk`] evaluates a scorable query against one or more
//! [`SealedShard`]s and returns the `k` best-scoring documents.  Two
//! evaluation strategies share one candidate heap:
//!
//! * **Block-max WAND** for pure disjunctions (every `OR` group is a single
//!   exact term).  One [`BlockCursor`] per term forms a frontier sorted by
//!   current document id.  Each round finds the *pivot*: the first document
//!   whose per-list score upper bounds can sum past the heap threshold θ
//!   (the k-th best score so far).  Documents before the pivot are provably
//!   beaten and are skipped without touching their postings.  When the
//!   frontier aligns on the pivot, the coarse per-list bounds are refined
//!   with the quantized per-*block* maxima sealed next to the postings: if
//!   even the block bounds cannot reach θ, every aligned cursor seeks past
//!   the shortest of its current blocks — whole blocks are never decoded.
//! * **Exhaustive scoring** for everything else scorable (multi-term `AND`
//!   groups): the boolean evaluator enumerates matching ids, then one
//!   forward-seeking cursor per distinct term scores each match.
//!
//! Both paths accumulate per-term contributions in ascending query-term
//! order and sum them in `f64` before one final rounding to `f32`, so a
//! pruned evaluation is bit-identical to an exhaustive one — the property
//! the `topk_properties` suite checks.  Scoring is per shard (each shard has
//! its own document count and average length), which makes a multi-shard
//! snapshot score exactly like the same documents routed across separate
//! shard processes.
//!
//! Queries with prefix terms or exclusions are not scorable (a prefix is
//! many terms of wildly different rarity; `NOT` contributes no score) —
//! [`search_topk`] returns `None` and the caller falls back to the unranked
//! boolean path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsearch_index::{
    bm25_score, BlockCursor, DocTable, FileId, PostingCursor, Postings, SealedShard, BM25_K1,
};
use dsearch_text::Term;

use crate::query::Query;
use crate::results::{Hit, SearchResults};
use crate::search::SearchBackend;

/// Comparison slack for the floating-point pruning threshold.  Upper bounds
/// and scores are compared in `f64`; the slack absorbs the quantization of
/// block maxima and the one `f32` rounding so pruning never drops a document
/// the exhaustive path would keep.
const SLACK: f64 = 1e-5;

/// Counters describing how much work block-max pruning avoided.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// Posting blocks entered (decoded or served arithmetically).
    pub blocks_scored: u64,
    /// Posting blocks the skip table and block-max bounds jumped over.
    pub blocks_skipped: u64,
    /// Time spent resolving dictionary entries and opening posting cursors —
    /// the ranked path's share of the `postings` trace stage.
    pub lookup: Duration,
}

impl PruneStats {
    /// Accumulates another evaluation's counters into this one.
    pub fn merge(&mut self, other: PruneStats) {
        self.blocks_scored += other.blocks_scored;
        self.blocks_skipped += other.blocks_skipped;
        self.lookup += other.lookup;
    }
}

/// Whether a query can be BM25-scored at all: at least one group, no prefix
/// terms, no exclusions.
#[must_use]
pub fn scorable(query: &Query) -> bool {
    !query.groups().is_empty() && !query.has_prefix_terms() && !query.has_exclusions()
}

/// A fully scored candidate document.  `Ord` is "greater = better": higher
/// score, then more matched terms, then *smaller* path, then smaller id —
/// the same order [`SearchResults`] sorts by.
struct Scored<'a> {
    score: f32,
    matched: usize,
    path: &'a str,
    id: FileId,
}

impl PartialEq for Scored<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Scored<'_> {}

impl PartialOrd for Scored<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scored<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.matched.cmp(&other.matched))
            .then_with(|| other.path.cmp(self.path))
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// A bounded min-heap of the best `k` candidates seen so far.  The worst
/// kept candidate sits at the top; its score is the pruning threshold θ.
struct TopK<'a> {
    heap: BinaryHeap<Reverse<Scored<'a>>>,
    k: usize,
}

impl<'a> TopK<'a> {
    fn new(k: usize) -> Self {
        TopK { heap: BinaryHeap::with_capacity(k.saturating_add(1).min(1024)), k }
    }

    /// The score every further candidate has to beat (`-inf` until full).
    fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.heap.peek().map_or(f64::NEG_INFINITY, |Reverse(worst)| f64::from(worst.score))
        }
    }

    fn offer(&mut self, candidate: Scored<'a>) {
        if self.heap.len() < self.k {
            self.heap.push(Reverse(candidate));
        } else if self.heap.peek().is_some_and(|Reverse(worst)| candidate > *worst) {
            self.heap.pop();
            self.heap.push(Reverse(candidate));
        }
    }
}

/// Evaluates `query` against `shards`, returning the `k` best-scoring hits
/// and the pruning counters, or `None` when the query is not scorable (the
/// caller then takes the unranked boolean path).  `should_cancel` is the
/// cooperative deadline checkpoint; on cancellation the partial result is
/// returned for the caller to discard.
#[must_use]
pub fn search_topk(
    shards: &[SealedShard],
    docs: &DocTable,
    query: &Query,
    k: usize,
    should_cancel: &dyn Fn() -> bool,
) -> Option<(SearchResults, PruneStats)> {
    if !scorable(query) {
        return None;
    }
    let mut stats = PruneStats::default();
    if k == 0 {
        return Some((SearchResults::default(), stats));
    }
    // Distinct exact query terms, sorted: contribution order is fixed by
    // this list, which is what makes pruned and exhaustive sums identical.
    let terms = query.terms();
    let pure_or = query.groups().iter().all(|g| g.required().len() == 1);
    let mut top = TopK::new(k);
    for shard in shards {
        if should_cancel() {
            break;
        }
        if pure_or {
            shard_wand(shard, docs, &terms, &mut top, &mut stats, should_cancel);
        } else {
            shard_scored(shard, docs, query, &terms, &mut top, &mut stats, should_cancel);
        }
    }
    let mut hits: Vec<Hit> = top
        .heap
        .into_iter()
        .map(|Reverse(c)| Hit {
            file_id: c.id,
            path: Arc::from(c.path),
            matched_terms: c.matched,
            score: c.score,
        })
        .collect();
    // A document id served by several shards (replicated seals) keeps its
    // best-scoring occurrence; partitioned snapshots never hit this.
    hits.sort_by(|a, b| a.file_id.cmp(&b.file_id).then_with(|| b.score.total_cmp(&a.score)));
    hits.dedup_by_key(|h| h.file_id);
    let mut results = SearchResults::new(hits);
    results.truncate(k);
    Some((results, stats))
}

/// One term's posting cursor plus its score bounds.
struct WandCursor<'a> {
    /// Index into the sorted distinct-term list (fixes summation order).
    term: usize,
    idf: f32,
    /// Admissible upper bound on any single posting's score in this list.
    list_bound: f64,
    /// Whether the list carries sealed per-block maxima.
    scored: bool,
    cursor: BlockCursor<'a>,
}

impl WandCursor<'_> {
    /// Upper bound for the cursor's *current block* (falls back to the list
    /// bound for unscored lists).
    fn block_bound(&self) -> f64 {
        if self.scored {
            f64::from(self.cursor.current_block_bound())
        } else {
            self.list_bound
        }
    }
}

/// Folds a finished cursor's visit counters into the stats.
fn retire(stats: &mut PruneStats, cursor: &BlockCursor<'_>) {
    let visited = cursor.blocks_visited();
    stats.blocks_scored += visited;
    stats.blocks_skipped += (cursor.total_blocks() as u64).saturating_sub(visited);
}

/// Builds one scoring cursor per query term present in the shard.
fn scoring_cursors<'a>(shard: &'a SealedShard, terms: &[&Term]) -> Vec<WandCursor<'a>> {
    terms
        .iter()
        .enumerate()
        .filter_map(|(term, t)| {
            let postings = shard.postings(t)?;
            if postings.is_empty() {
                return None;
            }
            let idf = shard.idf(postings.len());
            let max = postings.max_score();
            let list_bound = if max > 0.0 {
                f64::from(max)
            } else if shard.has_scoring() {
                // Scored shard but unscored list (shouldn't happen with v3
                // seals): the analytic BM25 ceiling keeps pruning admissible.
                f64::from(idf) * f64::from(1.0 + BM25_K1)
            } else {
                // Unscored shard: tf = 1 and neutral norms everywhere, so
                // every posting scores exactly idf.
                f64::from(idf)
            };
            Some(WandCursor { term, idf, list_bound, scored: max > 0.0, cursor: postings.cursor() })
        })
        .collect()
}

/// Sums per-term contributions in term order, in `f64`, rounding once.
fn sum_contributions(scratch: &mut [(usize, f32)]) -> f32 {
    scratch.sort_unstable_by_key(|&(term, _)| term);
    let mut sum = 0.0f64;
    for &(_, s) in scratch.iter() {
        sum += f64::from(s);
    }
    sum as f32
}

/// Block-max WAND over one shard: every group is a single exact term, so the
/// query is a disjunction and the document score is the sum over the terms
/// that contain it.
fn shard_wand<'a>(
    shard: &SealedShard,
    docs: &'a DocTable,
    terms: &[&Term],
    top: &mut TopK<'a>,
    stats: &mut PruneStats,
    should_cancel: &dyn Fn() -> bool,
) {
    let resolve_start = Instant::now();
    let mut live = scoring_cursors(shard, terms);
    stats.lookup += resolve_start.elapsed();
    let mut scratch: Vec<(usize, f32)> = Vec::with_capacity(live.len());
    loop {
        if should_cancel() {
            break;
        }
        live.retain(|c| {
            let alive = c.cursor.current().is_some();
            if !alive {
                retire(stats, &c.cursor);
            }
            alive
        });
        if live.is_empty() {
            return;
        }
        // Frontier order: ascending current document id.
        live.sort_unstable_by_key(|c| c.cursor.current());
        let threshold = top.threshold();
        // Pivot: first frontier position where the prefix sum of list-level
        // upper bounds can still beat θ.  Documents before the pivot doc are
        // beaten by construction and are never visited.
        let mut upper = 0.0f64;
        let mut pivot = None;
        for (i, c) in live.iter().enumerate() {
            upper += c.list_bound;
            if upper + SLACK > threshold {
                pivot = Some(i);
                break;
            }
        }
        let Some(p) = pivot else { break };
        let pivot_doc = live[p].cursor.current().expect("live cursor");
        if live[0].cursor.current() == Some(pivot_doc) {
            // The frontier is aligned: cursors 0..=p (plus any further ones
            // parked on the same doc) all sit on the pivot doc.  Refine the
            // coarse bound with the sealed per-block maxima before paying
            // for a full evaluation.
            let mut aligned = p;
            while aligned + 1 < live.len() && live[aligned + 1].cursor.current() == Some(pivot_doc)
            {
                aligned += 1;
            }
            let block_upper: f64 = live[..=aligned].iter().map(WandCursor::block_bound).sum();
            if block_upper + SLACK > threshold {
                // Score the pivot doc exactly and advance past it.
                scratch.clear();
                let norm = shard.doc_norm(pivot_doc);
                for c in &mut live[..=aligned] {
                    let tf = c.cursor.current_tf();
                    scratch.push((c.term, bm25_score(c.idf, tf, norm)));
                    c.cursor.advance();
                }
                let matched = scratch.len();
                let score = sum_contributions(&mut scratch);
                let path = docs.path(pivot_doc).unwrap_or("<unknown>");
                top.offer(Scored { score, matched, path, id: pivot_doc });
            } else {
                // Even the block maxima cannot reach θ: every aligned block
                // is dead.  Jump past the shortest aligned block (or to the
                // next frontier doc, whichever is closer) without decoding.
                let boundary = live[..=aligned]
                    .iter()
                    .filter_map(|c| c.cursor.current_block_last())
                    .min()
                    .map_or(u32::MAX, |id| id.as_u32());
                let mut target = boundary.saturating_add(1);
                if let Some(next) = live.get(aligned + 1).and_then(|c| c.cursor.current()) {
                    target = target.min(next.as_u32());
                }
                if target > pivot_doc.as_u32() {
                    for c in &mut live[..=aligned] {
                        c.cursor.seek(FileId(target));
                    }
                } else {
                    // Only reachable when ids saturate at u32::MAX; step
                    // forward to guarantee progress.
                    for c in &mut live[..=aligned] {
                        c.cursor.advance();
                    }
                }
            }
        } else {
            // Not aligned: everything before the pivot doc cannot win, so
            // leapfrog the leading cursors straight to it.
            for c in &mut live {
                match c.cursor.current() {
                    Some(current) if current < pivot_doc => {
                        c.cursor.seek(pivot_doc);
                    }
                    _ => break,
                }
            }
        }
    }
    for c in &live {
        retire(stats, &c.cursor);
    }
}

/// Boolean-match adapter over one sealed shard, used by the exhaustive
/// scored path to enumerate matching ids without materialising paths.
struct ShardBackend<'a> {
    shard: &'a SealedShard,
}

impl SearchBackend for ShardBackend<'_> {
    fn postings(&self, term: &Term) -> Postings<'_> {
        match self.shard.postings(term) {
            Some(list) => Postings::Compressed(list),
            None => Postings::empty(),
        }
    }

    fn prefix_postings(&self, prefix: &str) -> Postings<'_> {
        // Unreachable through `search_topk` (prefix queries are not
        // scorable), implemented for trait completeness.
        Postings::union_of_compressed(self.shard.prefix_postings(prefix).iter().collect())
    }

    fn path_of(&self, _id: FileId) -> Option<&str> {
        None
    }
}

/// Exhaustive scored evaluation of one shard: boolean-match the query, then
/// score every matching document with one forward-seeking cursor per term.
fn shard_scored<'a>(
    shard: &SealedShard,
    docs: &'a DocTable,
    query: &Query,
    terms: &[&Term],
    top: &mut TopK<'a>,
    stats: &mut PruneStats,
    should_cancel: &dyn Fn() -> bool,
) {
    // Matching ids come back ascending, so each term cursor only ever moves
    // forward across the whole scoring sweep.
    let matched = ShardBackend { shard }.matched_ids(query);
    let resolve_start = Instant::now();
    let mut cursors = scoring_cursors(shard, terms);
    stats.lookup += resolve_start.elapsed();
    let mut scratch: Vec<(usize, f32)> = Vec::with_capacity(cursors.len());
    for (chunk, (id, _)) in matched.into_iter().enumerate() {
        // The boolean pass already honoured the budget; re-check it every
        // few hundred scored documents.
        if chunk % 256 == 0 && should_cancel() {
            break;
        }
        let norm = shard.doc_norm(id);
        scratch.clear();
        for c in &mut cursors {
            if c.cursor.seek(id) == Some(id) {
                scratch.push((c.term, bm25_score(c.idf, c.cursor.current_tf(), norm)));
            }
        }
        let matched_terms = scratch.len();
        let score = sum_contributions(&mut scratch);
        let path = docs.path(id).unwrap_or("<unknown>");
        top.offer(Scored { score, matched: matched_terms, path, id });
    }
    for c in &cursors {
        retire(stats, &c.cursor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsearch_index::InMemoryIndex;

    fn no_cancel() -> bool {
        false
    }

    /// Three docs over two terms with distinct frequencies and lengths.
    fn fixture() -> (Vec<SealedShard>, DocTable) {
        let mut docs = DocTable::new();
        let a = docs.insert("a.txt");
        let b = docs.insert("b.txt");
        let c = docs.insert("c.txt");
        let mut index = InMemoryIndex::new();
        index.insert_file_counted(a, [(Term::from("rust"), 4u32), (Term::from("index"), 1)]);
        index.insert_file_counted(b, [(Term::from("rust"), 1u32)]);
        index.insert_file_counted(c, [(Term::from("index"), 2u32), (Term::from("query"), 2)]);
        (vec![SealedShard::from_index(&index)], docs)
    }

    #[test]
    fn prefix_and_not_queries_are_not_scorable() {
        let (shards, docs) = fixture();
        for raw in ["rus*", "rust NOT index", "rust inde*"] {
            let q = Query::parse(raw).unwrap();
            assert!(!scorable(&q), "{raw}");
            assert!(search_topk(&shards, &docs, &q, 10, &no_cancel).is_none(), "{raw}");
        }
        assert!(scorable(&Query::parse("rust index").unwrap()));
    }

    #[test]
    fn single_term_ranks_by_term_frequency() {
        let (shards, docs) = fixture();
        let q = Query::parse("rust").unwrap();
        let (results, _) = search_topk(&shards, &docs, &q, 10, &no_cancel).unwrap();
        // a.txt has tf 4 (and is only slightly longer): it outranks b.txt.
        assert_eq!(results.paths(), vec!["a.txt", "b.txt"]);
        assert!(results.hits()[0].score > results.hits()[1].score);
        assert!(results.hits().iter().all(|h| h.score > 0.0));
    }

    #[test]
    fn or_query_sums_scores_and_respects_k() {
        let (shards, docs) = fixture();
        let q = Query::parse("rust OR index OR query").unwrap();
        let (all, _) = search_topk(&shards, &docs, &q, 10, &no_cancel).unwrap();
        assert_eq!(all.len(), 3);
        let (top1, _) = search_topk(&shards, &docs, &q, 1, &no_cancel).unwrap();
        assert_eq!(top1.len(), 1);
        assert_eq!(top1.paths()[0], all.paths()[0]);
        assert_eq!(top1.hits()[0].score.to_bits(), all.hits()[0].score.to_bits());
    }

    #[test]
    fn and_query_scores_only_conjunctive_matches() {
        let (shards, docs) = fixture();
        let q = Query::parse("rust index").unwrap();
        let (results, _) = search_topk(&shards, &docs, &q, 10, &no_cancel).unwrap();
        assert_eq!(results.paths(), vec!["a.txt"]);
        assert_eq!(results.hits()[0].matched_terms, 2);
    }

    #[test]
    fn k_zero_and_unknown_terms_yield_empty_results() {
        let (shards, docs) = fixture();
        let q = Query::parse("rust").unwrap();
        let (empty, _) = search_topk(&shards, &docs, &q, 0, &no_cancel).unwrap();
        assert!(empty.is_empty());
        let missing = Query::parse("cobol OR fortran").unwrap();
        let (none, stats) = search_topk(&shards, &docs, &missing, 5, &no_cancel).unwrap();
        assert!(none.is_empty());
        // No cursors were opened, so no blocks were touched (the lookup
        // timer still ran — only the counters are zero by construction).
        assert_eq!((stats.blocks_scored, stats.blocks_skipped), (0, 0));
    }

    #[test]
    fn cancellation_returns_partial_results() {
        let (shards, docs) = fixture();
        let q = Query::parse("rust OR index").unwrap();
        let cancelled = search_topk(&shards, &docs, &q, 10, &(|| true)).unwrap();
        assert!(cancelled.0.is_empty());
    }

    #[test]
    fn multi_shard_snapshot_scores_like_separate_shards() {
        // The same corpus sealed as one shard vs two: per-shard scoring
        // statistics differ, but each document's score is computed from its
        // own shard either way, so a combined evaluation must agree with
        // evaluating the shards one at a time.
        let mut docs = DocTable::new();
        let ids: Vec<FileId> = (0..6).map(|i| docs.insert(format!("doc{i}.txt"))).collect();
        let mut left = InMemoryIndex::new();
        let mut right = InMemoryIndex::new();
        for (i, &id) in ids.iter().enumerate() {
            let target = if i % 2 == 0 { &mut left } else { &mut right };
            let tf = 1 + (i as u32 % 3);
            target.insert_file_counted(id, [(Term::from("alpha"), tf), (Term::from("beta"), 1)]);
        }
        let shards = vec![SealedShard::from_index(&left), SealedShard::from_index(&right)];
        let q = Query::parse("alpha OR beta").unwrap();
        let (combined, _) = search_topk(&shards, &docs, &q, 10, &no_cancel).unwrap();
        let (l, _) = search_topk(&shards[..1], &docs, &q, 10, &no_cancel).unwrap();
        let (r, _) = search_topk(&shards[1..], &docs, &q, 10, &no_cancel).unwrap();
        let mut separate: Vec<Hit> = l.into_iter().chain(r).collect();
        separate.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| b.matched_terms.cmp(&a.matched_terms))
                .then_with(|| a.path.cmp(&b.path))
        });
        let combined_keys: Vec<(u32, &str)> =
            combined.hits().iter().map(|h| (h.score.to_bits(), &*h.path)).collect();
        let separate_keys: Vec<(u32, &str)> =
            separate.iter().map(|h| (h.score.to_bits(), &*h.path)).collect();
        assert_eq!(combined_keys, separate_keys);
    }

    #[test]
    fn pruning_skips_blocks_on_skewed_lists() {
        // A long common list where one rare term concentrates the top
        // scores: WAND should skip most of the common list's blocks.
        let mut docs = DocTable::new();
        let mut index = InMemoryIndex::new();
        for i in 0..20_000u32 {
            let id = docs.insert(format!("doc{i:05}.txt"));
            let mut words = vec![(Term::from("common"), 1u32)];
            if i % 100 == 0 && i < 1_000 {
                words.push((Term::from("rare"), 8));
            }
            index.insert_file_counted(id, words);
        }
        let shards = vec![SealedShard::from_index(&index)];
        let q = Query::parse("common OR rare").unwrap();
        let (results, stats) = search_topk(&shards, &docs, &q, 10, &no_cancel).unwrap();
        assert_eq!(results.len(), 10);
        // Every top hit contains the rare high-scoring term.
        assert!(results.hits().iter().all(|h| h.matched_terms == 2));
        assert!(
            stats.blocks_skipped > stats.blocks_scored,
            "expected pruning to skip most blocks: {stats:?}"
        );
    }

    #[test]
    fn wand_matches_exhaustive_on_dense_overlap() {
        // Dense overlapping lists keep the frontier aligned constantly —
        // the worst case for pruning; results must still match the
        // exhaustive evaluation exactly.
        let mut docs = DocTable::new();
        let mut index = InMemoryIndex::new();
        for i in 0..3_000u32 {
            let id = docs.insert(format!("doc{i:04}.txt"));
            let mut words = vec![(Term::from("a"), 1 + i % 4)];
            if i % 2 == 0 {
                words.push((Term::from("b"), 1 + i % 3));
            }
            if i % 3 == 0 {
                words.push((Term::from("c"), 1));
            }
            index.insert_file_counted(id, words);
        }
        let shards = vec![SealedShard::from_index(&index)];
        let docs_ref = &docs;
        let q = Query::parse("a OR b OR c").unwrap();
        let (pruned, _) = search_topk(&shards, docs_ref, &q, 25, &no_cancel).unwrap();
        // Exhaustive reference: force the non-WAND path through a
        // conjunctive query shape that matches the same docs?  Simpler: use
        // a huge k so nothing is ever pruned.
        let (exhaustive, _) = search_topk(&shards, docs_ref, &q, usize::MAX, &no_cancel).unwrap();
        for (p, e) in pruned.hits().iter().zip(exhaustive.hits().iter().take(25)) {
            assert_eq!(p.score.to_bits(), e.score.to_bits());
            assert_eq!(p.path, e.path);
            assert_eq!(p.matched_terms, e.matched_terms);
        }
    }
}
