//! Properties of BM25 top-k ranked retrieval: block-max (WAND) pruning is
//! invisible.  For any corpus, any scorable query shape and any `k`, the
//! pruned evaluation must return bit-identical scores, in the same order,
//! as an exhaustive evaluation that scores every posting — including tie
//! runs of exact duplicate documents and `k` values past the match count.

use proptest::prelude::*;

use dsearch_index::{DocTable, InMemoryIndex, SealedShard};
use dsearch_query::{search_topk, Query, SearchResults};
use dsearch_text::Term;

/// A small vocabulary so generated documents overlap on terms and score
/// ties are common.
const VOCAB: &[&str] = &["alpha", "beta", "gamma", "delta", "omega"];

fn term_subset(mask: u8) -> Vec<&'static str> {
    VOCAB.iter().enumerate().filter(|(i, _)| mask & (1 << i) != 0).map(|(_, w)| *w).collect()
}

/// A document's terms and frequencies are a pure function of its mask, so
/// equal masks produce exact duplicates — documents that tie on score and
/// matched terms and must be ordered by path alone.
fn doc_terms(mask: u8) -> Vec<(Term, u32)> {
    VOCAB
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(i, w)| (Term::from(*w), 1 + u32::from(mask.wrapping_mul(i as u8 + 3)) % 5))
        .collect()
}

/// Seals the corpus as `shards` round-robin partitions of one doc table
/// (paths ascend with insertion order, so path ties equal id ties).
fn seal(masks: &[u8], shards: usize) -> (Vec<SealedShard>, DocTable) {
    let mut docs = DocTable::new();
    let mut indexes: Vec<InMemoryIndex> = (0..shards).map(|_| InMemoryIndex::new()).collect();
    for (i, &mask) in masks.iter().enumerate() {
        let id = docs.insert(format!("doc{i:03}.txt"));
        indexes[i % shards].insert_file_counted(id, doc_terms(mask));
    }
    (indexes.iter().map(SealedShard::from_index).collect(), docs)
}

/// The observable ranking: exact score bits, path, matched terms.
fn keys(results: &SearchResults) -> Vec<(u32, String, usize)> {
    results
        .hits()
        .iter()
        .map(|h| (h.score.to_bits(), h.path.to_string(), h.matched_terms))
        .collect()
}

fn no_cancel() -> bool {
    false
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Pure disjunctions take the block-max WAND path; pruning must be
    /// invisible next to an exhaustive reference for every `k`.
    #[test]
    fn wand_pruned_topk_equals_exhaustive(
        masks in proptest::collection::vec(1u8..32, 1..60),
        qmask in 1u8..32,
        k in 0usize..16,
    ) {
        let (shards, docs) = seal(&masks, 1);
        let raw = term_subset(qmask).join(" OR ");
        let query = Query::parse(&raw).unwrap();
        let (pruned, _) = search_topk(&shards, &docs, &query, k, &no_cancel).unwrap();
        let (full, full_stats) =
            search_topk(&shards, &docs, &query, usize::MAX, &no_cancel).unwrap();
        // With an unbounded k the threshold never rises, so the reference
        // run provably skipped nothing: it is genuinely exhaustive.
        prop_assert_eq!(full_stats.blocks_skipped, 0);
        let mut expected = keys(&full);
        expected.truncate(k);
        prop_assert_eq!(keys(&pruned), expected, "query {:?} k={}", raw, k);
    }

    /// Multi-term `AND` groups take the exhaustive-scoring path (boolean
    /// match, then forward-seeking score cursors); `k` must only truncate.
    #[test]
    fn and_scored_topk_equals_exhaustive(
        masks in proptest::collection::vec(1u8..32, 1..60),
        qmask in 1u8..32,
        k in 0usize..16,
    ) {
        let (shards, docs) = seal(&masks, 1);
        let raw = term_subset(qmask).join(" ");
        let query = Query::parse(&raw).unwrap();
        let (pruned, _) = search_topk(&shards, &docs, &query, k, &no_cancel).unwrap();
        let (full, _) = search_topk(&shards, &docs, &query, usize::MAX, &no_cancel).unwrap();
        let mut expected = keys(&full);
        expected.truncate(k);
        prop_assert_eq!(keys(&pruned), expected, "query {:?} k={}", raw, k);
    }

    /// Masks drawn from {1, 2, 3} make most documents exact duplicates:
    /// long tie runs must come back sorted by score desc, matched desc,
    /// path asc — strictly, since paths are unique.
    #[test]
    fn ties_break_deterministically_by_path(
        masks in proptest::collection::vec(1u8..4, 2..60),
        k in 1usize..20,
    ) {
        let (shards, docs) = seal(&masks, 1);
        let query = Query::parse("alpha OR beta").unwrap();
        let (results, _) = search_topk(&shards, &docs, &query, k, &no_cancel).unwrap();
        for pair in results.hits().windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let ord = b
                .score
                .total_cmp(&a.score)
                .then_with(|| b.matched_terms.cmp(&a.matched_terms))
                .then_with(|| a.path.cmp(&b.path));
            prop_assert_eq!(
                ord,
                std::cmp::Ordering::Less,
                "hit {:?} must strictly outrank {:?}",
                (&a.path, a.score),
                (&b.path, b.score)
            );
        }
    }

    /// Scoring is per shard, so evaluating a partitioned snapshot in one
    /// call equals evaluating each shard alone and merging by rank — the
    /// invariant that lets scores survive scatter-gather routing.
    #[test]
    fn multi_shard_evaluation_equals_per_shard_merge(
        masks in proptest::collection::vec(1u8..32, 1..40),
        shard_count in 1usize..4,
        qmask in 1u8..32,
        k in 1usize..12,
    ) {
        let (shards, docs) = seal(&masks, shard_count);
        let raw = term_subset(qmask).join(" OR ");
        let query = Query::parse(&raw).unwrap();
        let (combined, _) = search_topk(&shards, &docs, &query, k, &no_cancel).unwrap();
        let mut merged: Vec<(u32, String, usize)> = Vec::new();
        for s in 0..shard_count {
            let (part, _) =
                search_topk(&shards[s..=s], &docs, &query, usize::MAX, &no_cancel).unwrap();
            merged.extend(keys(&part));
        }
        merged.sort_by(|a, b| {
            f32::from_bits(b.0)
                .total_cmp(&f32::from_bits(a.0))
                .then_with(|| b.2.cmp(&a.2))
                .then_with(|| a.1.cmp(&b.1))
        });
        merged.truncate(k);
        prop_assert_eq!(
            keys(&combined),
            merged,
            "query {:?} over {} shard(s)",
            raw,
            shard_count
        );
    }
}
