//! Batched query execution and admission control.
//!
//! PR 1's worker pool executed every queued query independently and accepted
//! unbounded load.  This module puts a scheduling layer between the front
//! ends and the workers:
//!
//! * [`QueueGovernor`] — the admission-controlled queue.  Submissions past a
//!   configurable depth bound are shed according to an [`OverloadPolicy`]
//!   (reject the new request, or drop the oldest queued one), and every shed
//!   request is counted in [`ServerStats`](crate::stats::ServerStats) and
//!   answered with [`ServerError::Overloaded`].
//! * **Batch draining** — a worker does not pop one job at a time: it drains
//!   up to [`BatchConfig::max_batch`] queued jobs in one go (optionally
//!   waiting up to [`BatchConfig::max_wait`] for the batch to fill).  All
//!   queries of a batch execute against a single snapshot load, so the whole
//!   batch shares one generation by construction.
//! * [`BatchSearcher`] — a per-batch posting memo.  Queries in one batch that
//!   share terms (or prefix patterns) fetch each posting list once; identical
//!   canonical queries collapse to a single search fanned out to every
//!   waiter (`dedup_hits` in the stats).
//!
//! The scheduler favours latency when idle: with `max_wait == 0` a lone
//! query is executed immediately as a batch of one, while a backlog drains
//! in `max_batch`-sized groups, which is where dedup and the posting memo
//! pay off.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use dsearch_index::{FileId, Postings};
use dsearch_query::SearchBackend;
use dsearch_text::Term;

use crate::engine::ServerError;
use crate::snapshot::IndexSnapshot;
use crate::stats::ServerStats;

/// What to do with a submission when the queue is at its depth bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Refuse the new request (the submitter sees
    /// [`ServerError::Overloaded`] immediately).
    #[default]
    RejectNew,
    /// Admit the new request and shed the oldest queued one (its waiter sees
    /// [`ServerError::Overloaded`]).
    DropOldest,
}

impl std::str::FromStr for OverloadPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reject" | "reject-new" => Ok(OverloadPolicy::RejectNew),
            "drop" | "drop-oldest" => Ok(OverloadPolicy::DropOldest),
            other => Err(format!("unknown overload policy {other:?}; expected reject or drop")),
        }
    }
}

impl std::fmt::Display for OverloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverloadPolicy::RejectNew => f.write_str("reject-new"),
            OverloadPolicy::DropOldest => f.write_str("drop-oldest"),
        }
    }
}

/// The fill window `--batch-wait-us auto` arms (the adaptive controller
/// decides per batch whether lingering that long is worth it).
pub const DEFAULT_AUTO_WAIT: Duration = Duration::from_micros(200);

/// How far back the adaptive controller looks when estimating the arrival
/// rate.  Arrivals older than this say nothing about whether the *next* fill
/// window will see traffic.
const ARRIVAL_LOOKBACK: Duration = Duration::from_millis(100);

/// Most arrival timestamps the governor retains for rate estimation.
const ARRIVAL_SAMPLES: usize = 64;

/// Batching and admission-control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Most jobs one worker drains per batch (must be at least 1).
    pub max_batch: usize,
    /// How long a worker may wait for a partially filled batch to grow.
    /// Zero (the default) means "batch whatever is already queued": no
    /// latency is added when the server is idle, and batches form naturally
    /// from backlog under load.
    pub max_wait: Duration,
    /// Adaptive batching (`--batch-wait-us auto`): linger for `max_wait`
    /// only when the recent arrival rate suggests the partially filled
    /// batch would actually fill within the window; otherwise drain
    /// immediately, skipping the idle-latency tax.  Every decision is
    /// counted (`adaptive_waits=` / `adaptive_skips=` in `!stats`).
    pub adaptive: bool,
    /// Queue-depth bound; `0` disables admission control (unbounded queue).
    pub queue_bound: usize,
    /// What to shed when the queue is at its bound.
    pub overload: OverloadPolicy,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_wait: Duration::ZERO,
            adaptive: false,
            queue_bound: 0,
            overload: OverloadPolicy::RejectNew,
        }
    }
}

/// Anything the governor can queue.  Shedding consumes the job; the
/// implementation must answer the job's waiter with an overload error so a
/// dropped request is a fast failure, never a hang.
pub trait QueueJob: Send {
    /// Consumes the job, answering its waiter with "overloaded".
    fn shed(self);

    /// The absolute instant the job's answer stops being useful (`None`:
    /// no deadline).  The governor sheds already-expired jobs at dequeue
    /// time — executing dead work is strictly worse than dropping it — and
    /// never lingers a fill window past the earliest deadline in the batch.
    fn deadline(&self) -> Option<Instant> {
        None
    }

    /// Consumes the job, answering its waiter with "deadline exceeded".
    /// Defaults to the overload answer for job types without deadlines.
    fn expire(self)
    where
        Self: Sized,
    {
        self.shed();
    }
}

/// One drained batch plus the timing facts a worker needs to attribute
/// latency: when the drain happened (each job's `queue_wait` is the span
/// from its submission to this instant) and how long the worker then
/// lingered for late arrivals (the batch's shared `batch_fill` span).
#[derive(Debug)]
pub struct DrainedBatch<J> {
    /// The drained jobs, oldest first.
    pub jobs: Vec<J>,
    /// When the worker drained the queue.
    pub drained_at: Instant,
    /// How long the worker lingered for the batch to fill (zero unless a
    /// fill window was armed and taken).
    pub fill_wait: Duration,
}

struct GovernorState<J> {
    queue: VecDeque<J>,
    closed: bool,
    /// Timestamps of the most recent submissions (newest at the back), the
    /// adaptive controller's arrival-rate window.
    arrivals: VecDeque<Instant>,
}

/// The admission-controlled MPMC queue between submitters and workers.
///
/// Submitters [`submit`](QueueGovernor::submit) jobs; workers drain them in
/// batches via [`next_batch`](QueueGovernor::next_batch).  The governor
/// enforces [`BatchConfig::queue_bound`] at admission time and records every
/// shed request in the shared [`ServerStats`].  It is generic over the job
/// type so the query engine's worker pool and the scatter-gather router pool
/// share one scheduling layer.
pub struct QueueGovernor<J: QueueJob> {
    state: Mutex<GovernorState<J>>,
    available: Condvar,
    config: BatchConfig,
}

impl<J: QueueJob> QueueGovernor<J> {
    /// Creates an open governor enforcing `config`.
    #[must_use]
    pub fn new(config: BatchConfig) -> Self {
        QueueGovernor {
            state: Mutex::new(GovernorState {
                queue: VecDeque::new(),
                closed: false,
                arrivals: VecDeque::new(),
            }),
            available: Condvar::new(),
            config,
        }
    }

    /// The configuration this governor enforces.
    #[must_use]
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Number of jobs currently queued (a point-in-time gauge).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
    }

    /// Admits one job, shedding according to the overload policy when the
    /// queue is at its bound.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Overloaded`] when the job is rejected under
    /// [`OverloadPolicy::RejectNew`], and [`ServerError::ShuttingDown`] after
    /// [`close`](QueueGovernor::close).
    pub(crate) fn submit(&self, job: J, stats: &ServerStats) -> Result<(), ServerError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(ServerError::ShuttingDown);
        }
        let bound = self.config.queue_bound;
        if bound > 0 && state.queue.len() >= bound {
            match self.config.overload {
                OverloadPolicy::RejectNew => {
                    stats.record_shed();
                    return Err(ServerError::Overloaded);
                }
                OverloadPolicy::DropOldest => {
                    while state.queue.len() >= bound {
                        let victim = state.queue.pop_front().expect("len >= bound >= 1");
                        // The waiter may have given up; that is not an error.
                        victim.shed();
                        stats.record_shed();
                    }
                }
            }
        }
        state.queue.push_back(job);
        if self.config.adaptive {
            if state.arrivals.len() == ARRIVAL_SAMPLES {
                state.arrivals.pop_front();
            }
            state.arrivals.push_back(Instant::now());
        }
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until at least one job is available (or the governor closes),
    /// then drains up to `max_batch` jobs.  With a nonzero `max_wait` the
    /// worker lingers for late arrivals until the batch fills or the window
    /// expires; in [`adaptive`](BatchConfig::adaptive) mode it lingers only
    /// when the recent arrival rate suggests the batch would actually fill,
    /// recording every decision in `stats`.
    ///
    /// Returns `None` only when the governor is closed *and* drained, so
    /// shutdown never discards admitted work.
    pub(crate) fn next_batch(&self, stats: &ServerStats) -> Option<DrainedBatch<J>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        'refill: loop {
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.closed {
                    return None;
                }
                state = self.available.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            let drained = Instant::now();
            let take = self.config.max_batch.min(state.queue.len());
            let mut batch: Vec<J> = Vec::with_capacity(take);
            admit_live(state.queue.drain(..take), drained, &mut batch, stats);
            if batch.is_empty() {
                // Everything drained had already expired; go back to waiting
                // rather than hand a worker an empty batch.
                continue 'refill;
            }

            let mut linger = !self.config.max_wait.is_zero() && batch.len() < self.config.max_batch;
            if linger && self.config.adaptive {
                // Wait only when the batch is likely to fill: project the recent
                // arrival rate over the fill window and compare against the
                // number of free slots.
                let needed = self.config.max_batch - batch.len();
                let expected = expected_arrivals(&state.arrivals, drained, self.config.max_wait);
                linger = expected >= needed as f64;
                stats.record_adaptive_decision(linger);
            }
            let mut fill_wait = Duration::ZERO;
            if linger {
                let window_end = drained + self.config.max_wait;
                while batch.len() < self.config.max_batch && !state.closed {
                    // The window never outlives the most urgent job already
                    // in the batch: lingering past its deadline would turn
                    // the whole batch's answers into dead work.
                    let cap = batch
                        .iter()
                        .filter_map(QueueJob::deadline)
                        .min()
                        .map_or(window_end, |d| window_end.min(d));
                    let Some(left) = cap.checked_duration_since(Instant::now()) else { break };
                    let (next, timeout) =
                        self.available.wait_timeout(state, left).unwrap_or_else(|e| e.into_inner());
                    state = next;
                    let take = (self.config.max_batch - batch.len()).min(state.queue.len());
                    let now = Instant::now();
                    admit_live(state.queue.drain(..take), now, &mut batch, stats);
                    if timeout.timed_out() {
                        break;
                    }
                }
                fill_wait = drained.elapsed();
            }
            return Some(DrainedBatch { jobs: batch, drained_at: drained, fill_wait });
        }
    }

    /// Closes the governor: subsequent submissions fail, workers drain what
    /// is queued and then observe the end of the stream.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.available.notify_all();
    }
}

impl<J: QueueJob> std::fmt::Debug for QueueGovernor<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueGovernor")
            .field("config", &self.config)
            .field("depth", &self.depth())
            .finish()
    }
}

/// Moves drained jobs into `batch`, shedding the ones whose deadline has
/// already passed (answered with "deadline exceeded" and counted as
/// `expired=` sheds).  Surviving deadline-carrying jobs record their
/// remaining budget at dequeue — the queue-pressure signal an operator tunes
/// deadlines against.
fn admit_live<J: QueueJob>(
    jobs: impl Iterator<Item = J>,
    now: Instant,
    batch: &mut Vec<J>,
    stats: &ServerStats,
) {
    for job in jobs {
        match job.deadline() {
            Some(deadline) if deadline <= now => {
                job.expire();
                stats.record_expired_shed();
            }
            deadline => {
                if let Some(deadline) = deadline {
                    stats.record_remaining_budget(deadline.duration_since(now));
                }
                batch.push(job);
            }
        }
    }
}

/// Projects the recent arrival rate over `window`: how many submissions the
/// fill window can be expected to see, judged from the arrivals inside
/// [`ARRIVAL_LOOKBACK`].  The rate is *intervals* over the span from the
/// oldest recent arrival to now — silence since the last arrival drags the
/// estimate down — and fewer than three recent arrivals estimate zero: one
/// stray pair of back-to-back queries on an idle server is no evidence of
/// traffic and must not buy a fill-window linger.
fn expected_arrivals(arrivals: &VecDeque<Instant>, now: Instant, window: Duration) -> f64 {
    let horizon = now.checked_sub(ARRIVAL_LOOKBACK);
    let recent: Vec<Instant> =
        arrivals.iter().copied().filter(|&t| horizon.is_none_or(|h| t >= h) && t <= now).collect();
    if recent.len() < 3 {
        return 0.0;
    }
    let span = now.duration_since(recent[0]).max(Duration::from_micros(1));
    let rate = (recent.len() - 1) as f64 / span.as_secs_f64();
    rate * window.as_secs_f64()
}

/// A memoizing [`SearchBackend`] over one snapshot, scoped to one batch.
///
/// Each distinct exact term or prefix pattern is resolved against the
/// snapshot once; queries later in the batch that mention the same term
/// reuse the memoized posting list.  The memo stores [`Postings`] — borrows
/// straight into the snapshot for single-shard lookups, `Arc`-shared merge
/// results otherwise — so a memo hit costs a pointer copy or an `Arc` bump,
/// never a `Vec` clone.  The memo lives on the worker's stack for the
/// duration of one batch, so it needs no locking and never holds postings
/// beyond the batch.
pub struct BatchSearcher<'a> {
    snapshot: &'a IndexSnapshot,
    terms: RefCell<HashMap<Term, Postings<'a>>>,
    prefixes: RefCell<HashMap<String, Postings<'a>>>,
    memo_hits: Cell<u64>,
    memo_misses: Cell<u64>,
    lookup_time: Cell<Duration>,
    /// Cooperative-cancellation deadline for the evaluation in flight (set
    /// per canonical group by the engine; `None` evaluates to completion).
    deadline: Cell<Option<Instant>>,
    /// Latched when an evaluation was cut off by the deadline, so the engine
    /// knows the returned results are partial and must be discarded.
    cancelled: Cell<bool>,
}

impl<'a> BatchSearcher<'a> {
    /// Creates an empty memo over `snapshot`.
    #[must_use]
    pub fn new(snapshot: &'a IndexSnapshot) -> Self {
        BatchSearcher {
            snapshot,
            terms: RefCell::new(HashMap::new()),
            prefixes: RefCell::new(HashMap::new()),
            memo_hits: Cell::new(0),
            memo_misses: Cell::new(0),
            lookup_time: Cell::new(Duration::ZERO),
            deadline: Cell::new(None),
            cancelled: Cell::new(false),
        }
    }

    /// Arms (or disarms, with `None`) the cooperative-cancellation deadline
    /// for the next evaluation.
    pub fn set_deadline(&self, deadline: Option<Instant>) {
        self.deadline.set(deadline);
    }

    /// Returns whether the last evaluation was cut off by its deadline,
    /// clearing the latch for the next one.
    pub fn take_cancelled(&self) -> bool {
        self.cancelled.replace(false)
    }

    /// Posting lookups answered from the memo.
    #[must_use]
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.get()
    }

    /// Posting lookups that had to consult the snapshot.
    #[must_use]
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses.get()
    }

    /// Wall time spent resolving posting lists (the batch's `postings` trace
    /// stage; whatever remains of evaluation time is intersect/merge work).
    #[must_use]
    pub fn lookup_time(&self) -> Duration {
        self.lookup_time.get()
    }
}

impl<'a> SearchBackend for BatchSearcher<'a> {
    fn postings(&self, term: &Term) -> Postings<'_> {
        if let Some(postings) = self.terms.borrow().get(term) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return postings.clone();
        }
        self.memo_misses.set(self.memo_misses.get() + 1);
        let started = Instant::now();
        // `into_shared` turns a merged (owned) list into an `Arc` so every
        // later memo hit shares it; borrowed lookups stay plain borrows.
        let postings: Postings<'a> = self.snapshot.term_postings(term).into_shared();
        self.lookup_time.set(self.lookup_time.get() + started.elapsed());
        self.terms.borrow_mut().insert(term.clone(), postings.clone());
        postings
    }

    fn prefix_postings(&self, prefix: &str) -> Postings<'_> {
        if let Some(postings) = self.prefixes.borrow().get(prefix) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return postings.clone();
        }
        self.memo_misses.set(self.memo_misses.get() + 1);
        let started = Instant::now();
        let postings: Postings<'a> = self.snapshot.prefix_postings(prefix).into_shared();
        self.lookup_time.set(self.lookup_time.get() + started.elapsed());
        self.prefixes.borrow_mut().insert(prefix.to_owned(), postings.clone());
        postings
    }

    fn path_of(&self, id: FileId) -> Option<&str> {
        self.snapshot.path_of(id)
    }

    fn should_cancel(&self) -> bool {
        let Some(deadline) = self.deadline.get() else { return false };
        if Instant::now() >= deadline {
            self.cancelled.set(true);
            return true;
        }
        false
    }
}

impl std::fmt::Debug for BatchSearcher<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSearcher")
            .field("memo_hits", &self.memo_hits.get())
            .field("memo_misses", &self.memo_misses.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Job, PendingResponse};
    use dsearch_index::{DocTable, InMemoryIndex};
    use dsearch_query::Query;
    use std::sync::mpsc;

    fn job(raw: &str) -> (Job, PendingResponse) {
        job_with_deadline(raw, None)
    }

    fn job_with_deadline(raw: &str, deadline: Option<Instant>) -> (Job, PendingResponse) {
        let (respond, receiver) = mpsc::channel();
        (
            Job { raw: raw.to_owned(), respond, submitted: Instant::now(), deadline },
            PendingResponse::from_receiver(receiver),
        )
    }

    fn governor(config: BatchConfig) -> (QueueGovernor<Job>, ServerStats) {
        (QueueGovernor::new(config), ServerStats::new())
    }

    #[test]
    fn unbounded_governor_admits_everything() {
        let (governor, stats) = governor(BatchConfig::default());
        for i in 0..100 {
            let (j, _pending) = job(&format!("q{i}"));
            governor.submit(j, &stats).unwrap();
        }
        assert_eq!(governor.depth(), 100);
        assert_eq!(stats.shed_count(), 0);
        assert_eq!(governor.config().queue_bound, 0);
    }

    #[test]
    fn reject_new_sheds_the_submission() {
        let (governor, stats) = governor(BatchConfig { queue_bound: 2, ..BatchConfig::default() });
        let (a, _pa) = job("a");
        let (b, _pb) = job("b");
        let (c, _pc) = job("c");
        governor.submit(a, &stats).unwrap();
        governor.submit(b, &stats).unwrap();
        assert_eq!(governor.submit(c, &stats).unwrap_err(), ServerError::Overloaded);
        assert_eq!(governor.depth(), 2);
        assert_eq!(stats.shed_count(), 1);
    }

    #[test]
    fn drop_oldest_sheds_the_head_and_answers_its_waiter() {
        let (governor, stats) = governor(BatchConfig {
            queue_bound: 2,
            overload: OverloadPolicy::DropOldest,
            ..BatchConfig::default()
        });
        let (a, pa) = job("a");
        let (b, _pb) = job("b");
        let (c, _pc) = job("c");
        governor.submit(a, &stats).unwrap();
        governor.submit(b, &stats).unwrap();
        governor.submit(c, &stats).unwrap();
        assert_eq!(governor.depth(), 2);
        assert_eq!(stats.shed_count(), 1);
        // The dropped job's waiter got the overload answer.
        assert_eq!(pa.wait().unwrap_err(), ServerError::Overloaded);
        // The surviving queue is b, c.
        let batch = governor.next_batch(&stats).unwrap();
        let raws: Vec<&str> = batch.jobs.iter().map(|j| j.raw.as_str()).collect();
        assert_eq!(raws, ["b", "c"]);
    }

    #[test]
    fn batches_drain_up_to_max_batch() {
        let (governor, stats) = governor(BatchConfig { max_batch: 3, ..BatchConfig::default() });
        let mut pendings = Vec::new();
        for i in 0..5 {
            let (j, p) = job(&format!("q{i}"));
            governor.submit(j, &stats).unwrap();
            pendings.push(p);
        }
        let first = governor.next_batch(&stats).unwrap();
        assert_eq!(first.jobs.len(), 3);
        // No fill window armed: the drain reports no batch-fill linger.
        assert_eq!(first.fill_wait, Duration::ZERO);
        assert!(first.drained_at.elapsed() < Duration::from_secs(5));
        assert_eq!(governor.next_batch(&stats).unwrap().jobs.len(), 2);
        governor.close();
        assert!(governor.next_batch(&stats).is_none());
    }

    #[test]
    fn closed_governor_rejects_submissions_but_drains() {
        let (governor, stats) = governor(BatchConfig::default());
        let (a, _pa) = job("a");
        governor.submit(a, &stats).unwrap();
        governor.close();
        let (b, _pb) = job("b");
        assert_eq!(governor.submit(b, &stats).unwrap_err(), ServerError::ShuttingDown);
        // Admitted work survives the close.
        assert_eq!(governor.next_batch(&stats).unwrap().jobs.len(), 1);
        assert!(governor.next_batch(&stats).is_none());
    }

    #[test]
    fn max_wait_fills_a_batch_from_late_arrivals() {
        let (governor, stats) = governor(BatchConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(200),
            ..BatchConfig::default()
        });
        let (a, _pa) = job("a");
        governor.submit(a, &stats).unwrap();
        let second = std::thread::spawn({
            let (b, pb) = job("b");
            move || (b, pb)
        });
        let (b, _pb) = second.join().unwrap();
        // Submit the second job from another thread shortly after the worker
        // starts waiting.
        std::thread::scope(|scope| {
            let submitter = scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                governor.submit(b, &stats).unwrap();
            });
            let batch = governor.next_batch(&stats).unwrap();
            assert_eq!(batch.jobs.len(), 2, "late arrival joined the waiting batch");
            assert!(batch.fill_wait > Duration::ZERO, "linger time was recorded");
            submitter.join().unwrap();
        });
    }

    #[test]
    fn adaptive_governor_skips_the_window_when_idle() {
        let (governor, stats) = governor(BatchConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(250),
            adaptive: true,
            ..BatchConfig::default()
        });
        // A single queued job with no recent arrival history: the controller
        // must drain immediately instead of sitting out the fill window.
        let (a, _pa) = job("a");
        governor.submit(a, &stats).unwrap();
        let started = Instant::now();
        let batch = governor.next_batch(&stats).unwrap();
        assert_eq!(batch.jobs.len(), 1);
        assert!(
            started.elapsed() < Duration::from_millis(200),
            "idle adaptive drain waited {:?}",
            started.elapsed()
        );
        assert_eq!(stats.adaptive_skip_count(), 1);
        assert_eq!(stats.adaptive_wait_count(), 0);
    }

    #[test]
    fn adaptive_governor_ignores_a_lone_pair_of_arrivals() {
        let (governor, stats) = governor(BatchConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(250),
            adaptive: true,
            ..BatchConfig::default()
        });
        // Two back-to-back queries on an otherwise idle server: too little
        // evidence of traffic to pay the fill-window linger for.
        for raw in ["a", "b"] {
            let (j, _p) = job(raw);
            governor.submit(j, &stats).unwrap();
        }
        let started = Instant::now();
        let batch = governor.next_batch(&stats).unwrap();
        assert_eq!(batch.jobs.len(), 2);
        assert!(
            started.elapsed() < Duration::from_millis(200),
            "a lone pair bought a linger: {:?}",
            started.elapsed()
        );
        assert_eq!(stats.adaptive_skip_count(), 1);
    }

    #[test]
    fn adaptive_governor_waits_when_arrivals_suggest_a_fill() {
        let (governor, stats) = governor(BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(20),
            adaptive: true,
            ..BatchConfig::default()
        });
        // A burst of arrivals: the measured rate projects far more than the
        // free slots over the window, so the worker lingers.
        let mut pendings = Vec::new();
        for i in 0..40 {
            let (j, p) = job(&format!("q{i}"));
            governor.submit(j, &stats).unwrap();
            pendings.push(p);
        }
        let batch = governor.next_batch(&stats).unwrap();
        // All 40 drain at once (< max_batch), and the decision to linger for
        // more was taken and counted.
        assert_eq!(batch.jobs.len(), 40);
        assert_eq!(stats.adaptive_wait_count(), 1);
        assert_eq!(stats.adaptive_skip_count(), 0);
    }

    #[test]
    fn fixed_window_governors_never_record_adaptive_decisions() {
        let (governor, stats) = governor(BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(5),
            ..BatchConfig::default()
        });
        let (a, _pa) = job("a");
        governor.submit(a, &stats).unwrap();
        let _ = governor.next_batch(&stats).unwrap();
        assert_eq!(stats.adaptive_wait_count() + stats.adaptive_skip_count(), 0);
    }

    #[test]
    fn expired_jobs_are_shed_at_dequeue_with_a_distinct_count() {
        let (governor, stats) = governor(BatchConfig::default());
        let (dead, dead_pending) = job_with_deadline("dead", Some(Instant::now()));
        let (live, _live_pending) =
            job_with_deadline("live", Some(Instant::now() + Duration::from_secs(60)));
        let (plain, _plain_pending) = job("plain");
        governor.submit(dead, &stats).unwrap();
        governor.submit(live, &stats).unwrap();
        governor.submit(plain, &stats).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        let batch = governor.next_batch(&stats).unwrap();
        let raws: Vec<&str> = batch.jobs.iter().map(|j| j.raw.as_str()).collect();
        assert_eq!(raws, ["live", "plain"]);
        // The expired job's waiter got a deadline answer, not a hang, and
        // the shed was attributed to expiry.
        assert_eq!(dead_pending.wait().unwrap_err(), ServerError::DeadlineExceeded);
        assert_eq!(stats.expired_count(), 1);
        assert_eq!(stats.shed_count(), 1);
    }

    #[test]
    fn all_expired_batch_keeps_the_worker_waiting() {
        let (governor, stats) = governor(BatchConfig::default());
        let (dead, _p) = job_with_deadline("dead", Some(Instant::now()));
        governor.submit(dead, &stats).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        governor.close();
        // The only queued job expires at drain: the worker sees the closed
        // end of the stream, never an empty batch.
        assert!(governor.next_batch(&stats).is_none());
        assert_eq!(stats.expired_count(), 1);
    }

    #[test]
    fn fill_window_never_lingers_past_the_earliest_deadline() {
        let (governor, stats) = governor(BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(400),
            ..BatchConfig::default()
        });
        // One job due in 30ms: the 400ms fill window must be cut short.
        let (urgent, _p) =
            job_with_deadline("urgent", Some(Instant::now() + Duration::from_millis(30)));
        governor.submit(urgent, &stats).unwrap();
        let started = Instant::now();
        let batch = governor.next_batch(&stats).unwrap();
        assert_eq!(batch.jobs.len(), 1);
        assert!(
            started.elapsed() < Duration::from_millis(200),
            "linger outlived the deadline: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn overload_policy_parses_and_renders() {
        assert_eq!("reject".parse::<OverloadPolicy>().unwrap(), OverloadPolicy::RejectNew);
        assert_eq!("drop-oldest".parse::<OverloadPolicy>().unwrap(), OverloadPolicy::DropOldest);
        assert!("sideways".parse::<OverloadPolicy>().is_err());
        assert_eq!(OverloadPolicy::DropOldest.to_string(), "drop-oldest");
        assert!(
            format!("{:?}", QueueGovernor::<Job>::new(BatchConfig::default())).contains("depth")
        );
    }

    #[test]
    fn batch_searcher_memoizes_terms_and_prefixes() {
        let mut docs = DocTable::new();
        let mut index = InMemoryIndex::new();
        for (path, words) in [
            ("a.txt", vec!["rust", "search"]),
            ("b.txt", vec!["rust", "index"]),
            ("c.txt", vec!["ruby"]),
        ] {
            let id = docs.insert(path);
            index.insert_file(id, words.into_iter().map(Term::from));
        }
        let snapshot = IndexSnapshot::from_index(index, docs, 1);
        let searcher = BatchSearcher::new(&snapshot);

        // Two queries sharing the term "rust": the second lookup is a memo
        // hit, and both answers match the snapshot's own evaluation.
        for raw in ["rust search", "rust index", "ru*"] {
            let query = Query::parse(raw).unwrap();
            assert_eq!(searcher.search(&query), snapshot.search(&query), "query {raw:?}");
        }
        let query = Query::parse("rust search OR ru*").unwrap();
        assert_eq!(searcher.search(&query), snapshot.search(&query));

        assert!(searcher.memo_hits() >= 3, "hits {}", searcher.memo_hits());
        // Distinct lookups: rust, search, index, prefix "ru".
        assert_eq!(searcher.memo_misses(), 4);
        assert!(format!("{searcher:?}").contains("memo_hits"));
    }
}
